"""The DistancePass: proof-carrying synchronization elision.

The dependence-test battery (:mod:`repro.analysis.deptest`) proves a
lower bound ``min_distance`` on the distance of every cross-iteration
true dependence.  Whenever that bound is at least the synchronization
granularity, the per-element post/wait protocol of §2.2 is overkill: run
iterations in *groups* of ``g <= min_distance`` consecutive iterations
with one barrier between groups, and every renamed read's writer has
already passed a barrier — no ready flag is ever checked or set (after
"Parallelization of Loops with Variable Distance Data Dependences",
arXiv 1311.2927).

This pass decides the group size per backend and records the decision —
with the battery's machine-checkable certificate — in the plan:

- ``threaded`` / ``vectorized``: ``g = min_distance`` (the threaded
  backend swaps flags for barriers; the vectorized backend widens its
  wavefront levels to the groups).
- ``multiproc``: strips must not straddle group boundaries, so
  ``g = chunk * (min_distance // chunk)`` — requires ``chunk <=
  min_distance``.

:func:`~repro.passes.execute.execute_plan` hands the group size to the
backend via the ``_group_sync`` hook; the elision only applies in
natural order (the bound is on iteration numbers) and when the write is
proven injective (concurrent renamed writes to one element would race).
"""

from __future__ import annotations

from repro.passes.base import PassContext, SchedulePass

__all__ = ["DistancePass", "plan_distance_elision"]

#: Backends that understand the ``_group_sync`` hook.
_GROUP_BACKENDS = ("threaded", "multiproc", "vectorized")


def plan_distance_elision(
    loop,
    backend: str,
    chunk: int | None,
    *,
    natural_order: bool,
) -> dict | None:
    """The elision decision for one loop/backend/chunk combination.

    Returns ``None`` when group-synchronous execution is not provably
    sound (or not supported), else a JSON-safe dict carrying the group
    size and the battery's proof-backed certificate.
    """
    if not natural_order or backend not in _GROUP_BACKENDS:
        return None
    from repro.analysis import analyze_loop

    verdict = analyze_loop(loop)
    m = verdict.min_distance
    if m is None or m < 2 or not verdict.write_injective:
        return None
    if backend == "multiproc":
        if chunk is None or chunk > m:
            return None
        group = int(chunk) * (int(m) // int(chunk))
    else:
        group = int(m)
    if group < 2:
        return None
    return {
        "backend": backend,
        "min_distance": int(m),
        "group": group,
        "verdict": verdict.kind,
        "certificate": {
            "loop": loop.name,
            "min_distance": int(m),
            "vectors": [v.as_dict() for v in verdict.vectors],
        },
    }


class DistancePass(SchedulePass):
    """Plan group-synchronous post/wait elision from the battery's bound.

    Publishes the ``distance_elision`` artifact: ``None`` when the
    standard protocol must run, else the group decision + certificate
    (see :func:`plan_distance_elision`).  Requires the resolved backend
    and chunk (the multiproc group must be chunk-aligned) and the
    doconsider decision (the bound is only meaningful in natural order).
    """

    name = "distance-elision"
    requires = ("backend", "chunk", "order")
    provides = ("distance_elision",)

    def run(self, ctx: PassContext) -> None:
        spec = ctx.spec
        if spec.analyze is None:
            ctx.set("distance_elision", None)
            return
        ctx.set(
            "distance_elision",
            plan_distance_elision(
                ctx.loop,
                ctx.get("backend"),
                ctx.get("chunk"),
                natural_order=ctx.get("order") is None,
            ),
        )
