"""The telemetry-driven auto-tuner: ``backend="auto"``.

PAPERS.md's speculative-taskloop line of work makes the empirical point
that backend/schedule choice is workload-dependent — no fixed backend
wins on chains *and* stencils *and* gather/scatter.  This pass turns
that observation into a closed loop:

1. **Key** — runs are grouped by the loop's structural fingerprint
   (:func:`~repro.backends.cache.loop_fingerprint`), the same
   content-address the inspector cache amortizes preprocessing under.
   Same dependence structure ⇒ same tuning problem.
2. **Features** — each observed run contributes its wall time plus
   telemetry-derived features: the busy-wait fraction per lane (from
   ``wait``-category spans) and the wavefront-width histogram (the
   vectorized backend's ``level_width`` metric).  High wait fractions
   indict synchronization-heavy backends; narrow wavefronts indict the
   batched one.
3. **Policy** — explore-then-exploit.  The first run of a structure uses
   a width heuristic (wide wavefronts → vectorized); subsequent runs
   measure each remaining candidate once; after that the tuner exploits
   the argmin of median measured wall time.  Perf-doctor hints
   (:func:`record_doctor_hints`, fed by ``PlanSpec(diagnose=True)`` runs
   on a shared cache) jump the queue: the hinted backend is measured
   first, and once timed the tuner exploits without exploring the rest
   of the field.
4. **Persistence** — measurements and the current decision live on the
   :class:`~repro.backends.cache.InspectorCache` (:meth:`tuner_state`),
   so sharing a cache across ``parallelize`` calls shares the learning
   exactly like it shares inspector records.

The pass provides the ``backend`` artifact (plus its ``tuner`` audit
record), making it a drop-in replacement for
:class:`~repro.passes.builtin.FixedBackendPass` in the default pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.cache import InspectorCache
from repro.obs.spans import CAT_WAIT
from repro.passes.base import PassContext, SchedulePass

__all__ = [
    "AUTO_CANDIDATES",
    "TunerDecision",
    "AutoTunePass",
    "features_from_telemetry",
    "record_run_outcome",
    "record_doctor_hints",
    "default_tuner_store",
]

#: Backends the tuner chooses among.  The simulated backend is excluded:
#: its "time" is modeled cycles, not comparable with measured wall clock.
AUTO_CANDIDATES = ("vectorized", "threaded", "multiproc", "speculative")

#: Measurements kept per (fingerprint, backend): enough for a stable
#: median, bounded so a long-lived cache cannot grow without limit.
_MAX_SAMPLES = 8

#: Process-wide fallback store, used when no cache is passed — repeated
#: ``parallelize(backend="auto")`` calls still learn within the process.
_DEFAULT_STORE = InspectorCache()


def default_tuner_store() -> InspectorCache:
    """The process-wide store backing cache-less ``backend="auto"`` runs."""
    return _DEFAULT_STORE


@dataclass(frozen=True)
class TunerDecision:
    """Why the tuner picked what it picked (attached to plans/results).

    Attributes
    ----------
    backend:
        The chosen concrete backend.
    chunk:
        Chunk constraint carried from the spec (the stripmine pass sizes
        the default when this is ``None``).
    source:
        ``"heuristic"`` — first sight of this structure, width rule;
        ``"explore"`` — measuring a not-yet-measured candidate;
        ``"telemetry"`` — exploiting the best measured median.
    reason:
        Human-readable justification (surfaced by ``profile --json``).
    fingerprint:
        The structural fingerprint the decision is keyed under.
    """

    backend: str
    chunk: int | None
    source: str
    reason: str
    fingerprint: str

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "chunk": self.chunk,
            "source": self.source,
            "reason": self.reason,
            "fingerprint": self.fingerprint,
        }


def features_from_telemetry(telemetry) -> dict:
    """Distill one run's telemetry into the tuner's feature vector.

    Returns a JSON-safe dict: per-lane busy-wait fraction of the executor
    extent, its mean, and the ``level_width`` histogram summary when the
    backend emitted one.  Tolerates partial blobs — a backend without
    wait spans simply reports an empty fraction map.
    """
    phases = telemetry.phase_totals()
    extent = phases.get("executor") or telemetry.span_total()
    wait_by_lane: dict[int, float] = {}
    for span in telemetry.spans:
        if span.cat == CAT_WAIT and span.lane >= 0:
            wait_by_lane[span.lane] = (
                wait_by_lane.get(span.lane, 0.0) + span.duration
            )
    fractions = {
        str(lane): (total / extent if extent else 0.0)
        for lane, total in sorted(wait_by_lane.items())
    }
    mean = sum(fractions.values()) / len(fractions) if fractions else 0.0
    features = {
        "wait_fraction": fractions,
        "mean_wait_fraction": mean,
    }
    histogram = telemetry.metrics.as_dict()["histograms"].get("level_width")
    if histogram is not None:
        features["level_width"] = dict(histogram)
    return features


def _median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _heuristic_order(levels, n: int) -> tuple[str, ...]:
    """Candidate priority from the wavefront shape alone.

    Wide wavefronts are the vectorized backend's home turf (each level is
    one big NumPy batch) and mean few cross-chunk conflicts, so the
    speculative backend ranks high there too; deep, narrow DAGs make
    per-level dispatch overhead dominate and force speculation into its
    rollback/fallback worst case, so point-to-point backends go first
    and speculation last there.
    """
    avg = levels.average_width() if levels is not None else float(n)
    if avg >= 4.0:
        return ("vectorized", "speculative", "multiproc", "threaded")
    return ("threaded", "vectorized", "multiproc", "speculative")


def record_run_outcome(
    store: InspectorCache,
    fingerprint: str,
    backend: str,
    wall_seconds: float,
    telemetry=None,
) -> None:
    """Feed one observed run back into the tuner's store.

    Called by :func:`~repro.passes.execute.execute_plan` after every
    auto-planned run; safe to call for fixed-backend runs too (warming
    the tuner with ground truth it did not choose).
    """
    state = store.tuner_state(fingerprint)
    samples = state["measurements"].setdefault(backend, [])
    samples.append(float(wall_seconds))
    del samples[:-_MAX_SAMPLES]
    if telemetry is not None:
        state["features"][backend] = features_from_telemetry(telemetry)


def record_doctor_hints(
    store: InspectorCache, fingerprint: str, findings
) -> None:
    """Turn perf-doctor findings into a tuner prior for ``fingerprint``.

    The first finding (they arrive most-severe-first) whose
    recommendation names a backend becomes the hint; the tuner then
    tries that backend before its width heuristic and, once the hinted
    backend is measured, exploits without timing the remaining
    candidates.  No backend recommendation ⇒ no hint recorded.
    """
    for finding in findings:
        backend = finding.recommendation.get("backend")
        if backend is None:
            continue
        state = store.tuner_state(fingerprint)
        state["hints"] = {
            "backend": backend,
            "kind": finding.kind,
            "severity": finding.severity,
            "summary": finding.summary,
        }
        return


class AutoTunePass(SchedulePass):
    """Provide ``backend`` by explore-then-exploit over prior telemetry."""

    name = "auto-tune"
    requires = ("levels", "fingerprint")
    provides = ("backend", "tuner")

    def __init__(self, candidates: tuple[str, ...] = AUTO_CANDIDATES):
        self.candidates = tuple(candidates)

    def run(self, ctx: PassContext) -> None:
        levels = ctx.get("levels")
        fingerprint = ctx.get("fingerprint")
        store = ctx.cache if ctx.cache is not None else _DEFAULT_STORE
        state = store.tuner_state(fingerprint)
        measurements = state["measurements"]

        priority = [
            b for b in _heuristic_order(levels, ctx.loop.n)
            if b in self.candidates
        ] or list(self.candidates)
        unmeasured = [b for b in priority if not measurements.get(b)]
        hint = (state.get("hints") or {}).get("backend")
        if hint not in priority:
            hint = None

        if hint is not None and unmeasured:
            # A perf-doctor hint shortcuts exploration: try the hinted
            # backend first, and once it is measured exploit the best
            # median immediately instead of timing the rest of the field.
            kind = state["hints"].get("kind", "finding")
            if not measurements.get(hint):
                choice = hint
                reason = (
                    f"perf doctor ({kind}) recommends {choice}; "
                    f"measuring it ahead of the width heuristic"
                )
            else:
                measured = [b for b in priority if measurements.get(b)]
                medians = {b: _median(measurements[b]) for b in measured}
                choice = min(medians, key=medians.get)
                reason = (
                    f"perf doctor ({kind}) hint lets the tuner exploit "
                    f"median wall {medians[choice]:.6f}s without timing "
                    f"{'/'.join(unmeasured)}"
                )
            source = "hint"
        elif unmeasured and not any(measurements.get(b) for b in priority):
            choice = unmeasured[0]
            source = "heuristic"
            reason = (
                f"first run of this structure: average wavefront width "
                f"{levels.average_width():.1f} ranks {choice} first"
            )
        elif unmeasured:
            choice = unmeasured[0]
            source = "explore"
            reason = (
                f"{choice} not yet measured for this structure "
                f"({len(priority) - len(unmeasured)}/{len(priority)} "
                f"candidates timed)"
            )
        else:
            medians = {b: _median(measurements[b]) for b in priority}
            choice = min(medians, key=medians.get)
            runner_up = sorted(medians.values())[1] if len(medians) > 1 else 0.0
            source = "telemetry"
            reason = (
                f"median wall {medians[choice]:.6f}s beats next-best "
                f"{runner_up:.6f}s over "
                f"{sum(len(measurements[b]) for b in priority)} observed runs"
            )

        decision = TunerDecision(
            backend=choice,
            chunk=ctx.spec.chunk,
            source=source,
            reason=reason,
            fingerprint=fingerprint,
        )
        state["decision"] = decision.as_dict()
        ctx.set("backend", choice)
        ctx.set("tuner", decision)
