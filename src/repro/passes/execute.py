"""Plan execution: one code path from :class:`Plan` to :class:`RunResult`.

This module is the bridge between the pass pipeline and the backends:
:func:`plan_loop` runs the default pipeline for a spec, and
:func:`execute_plan` hands the resulting plan to the resolved backend —
forwarding exactly the options that backend honors (the plan was
validated against the support matrix, so nothing is ever silently
dropped: spec-path results carry no ``ignored_options`` notes).

:func:`run_with_spec` is the full spec-based entry point behind
``parallelize(spec=...)`` and ``parallelize(backend="auto")``: plan,
execute, close the tuner's feedback loop, and return the familiar
``(result, transform_plan)`` pair.
"""

from __future__ import annotations

import time

from repro.backends.cache import InspectorCache
from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop
from repro.ir.transform import TransformPlan, plan_transform
from repro.passes.autotune import default_tuner_store, record_run_outcome
from repro.passes.builtin import default_pipeline
from repro.passes.plan import Plan
from repro.passes.spec import AUTO_BACKEND, OPTION_SUPPORT, PlanSpec

__all__ = ["plan_loop", "execute_plan", "run_with_spec"]


def plan_loop(
    loop: IrregularLoop,
    spec: PlanSpec,
    cache: InspectorCache | None = None,
) -> Plan:
    """Run the default pipeline for ``spec`` over ``loop``."""
    return default_pipeline(spec).plan(loop, spec, cache=cache)


def _innermost(runner):
    while hasattr(runner, "inner"):
        runner = runner.inner
    return runner


def execute_plan(
    loop: IrregularLoop,
    plan: Plan,
    cache: InspectorCache | None = None,
    verdict=None,
) -> RunResult:
    """Execute ``loop`` as ``plan`` prescribes on the resolved backend.

    Only options the resolved backend supports are forwarded (per
    :data:`~repro.passes.spec.OPTION_SUPPORT`): when the auto-tuner
    rebases a chunked spec onto a chunk-less backend, the chunk is an
    adaptation recorded in the plan, not an ignored option.  Auto-planned
    runs are always observed, and their wall time + telemetry are fed
    back into the tuner store afterwards.
    """
    from repro.backends import _build_runner

    spec = plan.spec
    backend = plan.backend
    auto = spec.backend == AUTO_BACKEND
    runner = _build_runner(
        backend,
        processors=spec.processors,
        cache=cache,
        validate=spec.validate,
        # Telemetry is the tuner's training data: auto runs always
        # observe; diagnosis reads telemetry, so diagnose implies observe.
        observe=spec.observe or auto or spec.diagnose,
        # The simulated backend models the inspector as a costed phase;
        # its analyze handling is planning-level (verdict below).
        analyze=spec.analyze if backend != "simulated" else None,
        wait_timeout=spec.wait_timeout,
    )

    if backend == "vectorized" and cache is None:
        # No shared cache: the runner made a private one.  Seed it with
        # the plan-time inspector record so planning work is not redone.
        record = plan.artifacts.get("record")
        if record is not None:
            _innermost(runner).cache.seed(record)

    supported = OPTION_SUPPORT[backend]
    run_kwargs: dict = {}
    if plan.order is not None:
        run_kwargs["order"] = plan.order
    if spec.schedule is not None and "schedule" in supported:
        run_kwargs["schedule"] = spec.schedule
    if plan.chunk is not None and "chunk" in supported:
        run_kwargs["chunk"] = plan.chunk

    if backend == "simulated" and spec.analyze == "symbolic+check":
        from repro.analysis import cross_check

        if verdict is not None:
            cross_check(loop, verdict, strict=True)

    elision = plan.artifacts.get("distance_elision")
    target = _innermost(runner) if elision is not None else None

    started = time.perf_counter()
    if target is not None:
        # The DistancePass certified group-synchronous execution: hand
        # the proven group size to the backend for this run only.
        target._group_sync = elision["group"]
    try:
        result = runner.run(loop, **run_kwargs)
    finally:
        if target is not None:
            target._group_sync = None
    elapsed = time.perf_counter() - started

    result.extras["schedule_plan"] = plan.describe()
    if elision is not None:
        result.extras["distance_elision"] = {
            k: v for k, v in elision.items() if k != "certificate"
        }
    if verdict is not None:
        result.extras.setdefault("analyze", spec.analyze)
        result.extras.setdefault("verdict", verdict.kind)
        if verdict.distance is not None:
            result.extras.setdefault("verdict_distance", int(verdict.distance))

    if auto:
        result.extras["tuner"] = plan.tuner.as_dict() if plan.tuner else None
        store = cache if cache is not None else default_tuner_store()
        wall = result.wall_seconds if result.wall_seconds is not None else elapsed
        record_run_outcome(
            store, plan.fingerprint, backend, wall, telemetry=result.telemetry
        )

    if spec.diagnose and result.telemetry is not None:
        from repro.passes.autotune import record_doctor_hints
        from repro.perf.doctor import diagnose_result

        findings = diagnose_result(result)
        result.extras["doctor"] = [f.as_dict() for f in findings]
        if cache is not None and plan.fingerprint is not None:
            # A shared cache is the tuner's memory: the doctor's backend
            # recommendation becomes a prior for later auto runs of this
            # structure (a private store would discard it immediately).
            record_doctor_hints(cache, plan.fingerprint, findings)
    return result


def run_with_spec(
    loop: IrregularLoop,
    spec: PlanSpec,
    cache: InspectorCache | None = None,
    assert_independent: bool = False,
    known_distance: int | None = None,
) -> tuple[RunResult, TransformPlan]:
    """Plan and execute ``loop`` under ``spec``; the spec-path equivalent
    of :func:`repro.core.doacross.parallelize`'s legacy body."""
    verdict = None
    if spec.analyze is not None:
        from repro.analysis import analyze_loop

        verdict = analyze_loop(loop)
    transform_plan = plan_transform(
        loop,
        assert_independent=assert_independent,
        known_distance=known_distance,
        verdict=verdict,
    )
    plan = plan_loop(loop, spec, cache=cache)
    result = execute_plan(loop, plan, cache=cache, verdict=verdict)
    result.extras.setdefault("plan", transform_plan.describe())
    return result, transform_plan
