"""Composable schedule passes over the dependence DAG (ROADMAP item 5).

The preprocessing stages the paper's Figure 3 describes — dependence
discovery, wavefront (level) scheduling, doconsider reordering, strip
mining — run here as :class:`SchedulePass` objects with declared
requires/provides contracts, composed by a contract-validating
:class:`PassPipeline` into one :class:`Plan` that every backend
consumes.  :class:`PlanSpec` is the frozen value object describing a
run's configuration, and :class:`AutoTunePass` closes the loop from the
telemetry layer back into planning (``parallelize(backend="auto")``).

Quick tour::

    from repro.passes import PlanSpec, plan_loop, execute_plan

    spec = PlanSpec(backend="vectorized")
    plan = plan_loop(loop, spec)        # contracts checked, passes run
    print(plan.describe()["passes"])    # audit: what decided what
    result = execute_plan(loop, plan)   # same answer as any backend
"""

from repro.passes.autotune import (
    AUTO_CANDIDATES,
    AutoTunePass,
    TunerDecision,
    features_from_telemetry,
    record_run_outcome,
)
from repro.passes.base import (
    PassContext,
    PassContractError,
    PassPipeline,
    SchedulePass,
)
from repro.passes.builtin import (
    ColoringPass,
    DependenceDAGPass,
    DoconsiderPass,
    FixedBackendPass,
    InspectorPass,
    LevelSchedulePass,
    LoopFingerprintPass,
    StripminePass,
    ValidateOptionsPass,
    default_passes,
    default_pipeline,
)
from repro.passes.execute import execute_plan, plan_loop, run_with_spec
from repro.passes.plan import Plan
from repro.passes.spec import (
    AUTO_BACKEND,
    OPTION_SUPPORT,
    SPEC_BACKENDS,
    PlanSpec,
    UnsupportedPlanOption,
    check_options,
)

__all__ = [
    "AUTO_BACKEND",
    "AUTO_CANDIDATES",
    "AutoTunePass",
    "ColoringPass",
    "DependenceDAGPass",
    "DoconsiderPass",
    "FixedBackendPass",
    "InspectorPass",
    "LevelSchedulePass",
    "LoopFingerprintPass",
    "OPTION_SUPPORT",
    "Plan",
    "PlanSpec",
    "PassContext",
    "PassContractError",
    "PassPipeline",
    "SPEC_BACKENDS",
    "SchedulePass",
    "StripminePass",
    "TunerDecision",
    "UnsupportedPlanOption",
    "ValidateOptionsPass",
    "check_options",
    "default_passes",
    "default_pipeline",
    "execute_plan",
    "features_from_telemetry",
    "plan_loop",
    "record_run_outcome",
    "run_with_spec",
]
