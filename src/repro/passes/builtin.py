"""The built-in schedule passes: today's scattered preprocessing, as passes.

Each pass wraps one piece of scheduling logic that previously lived
inside a backend or a wrapper class, exposing it under the
requires/provides contract of :class:`~repro.passes.base.SchedulePass`:

===================  ==========================  =======================
pass                 subsumes                    provides
===================  ==========================  =======================
``validate-options`` ``note_ignored_options``    ``options``
``fingerprint``      backend-private cache keys  ``fingerprint``
``dependence-dag``   per-backend DAG builds      ``depgraph``
``level-schedule``   ``compute_levels`` calls    ``levels``
``doconsider``       ``Doconsider`` wrapper      ``order``
``coloring``         ``greedy_coloring`` (mesh)  ``coloring``
``fixed-backend``    ``backend=`` kwarg          ``backend``
``auto-tune``        (new)                       ``backend``, ``tuner``
``stripmine``        multiproc chunk formula     ``chunk``
``inspector``        vectorized ``_preprocess``  ``record``
===================  ==========================  =======================

:func:`default_passes` composes them into the standard pipeline for a
given :class:`~repro.passes.spec.PlanSpec`; any reordering that respects
the declared contracts produces the same plan (tested in
``tests/test_passes.py``).

Note on coloring: the color-major sweep order changes the *iterate
sequence* of a sweep-style loop (valid for relaxation, not for exact
replay), so ``coloring`` is analysis-only here — its output never feeds
the doacross execution order, which must preserve exact sequential
semantics.  It is provided for mesh workloads that consume the color
order explicitly and is not part of the default pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.backends.cache import build_inspector_record, loop_fingerprint
from repro.graph.coloring import greedy_coloring
from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import compute_levels
from repro.passes.base import PassContext, PassPipeline, SchedulePass
from repro.passes.spec import AUTO_BACKEND, PlanSpec, check_options

__all__ = [
    "ValidateOptionsPass",
    "LoopFingerprintPass",
    "DependenceDAGPass",
    "LevelSchedulePass",
    "DoconsiderPass",
    "ColoringPass",
    "FixedBackendPass",
    "SanitizePass",
    "StripminePass",
    "InspectorPass",
    "default_passes",
    "default_pipeline",
]


class ValidateOptionsPass(SchedulePass):
    """Reject spec options the requested backend cannot honor.

    This is the plan-time replacement for the legacy
    ``extras["ignored_options"]`` notes: an unsupported option raises a
    structured :class:`~repro.passes.spec.UnsupportedPlanOption` here,
    before any scheduling work happens.
    """

    name = "validate-options"
    provides = ("options",)

    def run(self, ctx: PassContext) -> None:
        check_options(ctx.spec)
        ctx.set("options", ctx.spec.tunable_options())


class LoopFingerprintPass(SchedulePass):
    """Content-address the loop's dependence structure.

    The digest (:func:`~repro.backends.cache.loop_fingerprint`) keys both
    the inspector cache and the auto-tuner's persisted decisions, so
    "same structure" means the same thing to amortization and to tuning.
    """

    name = "fingerprint"
    provides = ("fingerprint",)

    def run(self, ctx: PassContext) -> None:
        ctx.set("fingerprint", loop_fingerprint(ctx.loop))


class DependenceDAGPass(SchedulePass):
    """Materialize the true-dependence DAG in CSR form."""

    name = "dependence-dag"
    provides = ("depgraph",)

    def run(self, ctx: PassContext) -> None:
        ctx.set("depgraph", DependenceGraph.from_loop(ctx.loop))


class LevelSchedulePass(SchedulePass):
    """Wavefront (level) decomposition of the dependence DAG — the §3.2
    doconsider preprocessing, shared by every consumer instead of being
    recomputed privately per backend."""

    name = "level-schedule"
    requires = ("depgraph",)
    provides = ("levels",)

    def run(self, ctx: PassContext) -> None:
        ctx.set("levels", compute_levels(ctx.get("depgraph")))


class DoconsiderPass(SchedulePass):
    """Choose the execution order: natural, or the wavefront order.

    Publishes ``order=None`` for ``reorder="natural"`` (the backend runs
    iterations as written) and the level schedule's order for
    ``reorder="doconsider"`` — the same reordering
    :class:`~repro.core.doconsider.Doconsider` applies, minus the wrapper.
    """

    name = "doconsider"
    requires = ("levels",)
    provides = ("order",)

    def run(self, ctx: PassContext) -> None:
        if ctx.spec.reorder == "doconsider":
            ctx.set("order", ctx.get("levels").order)
        else:
            ctx.set("order", None)


class ColoringPass(SchedulePass):
    """Greedy-color the dependence structure (analysis only — see the
    module docstring for why a color order can never feed the doacross)."""

    name = "coloring"
    requires = ("depgraph",)
    provides = ("coloring",)

    def run(self, ctx: PassContext) -> None:
        graph = ctx.get("depgraph")
        n = graph.n
        # Symmetrize the directed CSR: neighbors = successors ∪ predecessors.
        out_deg = graph.succ_ptr[1:] - graph.succ_ptr[:-1]
        in_deg = graph.pred_ptr[1:] - graph.pred_ptr[:-1]
        counts = (out_deg + in_deg).astype(np.int64)
        adj_ptr = np.zeros(n + 1, dtype=np.int64)
        adj_ptr[1:] = np.cumsum(counts)
        adj = np.empty(int(adj_ptr[-1]), dtype=np.int64)
        cursor = adj_ptr[:-1].copy()
        for v in range(n):
            lo, hi = int(graph.succ_ptr[v]), int(graph.succ_ptr[v + 1])
            adj[cursor[v] : cursor[v] + (hi - lo)] = graph.succ[lo:hi]
            cursor[v] += hi - lo
            lo, hi = int(graph.pred_ptr[v]), int(graph.pred_ptr[v + 1])
            adj[cursor[v] : cursor[v] + (hi - lo)] = graph.pred[lo:hi]
        ctx.set("coloring", greedy_coloring(adj_ptr, adj))


class FixedBackendPass(SchedulePass):
    """Resolve the backend the trivial way: the spec names it."""

    name = "fixed-backend"
    provides = ("backend",)

    def run(self, ctx: PassContext) -> None:
        ctx.set("backend", ctx.spec.backend)


class SanitizePass(SchedulePass):
    """Plan the dynamic sanitizer's workload for ``validate="sanitize"``.

    The sanitizer itself runs *during* execution (shadow logging) and
    *after* it (vector-clock replay, :mod:`repro.sanitize`); what belongs
    in the plan is the contract it will enforce — the set of true
    read-after-write pairs that must each be covered by a witnessed
    happens-before edge.  Publishing the pair count here makes the
    sanitize workload part of ``plan.describe()`` and lets callers see
    up front that a dependence-free loop has nothing to check.
    """

    name = "sanitize"
    provides = ("sanitize",)

    def run(self, ctx: PassContext) -> None:
        from repro.sanitize.detector import required_pairs

        ctx.set("sanitize", {"pairs": len(required_pairs(ctx.loop))})


class StripminePass(SchedulePass):
    """Pick the strip-mine chunk size for the resolved backend.

    A caller-specified ``spec.chunk`` wins; otherwise the multiproc
    backend gets its load-balance default (four strips per worker, the
    formula previously private to
    :class:`~repro.backends.multiproc.MultiprocRunner`) and backends
    without a chunk knob get ``None``.
    """

    name = "stripmine"
    requires = ("backend",)
    provides = ("chunk",)

    def run(self, ctx: PassContext) -> None:
        spec = ctx.spec
        backend = ctx.get("backend")
        if spec.chunk is not None:
            ctx.set("chunk", spec.chunk)
        elif backend == "multiproc":
            n = ctx.loop.n
            ctx.set("chunk", max(1, -(-n // (4 * spec.processors))))
        else:
            ctx.set("chunk", None)


class InspectorPass(SchedulePass):
    """Run (or fetch) the full vectorized preprocessing — the Figure-3
    inspector plus executor-ready term layout — through the shared
    :class:`~repro.backends.cache.InspectorCache` when the context has
    one, so planning warms the same cache execution reads."""

    name = "inspector"
    requires = ("fingerprint",)
    provides = ("record",)

    def run(self, ctx: PassContext) -> None:
        if ctx.cache is not None:
            record, _hit = ctx.cache.get_or_build(
                ctx.loop, fingerprint=ctx.get("fingerprint")
            )
        else:
            record = build_inspector_record(ctx.loop)
        ctx.set("record", record)


def default_passes(spec: PlanSpec) -> list[SchedulePass]:
    """The standard pass sequence for ``spec``.

    The shape is identical for every backend — validate, fingerprint,
    DAG, levels, doconsider, backend resolution, stripmine — which is the
    point of the framework: one pipeline, five consumers.  The only
    variation is *which* backend-resolution pass runs (``fixed-backend``
    vs ``auto-tune``) and whether the vectorized backend's inspector
    record is prebuilt at plan time.
    """
    passes: list[SchedulePass] = [
        ValidateOptionsPass(),
        LoopFingerprintPass(),
        DependenceDAGPass(),
        LevelSchedulePass(),
        DoconsiderPass(),
    ]
    if spec.backend == AUTO_BACKEND:
        from repro.passes.autotune import AutoTunePass

        passes.append(AutoTunePass())
    else:
        passes.append(FixedBackendPass())
    passes.append(StripminePass())
    if spec.analyze is not None:
        from repro.passes.distance import DistancePass

        passes.append(DistancePass())
    if spec.validate == "sanitize":
        passes.append(SanitizePass())
    if spec.backend == "vectorized" and spec.analyze is None:
        passes.append(InspectorPass())
    return passes


def default_pipeline(spec: PlanSpec) -> PassPipeline:
    """:func:`default_passes` wrapped in a validated pipeline."""
    return PassPipeline(default_passes(spec))
