"""The unified :class:`PlanSpec`: one frozen value object for every
execution option.

Before this module, the execution configuration of a run was a kwargs
sprawl spread over :func:`repro.core.doacross.parallelize` and
:func:`repro.backends.make_runner` — ``backend``, ``analyze``,
``validate``, ``observe``, ``schedule``, ``chunk``, and (on the threaded
backend only) ``wait_timeout`` — with each backend privately deciding
which of those it honors and silently noting the rest in
``extras["ignored_options"]``.  :class:`PlanSpec` consolidates them into
one immutable, hashable dataclass that the pass pipeline
(:mod:`repro.passes.base`) plans against.

The crucial semantic change: under a :class:`PlanSpec`, an option a
backend cannot honor is **rejected at plan time** with a structured
:class:`UnsupportedPlanOption` (a :class:`~repro.errors.ScheduleError`)
instead of being silently recorded mid-run.  The support matrix lives
here (:data:`OPTION_SUPPORT`) so "which backend honors what" is one
table, not five code paths; the legacy keyword path keeps the old
note-and-continue behavior for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ScheduleError

__all__ = [
    "PlanSpec",
    "UnsupportedPlanOption",
    "OPTION_SUPPORT",
    "SPEC_BACKENDS",
    "AUTO_BACKEND",
    "REORDER_KINDS",
    "check_options",
]

#: The tuner pseudo-backend: the pass pipeline resolves it to a concrete
#: backend (:mod:`repro.passes.autotune`) before execution.
AUTO_BACKEND = "auto"

#: Backend names a :class:`PlanSpec` accepts (the concrete executors plus
#: the auto-tuned selector).  Kept in sync with
#: :data:`repro.backends.BACKENDS` by a test rather than an import, so
#: this module stays import-light.
SPEC_BACKENDS = (
    "simulated", "threaded", "vectorized", "multiproc", "speculative", "auto",
)

#: Iteration-order choices for the doconsider pass.
REORDER_KINDS = ("natural", "doconsider")

#: Which tunable option each backend honors.  ``backend``, ``processors``,
#: ``analyze``, ``validate``, ``observe``, and ``reorder`` are universal
#: (every backend accepts them, though ``analyze`` is planning-level on
#: the simulated backend); this matrix covers the executor options whose
#: support genuinely differs.  An option set on a :class:`PlanSpec` but
#: absent from its backend's row raises :class:`UnsupportedPlanOption` at
#: plan time.
OPTION_SUPPORT: dict[str, frozenset[str]] = {
    "simulated": frozenset({"schedule", "chunk", "sanitize"}),
    "threaded": frozenset({"wait_timeout", "sanitize"}),
    "vectorized": frozenset({"sanitize"}),
    "multiproc": frozenset({"chunk", "wait_timeout", "sanitize"}),
    "speculative": frozenset({"chunk", "sanitize"}),
    # The tuner picks among the real backends; options it cannot
    # guarantee on every candidate are rejected up front.
    "auto": frozenset({"chunk", "wait_timeout"}),
}

_REASONS = {
    ("simulated", "wait_timeout"): (
        "simulated busy-waits are bounded by the event engine's deadlock "
        "detector, not a wall-clock timeout"
    ),
    ("threaded", "schedule"): (
        "the threaded backend always distributes iterations cyclically "
        "(deadlock-freedom precondition, DESIGN.md §6)"
    ),
    ("threaded", "chunk"): (
        "the threaded backend always distributes iterations cyclically "
        "(deadlock-freedom precondition, DESIGN.md §6)"
    ),
    ("vectorized", "schedule"): (
        "the vectorized backend has no per-processor schedules; its "
        "execution order is the wavefront decomposition itself"
    ),
    ("vectorized", "chunk"): (
        "the vectorized backend has no per-processor schedules; its "
        "execution order is the wavefront decomposition itself"
    ),
    ("vectorized", "wait_timeout"): (
        "batched wavefront execution never busy-waits"
    ),
    ("multiproc", "schedule"): (
        "the multiproc backend always assigns contiguous chunks "
        "round-robin (deadlock-freedom precondition); use chunk= to size "
        "the strips"
    ),
    ("speculative", "schedule"): (
        "the speculative backend always executes contiguous chunks and "
        "commits them in natural chunk order; use chunk= to size them"
    ),
    ("speculative", "wait_timeout"): (
        "speculative execution never busy-waits: conflicts are detected "
        "after the fact and bounded by the retry budget, not a timeout"
    ),
    ("auto", "schedule"): (
        "the auto-tuner selects among backends that pick their own "
        "iteration schedules"
    ),
    ("auto", "sanitize"): (
        "the sanitizer's shadow logging inflates the telemetry the tuner "
        "trains on; sanitize against a concrete backend instead"
    ),
}

_ANALYZE_MODES = (None, "symbolic", "symbolic+check")
_VALIDATE_MODES = (None, "static", "sanitize")


class UnsupportedPlanOption(ScheduleError):
    """A :class:`PlanSpec` option its backend cannot honor.

    Raised at plan time — before any execution — replacing the legacy
    path's silent ``extras["ignored_options"]`` note.  Structured so
    tooling can react without parsing the message.

    Attributes
    ----------
    backend:
        The backend the option was checked against.
    option:
        The :class:`PlanSpec` field name.
    value:
        The offending value.
    reason:
        Why the backend cannot honor it.
    """

    def __init__(self, backend: str, option: str, value, reason: str):
        self.backend = backend
        self.option = option
        self.value = value
        self.reason = reason
        super().__init__(
            f"backend {backend!r} does not support {option}={value!r}: "
            f"{reason} (reject at plan time; the legacy keyword path notes "
            f"ignored options instead)"
        )

    def as_dict(self) -> dict:
        """JSON-safe structured form (mirrors the legacy note layout)."""
        value = self.value
        if not isinstance(value, (bool, int, float, str, type(None))):
            value = repr(value)
        return {
            "backend": self.backend,
            "option": self.option,
            "value": value,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class PlanSpec:
    """Immutable description of *how* a loop should be executed.

    One object replaces the kwargs sprawl on ``parallelize()`` /
    ``make_runner()``; being frozen and hashable it can key caches and be
    attached to results verbatim.

    Parameters
    ----------
    backend:
        One of :data:`SPEC_BACKENDS` — a concrete executor or ``"auto"``
        (the telemetry-driven tuner picks one per structural fingerprint).
    processors:
        Simulated processors / thread count / worker count (backend
        dependent; the vectorized backend's parallelism is the wavefront
        width and ignores it by long-standing contract).
    schedule:
        Executor iteration schedule kind (simulated backend only).
    chunk:
        Iteration chunk size (simulated schedules and multiproc §2.3
        strips).
    reorder:
        ``"natural"`` (default) or ``"doconsider"`` — run in the §3.2
        wavefront order computed by the pipeline's doconsider pass.
    analyze:
        ``None`` / ``"symbolic"`` / ``"symbolic+check"`` — the symbolic
        dependence engine (see :mod:`repro.analysis`).
    validate:
        ``None`` / ``"static"`` / ``"sanitize"``.  ``"static"`` lint +
        happens-before race checks the backend's schedule *before*
        execution; ``"sanitize"`` shadow-logs the actual memory accesses
        and synchronization events *during* execution and replays them
        against the loop's true dependences with vector clocks
        (:mod:`repro.sanitize`), raising
        :class:`~repro.errors.SanitizerError` on any read not covered by
        a witnessed happens-before edge.
    observe:
        Attach a :class:`~repro.obs.telemetry.Telemetry` blob to the
        result.  Forced on under ``backend="auto"``: telemetry is the
        tuner's training data.
    diagnose:
        Run the perf doctor (:mod:`repro.perf.doctor`) over the run's
        telemetry and attach its findings under ``extras["doctor"]``.
        Implies ``observe`` (the doctor reads telemetry), and — when a
        shared :class:`~repro.backends.cache.InspectorCache` is passed —
        records the findings' backend recommendations as auto-tuner
        hints.
    wait_timeout:
        Ceiling in seconds on any single blocking busy-wait (threaded
        events / multiproc :class:`~repro.backends.waitladder.WaitLadder`).

    Malformed values raise :class:`~repro.errors.ScheduleError` at
    construction; *well-formed but unsupported-for-the-backend* values
    raise :class:`UnsupportedPlanOption` at plan time
    (:func:`check_options`), so a spec for backend A can be rebased onto
    backend B with :meth:`with_backend` and re-checked.
    """

    backend: str = "simulated"
    processors: int = 16
    schedule: str | None = None
    chunk: int | None = None
    reorder: str = "natural"
    analyze: str | None = None
    validate: str | None = None
    observe: bool = False
    diagnose: bool = False
    wait_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.backend not in SPEC_BACKENDS:
            raise ScheduleError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{', '.join(SPEC_BACKENDS)}"
            )
        if self.processors < 1:
            raise ScheduleError(
                f"processors must be >= 1, got {self.processors}"
            )
        if self.chunk is not None and self.chunk < 1:
            raise ScheduleError(f"chunk must be >= 1, got {self.chunk}")
        if self.schedule is not None:
            from repro.machine.scheduler import SCHEDULE_KINDS

            if self.schedule not in SCHEDULE_KINDS:
                raise ScheduleError(
                    f"unknown schedule kind {self.schedule!r}; expected one "
                    f"of {'/'.join(SCHEDULE_KINDS)}"
                )
        if self.reorder not in REORDER_KINDS:
            raise ScheduleError(
                f"unknown reorder kind {self.reorder!r}; expected one of "
                f"{'/'.join(REORDER_KINDS)}"
            )
        if self.analyze not in _ANALYZE_MODES:
            raise ScheduleError(
                f"unknown analyze mode {self.analyze!r}; expected one of "
                f"{_ANALYZE_MODES}"
            )
        if self.validate not in _VALIDATE_MODES:
            raise ScheduleError(
                f"unknown validate mode {self.validate!r}; expected "
                f"'static', 'sanitize', or None"
            )
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise ScheduleError(
                f"wait_timeout must be > 0, got {self.wait_timeout}"
            )

    # ------------------------------------------------------------------
    def with_backend(self, backend: str) -> "PlanSpec":
        """The same spec rebased onto ``backend`` (used by the auto-tuner
        to materialize its decision)."""
        return replace(self, backend=backend)

    def tunable_options(self) -> dict[str, object]:
        """The executor options that are actually *set* (non-default) and
        therefore subject to the backend support matrix."""
        out: dict[str, object] = {}
        if self.schedule is not None:
            out["schedule"] = self.schedule
        if self.chunk is not None:
            out["chunk"] = self.chunk
        if self.wait_timeout is not None:
            out["wait_timeout"] = self.wait_timeout
        if self.validate == "sanitize":
            # Dynamic sanitizing needs backend cooperation (shadow-log
            # instrumentation), so unlike the static modes it goes
            # through the support matrix.
            out["sanitize"] = True
        return out

    def as_dict(self) -> dict:
        """JSON-safe flat form (attached to results and bench artifacts)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def check_options(spec: PlanSpec, backend: str | None = None) -> None:
    """Raise :class:`UnsupportedPlanOption` for the first option ``spec``
    sets that ``backend`` (default: ``spec.backend``) cannot honor.

    This is the plan-time replacement for
    :func:`repro.backends.base.note_ignored_options`: same support
    knowledge, opposite failure mode — loud and early instead of silent
    and late.
    """
    target = spec.backend if backend is None else backend
    supported = OPTION_SUPPORT.get(target)
    if supported is None:
        raise ScheduleError(
            f"unknown backend {target!r}; expected one of "
            f"{', '.join(SPEC_BACKENDS)}"
        )
    for option, value in spec.tunable_options().items():
        if option not in supported:
            reason = _REASONS.get(
                (target, option),
                f"the {target} backend has no {option} knob",
            )
            raise UnsupportedPlanOption(target, option, value, reason)
