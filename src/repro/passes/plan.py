"""The :class:`Plan`: what one pipeline invocation decided.

A :class:`Plan` is the single hand-off object between planning
(:class:`~repro.passes.base.PassPipeline`) and execution
(:func:`~repro.passes.execute.execute_plan`).  It records the resolved
backend (``"auto"`` is resolved by the tuner pass before a plan exists),
the schedule artifacts the passes computed, and the audit trail — which
passes ran, and if the auto-tuner chose the backend, why — in a
JSON-safe form the CLI surfaces verbatim (``python -m repro profile
--json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.passes.spec import PlanSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.graph.levels import LevelSchedule
    from repro.passes.autotune import TunerDecision

__all__ = ["Plan"]


@dataclass
class Plan:
    """Schedule artifacts + decisions from one pipeline run over one loop.

    Attributes
    ----------
    spec:
        The :class:`~repro.passes.spec.PlanSpec` the plan was built from
        (``spec.backend`` may be ``"auto"``; ``backend`` never is).
    backend:
        The concrete backend that will execute the plan.
    fingerprint:
        Content digest of the loop's dependence structure
        (:func:`~repro.backends.cache.loop_fingerprint`) — the key the
        tuner's decisions persist under.
    passes:
        Names of the pipeline's passes, in the order they ran.
    levels:
        The wavefront decomposition
        (:class:`~repro.graph.levels.LevelSchedule`), when a level pass
        ran.
    order:
        Explicit doconsider execution order to run in, or ``None`` for
        the loop's natural order.
    chunk:
        Strip-mine chunk size to execute with, or ``None`` for the
        backend default.
    tuner:
        The :class:`~repro.passes.autotune.TunerDecision` when the
        backend was auto-selected, else ``None``.
    artifacts:
        Every artifact the passes published (seed values included) — the
        escape hatch for passes beyond the built-in vocabulary.
    """

    spec: PlanSpec
    backend: str
    fingerprint: str | None = None
    passes: tuple[str, ...] = ()
    levels: "LevelSchedule | None" = None
    order: "np.ndarray | None" = None
    chunk: int | None = None
    tuner: "TunerDecision | None" = None
    artifacts: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-safe audit form: the pass list, the resolved backend, the
        schedule shape, and the tuner's reasoning.  This is what
        ``profile --json`` embeds under ``"plan"``."""
        out: dict = {
            "backend": self.backend,
            "requested_backend": self.spec.backend,
            "passes": list(self.passes),
            "spec": self.spec.as_dict(),
        }
        if self.fingerprint is not None:
            out["fingerprint"] = self.fingerprint
        if self.levels is not None:
            out["n_levels"] = int(self.levels.n_levels)
            out["max_wavefront"] = int(self.levels.max_width())
        out["reorder"] = self.spec.reorder
        if self.chunk is not None:
            out["chunk"] = int(self.chunk)
        if self.tuner is not None:
            out["tuner"] = self.tuner.as_dict()
        elision = self.artifacts.get("distance_elision")
        if elision is not None:
            out["distance_elision"] = {
                k: v for k, v in elision.items() if k != "certificate"
            }
        return out

    def summary(self) -> str:
        """One line for humans (mirrors ``RunResult.summary`` style)."""
        bits = [f"backend={self.backend}"]
        if self.spec.backend != self.backend:
            bits.append(f"(requested {self.spec.backend})")
        if self.levels is not None:
            bits.append(f"levels={self.levels.n_levels}")
        if self.chunk is not None:
            bits.append(f"chunk={self.chunk}")
        if self.tuner is not None:
            bits.append(f"tuner={self.tuner.source}")
        return "plan: " + " ".join(bits)
