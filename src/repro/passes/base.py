"""The schedule-pass framework: contracts, context, pipeline.

The paper's preprocessing phase (Figure 3) is a pipeline — dependence
discovery, level scheduling, doconsider reordering, chunk selection — but
until this package those stages were hard-wired inside each backend.
Here each stage is a :class:`SchedulePass`: a named transformation from
artifacts to artifacts over a shared :class:`PassContext`, with its
inputs (``requires``) and outputs (``provides``) declared as data.

A :class:`PassPipeline` composes passes and **validates the composition
at construction time**:

- every pass's ``requires`` must be provided by some *earlier* pass
  (seeded artifacts — ``loop``, ``spec`` — are always available);
- every artifact has exactly one provider (two passes claiming to
  provide ``levels`` is a configuration bug, caught before any loop
  runs);
- at run time, a pass writing an artifact it did not declare (or
  failing to write one it did) raises immediately.

Violations raise :class:`PassContractError` — a
:class:`~repro.errors.ScheduleError` naming the pass and the artifact —
so a misassembled pipeline fails loudly at build, not with a mystery
``KeyError`` three passes later.  The contract tests in
``tests/test_passes.py`` pin this behavior, and the reordering test
shows the payoff: any pass order that satisfies the contracts produces
bitwise-identical plans.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.backends.cache import InspectorCache
from repro.errors import ScheduleError
from repro.ir.loop import IrregularLoop
from repro.passes.plan import Plan
from repro.passes.spec import AUTO_BACKEND, PlanSpec

__all__ = [
    "SEED_ARTIFACTS",
    "PassContractError",
    "PassContext",
    "SchedulePass",
    "PassPipeline",
]

#: Artifacts present in every :class:`PassContext` before any pass runs.
SEED_ARTIFACTS = ("loop", "spec")


class PassContractError(ScheduleError):
    """A pass pipeline violates its declared requires/provides contracts.

    Attributes
    ----------
    pass_name:
        The offending pass (empty string for whole-pipeline violations).
    artifact:
        The artifact whose contract was violated.
    """

    def __init__(self, pass_name: str, artifact: str, message: str):
        self.pass_name = pass_name
        self.artifact = artifact
        super().__init__(message)


class PassContext:
    """Shared state one pipeline invocation threads through its passes.

    Seeded with the ``loop`` and the :class:`~repro.passes.spec.PlanSpec`;
    passes read artifacts with :meth:`get` and publish them with
    :meth:`set`.  Writes are checked against the running pass's declared
    ``provides`` (the pipeline arms the check via :attr:`_active`), so a
    pass cannot smuggle out artifacts the build-time validation never saw.
    """

    def __init__(
        self,
        loop: IrregularLoop,
        spec: PlanSpec,
        cache: InspectorCache | None = None,
    ):
        self.loop = loop
        self.spec = spec
        #: Optional :class:`~repro.backends.cache.InspectorCache` — serves
        #: inspector records to the inspector pass and persists tuner
        #: decisions for the auto-tune pass.
        self.cache = cache
        self._artifacts: dict[str, object] = {"loop": loop, "spec": spec}
        #: Provider bookkeeping: artifact name -> pass name.
        self.providers: dict[str, str] = {a: "<seed>" for a in SEED_ARTIFACTS}
        self._active: "SchedulePass | None" = None

    def __contains__(self, name: str) -> bool:
        return name in self._artifacts

    def get(self, name: str):
        """Read artifact ``name``; a miss is a contract violation (the
        build-time check should have made it impossible)."""
        try:
            return self._artifacts[name]
        except KeyError:
            active = self._active.name if self._active is not None else "?"
            raise PassContractError(
                active,
                name,
                f"pass {active!r} read artifact {name!r} which no earlier "
                f"pass provided — undeclared requirement",
            ) from None

    def set(self, name: str, value) -> None:
        """Publish artifact ``name`` (must be declared in the running
        pass's ``provides``)."""
        active = self._active
        if active is not None and name not in active.provides:
            raise PassContractError(
                active.name,
                name,
                f"pass {active.name!r} wrote artifact {name!r} it did not "
                f"declare in provides={tuple(active.provides)}",
            )
        self._artifacts[name] = value
        self.providers[name] = active.name if active is not None else "<seed>"

    def artifacts(self) -> dict[str, object]:
        """Snapshot of all artifacts (seed values included)."""
        return dict(self._artifacts)


class SchedulePass:
    """One stage of the preprocessing pipeline: artifacts in, artifacts out.

    Subclasses set three class attributes and implement :meth:`run`:

    ``name``
        Stable identifier (appears in plans, CLI audit output, errors).
    ``requires``
        Artifact names that must exist before this pass runs.  Validated
        against earlier passes' ``provides`` at pipeline build.
    ``provides``
        Artifact names this pass publishes.  Every name must be written
        by :meth:`run`; writing anything else raises.

    Passes hold no per-invocation state — all state lives on the
    :class:`PassContext` — so one pass instance is safely shared across
    pipelines and threads.
    """

    name: str = "<unnamed>"
    requires: Sequence[str] = ()
    provides: Sequence[str] = ()

    def run(self, ctx: PassContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"requires={tuple(self.requires)} provides={tuple(self.provides)}>"
        )


class PassPipeline:
    """An ordered, contract-checked composition of :class:`SchedulePass`.

    Construction validates the whole composition (see module docstring);
    :meth:`plan` then runs the passes over a fresh :class:`PassContext`
    and assembles the resulting artifacts into a
    :class:`~repro.passes.plan.Plan` — the single object every backend
    consumes.
    """

    def __init__(self, passes: Iterable[SchedulePass]):
        self.passes: tuple[SchedulePass, ...] = tuple(passes)
        if not self.passes:
            raise PassContractError(
                "", "", "a PassPipeline needs at least one pass"
            )
        available: dict[str, str] = {a: "<seed>" for a in SEED_ARTIFACTS}
        for p in self.passes:
            for req in p.requires:
                if req not in available:
                    raise PassContractError(
                        p.name,
                        req,
                        f"pass {p.name!r} requires artifact {req!r} which no "
                        f"earlier pass provides (available: "
                        f"{', '.join(sorted(available))})",
                    )
            for out in p.provides:
                if out in available:
                    raise PassContractError(
                        p.name,
                        out,
                        f"pass {p.name!r} provides artifact {out!r} already "
                        f"provided by {available[out]!r} — every artifact "
                        f"must have exactly one provider",
                    )
                available[out] = p.name

    # ------------------------------------------------------------------
    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def provided(self) -> set[str]:
        """All artifacts this pipeline produces (seeds excluded)."""
        out: set[str] = set()
        for p in self.passes:
            out.update(p.provides)
        return out

    def plan(
        self,
        loop: IrregularLoop,
        spec: PlanSpec,
        cache: InspectorCache | None = None,
    ) -> Plan:
        """Run every pass over ``loop`` and assemble the :class:`Plan`."""
        ctx = PassContext(loop, spec, cache=cache)
        for p in self.passes:
            ctx._active = p
            before = set(ctx._artifacts)
            p.run(ctx)
            missing = set(p.provides) - set(ctx._artifacts)
            if missing:
                raise PassContractError(
                    p.name,
                    sorted(missing)[0],
                    f"pass {p.name!r} completed without providing declared "
                    f"artifact(s) {sorted(missing)}",
                )
            del before
        ctx._active = None
        return self._assemble(ctx)

    def _assemble(self, ctx: PassContext) -> Plan:
        spec = ctx.spec
        arts = ctx.artifacts()
        backend = arts.get("backend", spec.backend)
        if backend == AUTO_BACKEND:
            raise PassContractError(
                "",
                "backend",
                "pipeline finished with backend='auto' unresolved — an "
                "auto spec needs a backend-selecting pass (AutoTunePass)",
            )
        return Plan(
            spec=spec,
            backend=backend,
            fingerprint=arts.get("fingerprint"),
            passes=self.pass_names(),
            levels=arts.get("levels"),
            order=arts.get("order"),
            chunk=arts.get("chunk", spec.chunk),
            tuner=arts.get("tuner"),
            artifacts=arts,
        )
