"""The paper's primary contribution: the preprocessed doacross runtime.

Public entry points:

- :class:`repro.core.doacross.PreprocessedDoacross` — the full
  inspector/executor/postprocessor pipeline (paper §2.1–§2.2), with the
  strip-mined (§2.3) and linear-subscript (§2.3) variants.
- :class:`repro.core.doconsider.Doconsider` — wavefront (level-schedule)
  iteration reordering before the doacross (paper §3.2, reference [4]).
- :class:`repro.core.classic.ClassicDoacross` — the a-priori-distance
  doacross baseline.
- :class:`repro.core.doall_runner.DoallRunner` — the independence baseline.
- :func:`repro.core.sequential.sequential_time` /
  :func:`repro.core.sequential.run_reference` — the sequential oracle.
- :class:`repro.core.results.RunResult` — what every runner returns.
"""

from repro.core.amortized import AmortizedDoacross
from repro.core.classic import ClassicDoacross
from repro.core.doacross import PreprocessedDoacross
from repro.core.doall_runner import DoallRunner
from repro.core.doconsider import Doconsider, level_order
from repro.core.results import PhaseBreakdown, RunResult
from repro.core.sequential import run_reference, sequential_time
from repro.core.serialize import result_to_dict, result_to_json, results_to_csv
from repro.core.verify import VerificationReport, verify_loop
from repro.core.workspace import MAXINT, DoacrossWorkspace

__all__ = [
    "PreprocessedDoacross",
    "AmortizedDoacross",
    "Doconsider",
    "level_order",
    "ClassicDoacross",
    "DoallRunner",
    "RunResult",
    "PhaseBreakdown",
    "run_reference",
    "sequential_time",
    "DoacrossWorkspace",
    "MAXINT",
    "verify_loop",
    "VerificationReport",
    "result_to_dict",
    "result_to_json",
    "results_to_csv",
]
