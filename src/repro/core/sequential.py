"""Sequential oracle and sequential cost model.

``T_seq`` in the paper is "the time required to solve a problem using an
optimized sequential version" — the *original* loop of Figure 1/4/7, with no
dependence checks, no renaming, no flags.  :func:`sequential_time` charges
exactly those costs; :func:`run_reference` wraps the value-level oracle in a
:class:`~repro.core.results.RunResult` so sequential rows fit the same
report tables as parallel runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop
from repro.machine.costs import CostModel

__all__ = ["sequential_time", "run_reference"]


def sequential_time(loop: IrregularLoop, cost_model: CostModel) -> int:
    """Simulated cycles of the optimized sequential loop.

    Vectorized: ``Σ_i (overhead + terms_i · term)`` with the loop's own
    :class:`~repro.machine.costs.WorkProfile` (or the model's default).
    """
    work = cost_model.effective_work(loop.work)
    term_counts = loop.reads.term_counts()
    return int(loop.n * work.overhead + int(term_counts.sum()) * work.term)


def run_reference(
    loop: IrregularLoop, cost_model: CostModel | None = None
) -> RunResult:
    """Execute the loop sequentially; the semantic and timing reference."""
    cm = cost_model if cost_model is not None else CostModel()
    y = loop.run_sequential()
    cycles = sequential_time(loop, cm)
    return RunResult(
        loop_name=loop.name,
        strategy="sequential",
        processors=1,
        y=np.asarray(y),
        total_cycles=cycles,
        sequential_cycles=cycles,
        cost_model=cm,
        schedule="none",
    )
