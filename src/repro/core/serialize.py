"""Serialization of run results for downstream tooling.

Experiment harnesses want machine-readable records (JSON per run, CSV per
sweep) next to the human tables.  These helpers flatten
:class:`~repro.core.results.RunResult` into plain dictionaries — values
only Python scalars/lists, so ``json.dumps`` works directly — and render
row collections as CSV text.  The ``y`` array is summarized (length and a
checksum), not embedded: results files should stay small and diffable.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.core.results import RunResult

__all__ = ["result_to_dict", "result_to_json", "results_to_csv"]


def _checksum(y: np.ndarray) -> str:
    """A short stable digest of the value vector (for equality checks
    across runs without storing the data)."""
    return hashlib.sha256(np.ascontiguousarray(y).tobytes()).hexdigest()[:16]


#: Sentinel for values that cannot be represented in JSON at all.
_DROP = object()


def _json_safe(value):
    """Recursively convert ``value`` to a JSON-representable structure,
    or :data:`_DROP` when it has no such form (e.g. a tracer object).

    Containers are preserved — structured extras such as the lint
    findings and race-check reports attached by
    :class:`~repro.backends.validating.ValidatingRunner` must survive
    ``--json`` regardless of how deeply the wrappers nested them.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {
            str(k): safe
            for k, v in value.items()
            if (safe := _json_safe(v)) is not _DROP
        }
    if isinstance(value, (list, tuple)):
        return [
            safe for v in value if (safe := _json_safe(v)) is not _DROP
        ]
    return _DROP


def result_to_dict(result: RunResult) -> dict:
    """Flatten one run into a JSON-safe dictionary."""
    phases = {
        p.name: {
            "span": int(p.span),
            "compute": int(p.total_compute),
            "wait": int(p.total_wait),
            "queue": int(p.total_resource_wait),
            "iterations": int(p.total_iterations),
        }
        for p in result.phases
    }
    extras = {
        k: safe
        for k, v in result.extras.items()
        if (safe := _json_safe(v)) is not _DROP
    }
    telemetry = (
        None if result.telemetry is None else result.telemetry.as_dict()
    )
    return {
        "loop": result.loop_name,
        "strategy": result.strategy,
        "processors": int(result.processors),
        "schedule": result.schedule,
        "order": result.order_label,
        "total_cycles": int(result.total_cycles),
        "sequential_cycles": int(result.sequential_cycles),
        "speedup": float(result.speedup),
        "efficiency": float(result.efficiency),
        "wait_cycles": int(result.wait_cycles),
        "wall_seconds": (
            None if result.wall_seconds is None else float(result.wall_seconds)
        ),
        "breakdown": result.breakdown.as_dict(),
        "phases": phases,
        "y_len": int(len(result.y)),
        "y_checksum": _checksum(result.y),
        "extras": extras,
        "ignored_options": list(result.extras.get("ignored_options", [])),
        "telemetry": telemetry,
    }


def result_to_json(result: RunResult, indent: int = 2) -> str:
    """Serialize one run as pretty-printed, key-sorted JSON text."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def results_to_csv(results: list[RunResult]) -> str:
    """Flat CSV over a list of runs (one row each, stable column order)."""
    columns = [
        "loop",
        "strategy",
        "processors",
        "schedule",
        "order",
        "total_cycles",
        "sequential_cycles",
        "speedup",
        "efficiency",
        "wait_cycles",
        "y_checksum",
    ]
    lines = [",".join(columns)]
    for result in results:
        record = result_to_dict(result)
        cells = []
        for col in columns:
            value = record[col]
            text = (
                f"{value:.6f}" if isinstance(value, float) else str(value)
            )
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
