"""Doall baseline (asserted independence).

The other classic construct of §1: when iterations are independent, no
synchronization at all is needed.  For runtime subscripts the compiler can
never prove independence — the doall here models a *user assertion* (a
directive), with an optional run-time re-validation as a debugging net.
Comparing doall to the preprocessed doacross on dependence-free inputs
measures the full inspector/executor/postprocessor overhead, which is
exactly what the odd-``L`` points of Figure 6 report.
"""

from __future__ import annotations

from repro.backends.simulated import SimulatedRunner
from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop
from repro.machine.costs import CostModel
from repro.machine.engine import Machine

__all__ = ["DoallRunner"]


class DoallRunner:
    """Runner for unsynchronized parallel loops."""

    def __init__(
        self,
        processors: int = 16,
        cost_model: CostModel | None = None,
        machine: Machine | None = None,
        schedule="cyclic",
        chunk: int = 1,
    ):
        if machine is None:
            machine = Machine(processors, cost_model=cost_model)
        self.machine = machine
        self.schedule = schedule
        self.chunk = chunk
        self._runner = SimulatedRunner(machine)

    def run(self, loop: IrregularLoop, validate: bool = True) -> RunResult:
        """Run the loop as a doall.

        ``validate=True`` re-checks independence at run time and raises
        :class:`~repro.errors.InvalidLoopError` if the assertion is false;
        ``validate=False`` trusts the caller (what a real directive does).
        """
        return self._runner.run_doall(
            loop, schedule=self.schedule, chunk=self.chunk, validate=validate
        )
