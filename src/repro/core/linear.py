"""Linear-subscript doacross (paper §2.3).

When the left-hand side is indexed by a known linear function
``a(i) = c·i + d``, the writer of element ``off`` is computable in closed
form — ``(off − d)/c`` when ``(off − d) mod c == 0`` — so the execution-time
preprocessing phase and the ``iter`` array both disappear.  The executor's
three-way classification is unchanged; only *how* the writer index is
obtained differs.  Ablation C (DESIGN.md §5) measures the saved inspector
phase directly.
"""

from __future__ import annotations

from repro.core.doacross import PreprocessedDoacross
from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop

__all__ = ["LinearDoacross"]


class LinearDoacross:
    """Facade for the inspector-free variant (affine write subscripts only;
    the backend validates and raises otherwise)."""

    def __init__(
        self,
        doacross: PreprocessedDoacross | None = None,
        **doacross_kwargs,
    ):
        self.doacross = (
            doacross
            if doacross is not None
            else PreprocessedDoacross(**doacross_kwargs)
        )

    def run(self, loop: IrregularLoop, **run_kwargs) -> RunResult:
        """Run the inspector-free pipeline (requires an affine write
        subscript; raises :class:`~repro.errors.InvalidLoopError` otherwise)."""
        return self.doacross.run(loop, linear=True, **run_kwargs)
