"""Amortized-inspector doacross: inspector reuse across loop instances.

The paper's own workload makes the case: a sparse triangular solve executes
once per Krylov iteration against one factorization, so its subscripts —
and therefore the inspector's ``iter`` array — are identical every time.
The inspector/executor literature's standard answer (and the reason the
paper stresses the parallelizable *postprocessing* that restores scratch
state) is to run the inspector once and amortize it:

- instance 1: inspector + executor + reduced postprocessor,
- instances 2..k: executor + reduced postprocessor (``iter`` untouched),
- final instance: full postprocessor, returning the workspace pristine.

The reduced postprocessor resets ``ready`` and copies ``ynew → y`` but
keeps ``iter`` (one shared store fewer per element,
``CostModel.post_iter_amortized``).

Semantics: instance ``k`` consumes instance ``k−1``'s output — a sequential
composition of the loop with itself (or with a per-instance right-hand
side), tested against iterating the sequential oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.doacross import PreprocessedDoacross
from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop

__all__ = ["AmortizedDoacross"]


class AmortizedDoacross:
    """Runner for repeated instances of one loop with a shared inspector."""

    def __init__(
        self,
        doacross: PreprocessedDoacross | None = None,
        **doacross_kwargs,
    ):
        self.doacross = (
            doacross
            if doacross is not None
            else PreprocessedDoacross(**doacross_kwargs)
        )

    def run(
        self,
        loop: IrregularLoop,
        instances: int,
        order: np.ndarray | None = None,
        order_label: str = "natural",
        rhs_sequence=None,
        backend: str = "simulated",
        cache=None,
    ) -> RunResult:
        """Run ``instances`` back-to-back executions; see module docstring.

        ``result.extras["instances"]`` and ``["inspector_runs"] == 1``
        record the amortization; ``result.efficiency`` uses
        ``instances × T_seq`` as the baseline.

        ``backend="vectorized"`` executes the same composition through
        :meth:`repro.backends.vectorized.VectorizedRunner.run_repeated`
        (real wall clock, inspector served from ``cache`` — the Figure-3
        amortization made literal: one cache miss, then hits).
        """
        if backend == "vectorized":
            from repro.backends.vectorized import VectorizedRunner

            return VectorizedRunner(cache=cache).run_repeated(
                loop, instances, rhs_sequence=rhs_sequence
            )
        if backend != "simulated":
            raise ValueError(
                f"unknown amortized backend {backend!r}; "
                "expected simulated or vectorized"
            )
        pd = self.doacross
        return pd.runner().run_amortized(
            loop,
            instances,
            schedule=pd.schedule,
            chunk=pd.chunk,
            order=order,
            order_label=order_label,
            rhs_sequence=rhs_sequence,
        )

    def amortization_gain(
        self, loop: IrregularLoop, instances: int
    ) -> tuple[RunResult, RunResult, float]:
        """Compare against re-running the full pipeline ``instances`` times.

        Returns ``(amortized, one_full_run, gain)`` where ``gain`` is the
        ratio of total cycles (full pipeline × instances over amortized).
        """
        amortized = self.run(loop, instances)
        full = self.doacross.run(loop)
        gain = (instances * full.total_cycles) / amortized.total_cycles
        return amortized, full, gain
