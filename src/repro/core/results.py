"""Run records: what every parallel-loop runner returns.

The paper reports two quantities — wall time and *parallel efficiency*
``T_seq / (p · T_par)`` (§3, first paragraph).  :class:`RunResult` carries
those plus the full per-phase breakdown the analysis sections discuss
(preprocessing cost, executor busy-wait cost, postprocessing cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.machine.costs import CostModel
from repro.machine.stats import PhaseStats

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.telemetry import Telemetry

__all__ = ["PhaseBreakdown", "RunResult"]


@dataclass
class PhaseBreakdown:
    """Cycle totals for the three pipeline phases plus barriers."""

    inspector: int = 0
    executor: int = 0
    postprocessor: int = 0
    barriers: int = 0

    @property
    def total(self) -> int:
        return self.inspector + self.executor + self.postprocessor + self.barriers

    def as_dict(self) -> dict[str, int]:
        return {
            "inspector": self.inspector,
            "executor": self.executor,
            "postprocessor": self.postprocessor,
            "barriers": self.barriers,
        }


@dataclass
class RunResult:
    """Outcome of one parallel (or sequential) loop execution.

    Attributes
    ----------
    loop_name, strategy, processors:
        Identification of what ran where.
    y:
        The final shared-array values (semantically equal to the sequential
        oracle's output — tested, not assumed).
    total_cycles:
        Simulated makespan of the whole construct, barriers included.
    sequential_cycles:
        Simulated time of the optimized sequential loop on one processor
        (the paper's ``T_seq``).
    phases:
        Per-phase engine statistics (empty for sequential runs).
    breakdown:
        Phase cycle totals.
    wait_cycles:
        Total busy-wait cycles across all processors (overhead the paper's
        §3.1 discussion attributes to "execution time dependency checks").
    schedule:
        Human-readable schedule description.
    order_label:
        ``"natural"`` or a description of the doconsider reordering.
    wall_seconds:
        Measured wall-clock duration for backends that execute for real
        (threaded, vectorized); ``None`` for simulated/sequential runs,
        whose time axis is cycles.
    telemetry:
        The run's :class:`~repro.obs.telemetry.Telemetry` blob (phase
        spans + unified metrics, same schema on every backend) when the
        run was observed (``observe=True`` /
        :class:`~repro.obs.instrument.InstrumentedRunner`); ``None``
        otherwise.
    extras:
        Free-form strategy-specific details (block size, level count, ...).
    """

    loop_name: str
    strategy: str
    processors: int
    y: np.ndarray
    total_cycles: int
    sequential_cycles: int
    cost_model: CostModel
    phases: list[PhaseStats] = field(default_factory=list)
    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    wait_cycles: int = 0
    schedule: str = ""
    order_label: str = "natural"
    wall_seconds: float | None = None
    telemetry: Telemetry | None = None
    extras: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """``T_seq / T_par``."""
        if self.total_cycles == 0:
            return float("inf") if self.sequential_cycles > 0 else 1.0
        return self.sequential_cycles / self.total_cycles

    @property
    def efficiency(self) -> float:
        """The paper's parallel efficiency ``T_seq / (p · T_par)``."""
        return self.speedup / self.processors

    @property
    def total_ms(self) -> float:
        """Makespan rendered as milliseconds (Table-1 style)."""
        return self.cost_model.cycles_to_ms(self.total_cycles)

    @property
    def sequential_ms(self) -> float:
        return self.cost_model.cycles_to_ms(self.sequential_cycles)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"loop={self.loop_name} strategy={self.strategy} "
            f"P={self.processors} schedule={self.schedule} "
            f"order={self.order_label}",
        ]
        if self.wall_seconds is not None:
            lines.append(f"  wall={self.wall_seconds * 1e3:.3f} ms (measured)")
        if self.total_cycles:
            lines.append(
                f"  T_par={self.total_cycles} cycles ({self.total_ms:.3f} ms)"
                f"  T_seq={self.sequential_cycles} cycles "
                f"({self.sequential_ms:.3f} ms)"
            )
            lines.append(
                f"  speedup={self.speedup:.2f}  "
                f"efficiency={self.efficiency:.3f}  "
                f"busy-wait={self.wait_cycles} cycles"
            )
        if self.breakdown.total:
            b = self.breakdown
            lines.append(
                f"  phases: inspector={b.inspector} executor={b.executor} "
                f"postprocessor={b.postprocessor} barriers={b.barriers}"
            )
        if self.telemetry is not None:
            lines.append(f"  telemetry: {self.telemetry.one_line()}")
        for note in self.extras.get("ignored_options", []):
            lines.append(
                f"  ignored {note['option']}={note['value']!r}: "
                f"{note['reason']}"
            )
        for key, value in self.extras.items():
            if isinstance(value, (int, float, str, bool)):
                lines.append(f"  {key}={value}")
        return "\n".join(lines)
