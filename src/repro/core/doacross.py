"""The public preprocessed-doacross API.

:class:`PreprocessedDoacross` bundles a simulated machine, a reusable
workspace, and a default schedule behind the interface the examples and
benchmarks use::

    from repro import PreprocessedDoacross
    runner = PreprocessedDoacross(processors=16)
    result = runner.run(loop)
    print(result.summary())

:func:`parallelize` is the fully automatic entry point: it asks the
"compiler" (:func:`repro.ir.transform.plan_transform`) which strategy is
sound for the loop's static structure and dispatches accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.backends.simulated import SimulatedRunner
from repro.core.results import RunResult
from repro.core.workspace import DoacrossWorkspace
from repro.ir.loop import IrregularLoop
from repro.ir.transform import (
    STRATEGY_CLASSIC_DOACROSS,
    STRATEGY_DOALL,
    STRATEGY_LINEAR,
    TransformPlan,
    plan_transform,
)
from repro.machine.costs import CostModel
from repro.machine.engine import Machine

__all__ = ["PreprocessedDoacross", "parallelize"]


class PreprocessedDoacross:
    """Inspector/executor/postprocessor runner with sensible defaults.

    Parameters
    ----------
    processors:
        Simulated processor count (paper experiments use 16).  Ignored when
        an explicit ``machine`` is supplied.
    cost_model:
        Cycle costs; defaults to the calibrated model (DESIGN.md §7).
    machine:
        A pre-built :class:`~repro.machine.engine.Machine` (overrides
        ``processors``/``cost_model``/``bus``).
    workspace:
        Scratch arrays shared across runs (created on demand).  Reuse across
        many loop instances is the paper's Figure-3 design point.
    schedule, chunk:
        Default executor schedule (kind string or
        :class:`~repro.machine.scheduler.IterationSchedule`) and chunk size.
    bus:
        Enable the shared-bus contention model.
    coherence:
        Enable the write-invalidate coherence model (requires a cost model
        with ``coherence_miss > 0``).
    """

    def __init__(
        self,
        processors: int = 16,
        cost_model: CostModel | None = None,
        machine: Machine | None = None,
        workspace: DoacrossWorkspace | None = None,
        schedule="cyclic",
        chunk: int = 1,
        bus: bool = False,
        coherence: bool = False,
    ):
        if machine is None:
            machine = Machine(
                processors, cost_model=cost_model, bus=bus, coherence=coherence
            )
        self.machine = machine
        self.workspace = workspace if workspace is not None else DoacrossWorkspace()
        self.schedule = schedule
        self.chunk = chunk
        self._runner = SimulatedRunner(self.machine, self.workspace)

    # ------------------------------------------------------------------
    def run(
        self,
        loop: IrregularLoop,
        order: np.ndarray | None = None,
        order_label: str = "natural",
        linear: bool = False,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Run the full preprocessed doacross (or the §2.3 linear variant
        with ``linear=True``); optionally in a caller-supplied execution
        ``order`` (see :class:`~repro.core.doconsider.Doconsider`).  With
        ``trace=True`` the executor-phase timeline lands in
        ``result.extras["trace"]``."""
        return self._runner.run_preprocessed(
            loop,
            schedule=self.schedule if schedule is None else schedule,
            chunk=self.chunk if chunk is None else chunk,
            order=order,
            order_label=order_label,
            linear=linear,
            trace=trace,
        )

    def run_stripmined(
        self, loop: IrregularLoop, block: int, chunk: int | None = None
    ) -> RunResult:
        """Run the §2.3 strip-mined variant with ``block`` iterations per
        inner doacross."""
        kind = self.schedule if isinstance(self.schedule, str) else "cyclic"
        return self._runner.run_stripmined(
            loop,
            block,
            schedule_kind=kind,
            chunk=self.chunk if chunk is None else chunk,
        )

    def runner(self) -> SimulatedRunner:
        """The underlying backend (for baselines sharing the machine)."""
        return self._runner


def parallelize(
    loop: IrregularLoop,
    processors: int = 16,
    cost_model: CostModel | None = None,
    assert_independent: bool = False,
    known_distance: int | None = None,
    schedule="cyclic",
    chunk: int = 1,
) -> tuple[RunResult, TransformPlan]:
    """Automatically select and run the cheapest sound strategy.

    Mirrors the paper's compiler flow: the *static* structure of the loop
    (plus optional user assertions) picks among doall, classic doacross,
    linear-subscript doacross, and the full preprocessed doacross.  Returns
    the run result together with the plan that justified it.
    """
    plan = plan_transform(
        loop,
        assert_independent=assert_independent,
        known_distance=known_distance,
    )
    pd = PreprocessedDoacross(
        processors=processors,
        cost_model=cost_model,
        schedule=schedule,
        chunk=chunk,
    )
    runner = pd.runner()
    if plan.strategy == STRATEGY_DOALL:
        result = runner.run_doall(loop, schedule=schedule, chunk=chunk)
    elif plan.strategy == STRATEGY_CLASSIC_DOACROSS:
        result = runner.run_classic(
            loop, plan.uniform_distance, schedule=schedule, chunk=chunk
        )
    elif plan.strategy == STRATEGY_LINEAR:
        result = pd.run(loop, linear=True)
    else:
        result = pd.run(loop)
    result.extras.setdefault("plan", plan.describe())
    return result, plan
