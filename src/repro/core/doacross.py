"""The public preprocessed-doacross API.

:class:`PreprocessedDoacross` bundles a simulated machine, a reusable
workspace, and a default schedule behind the interface the examples and
benchmarks use::

    from repro import PreprocessedDoacross
    runner = PreprocessedDoacross(processors=16)
    result = runner.run(loop)
    print(result.summary())

:func:`parallelize` is the fully automatic entry point: it asks the
"compiler" (:func:`repro.ir.transform.plan_transform`) which strategy is
sound for the loop's static structure and dispatches accordingly — onto
any execution backend (``backend="simulated"|"threaded"|"vectorized"|
"multiproc"``, or a :class:`~repro.backends.base.Runner` instance).

Both entry points take their options keyword-only; the old positional
forms still work behind a :class:`DeprecationWarning` shim.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.backends.base import Runner
from repro.backends.simulated import SimulatedRunner
from repro.core.results import RunResult
from repro.core.workspace import DoacrossWorkspace
from repro.errors import ScheduleError
from repro.ir.loop import IrregularLoop
from repro.ir.transform import (
    STRATEGY_CLASSIC_DOACROSS,
    STRATEGY_DOALL,
    STRATEGY_LINEAR,
    TransformPlan,
    plan_transform,
)
from repro.machine.costs import CostModel
from repro.machine.engine import Machine
from repro.machine.scheduler import SCHEDULE_KINDS, IterationSchedule

__all__ = ["PreprocessedDoacross", "parallelize"]


def _validate_schedule_options(schedule, chunk) -> None:
    """Fail fast on malformed schedule options (satisfying the contract
    that bad configuration raises :class:`ScheduleError` at construction,
    not deep inside the scheduler mid-run)."""
    if chunk is not None and chunk < 1:
        raise ScheduleError(f"chunk must be >= 1, got {chunk}")
    if (
        schedule is not None
        and not isinstance(schedule, IterationSchedule)
        and schedule not in SCHEDULE_KINDS
    ):
        raise ScheduleError(
            f"unknown schedule kind {schedule!r}; expected one of "
            f"{'/'.join(SCHEDULE_KINDS)} or an IterationSchedule"
        )


def _shim_positional(
    args: tuple,
    names: tuple,
    given: dict,
    what: str,
    stacklevel: int = 3,
) -> dict:
    """Map legacy positional options onto keyword names, warning once.

    ``stacklevel`` counts from :func:`warnings.warn`: one frame for this
    helper, one for the deprecated public entry point, so the default of 3
    attributes the warning to *its caller's* source line — the line that
    actually needs editing.  Entry points that add intermediate frames
    must pass a correspondingly larger value (asserted by the
    ``pytest.warns`` source-location tests).
    """
    if len(args) > len(names):
        raise TypeError(
            f"{what} takes at most {len(names)} positional options "
            f"({', '.join(names)}); got {len(args)}"
        )
    warnings.warn(
        f"positional options to {what} are deprecated; "
        f"pass {', '.join(names[: len(args)])} as keyword arguments",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    for name, value in zip(names, args):
        if given.get(name) is not _UNSET:
            raise TypeError(f"{what} got multiple values for {name!r}")
        given[name] = value
    return given


_UNSET = object()


class PreprocessedDoacross:
    """Inspector/executor/postprocessor runner with sensible defaults.

    Parameters
    ----------
    processors:
        Simulated processor count (paper experiments use 16).  Ignored when
        an explicit ``machine`` is supplied.
    cost_model:
        Cycle costs; defaults to the calibrated model (DESIGN.md §7).
    machine:
        A pre-built :class:`~repro.machine.engine.Machine` (overrides
        ``processors``/``cost_model``/``bus``).
    workspace:
        Scratch arrays shared across runs (created on demand).  Reuse across
        many loop instances is the paper's Figure-3 design point.
    schedule, chunk:
        Default executor schedule (kind string or
        :class:`~repro.machine.scheduler.IterationSchedule`) and chunk size.
        Validated here — an unknown kind or ``chunk < 1`` raises
        :class:`~repro.errors.ScheduleError` immediately.
    bus:
        Enable the shared-bus contention model.
    coherence:
        Enable the write-invalidate coherence model (requires a cost model
        with ``coherence_miss > 0``).
    """

    def __init__(
        self,
        processors: int = 16,
        cost_model: CostModel | None = None,
        machine: Machine | None = None,
        workspace: DoacrossWorkspace | None = None,
        schedule="cyclic",
        chunk: int = 1,
        bus: bool = False,
        coherence: bool = False,
    ):
        _validate_schedule_options(schedule, chunk)
        if machine is None:
            machine = Machine(
                processors, cost_model=cost_model, bus=bus, coherence=coherence
            )
        self.machine = machine
        self.workspace = workspace if workspace is not None else DoacrossWorkspace()
        self.schedule = schedule
        self.chunk = chunk
        self._runner = SimulatedRunner(self.machine, self.workspace)

    # ------------------------------------------------------------------
    def run(
        self,
        loop: IrregularLoop,
        *args,
        order: np.ndarray | None = _UNSET,
        order_label: str = _UNSET,
        linear: bool = _UNSET,
        schedule=_UNSET,
        chunk: int | None = _UNSET,
        trace: bool = _UNSET,
    ) -> RunResult:
        """Run the full preprocessed doacross (or the §2.3 linear variant
        with ``linear=True``); optionally in a caller-supplied execution
        ``order`` (see :class:`~repro.core.doconsider.Doconsider`).  With
        ``trace=True`` the executor-phase timeline lands in
        ``result.extras["trace"]``.

        Options are keyword-only; the pre-Runner positional form
        ``run(loop, order, order_label, linear, schedule, chunk, trace)``
        still works but emits a :class:`DeprecationWarning`.
        """
        given = {
            "order": order,
            "order_label": order_label,
            "linear": linear,
            "schedule": schedule,
            "chunk": chunk,
            "trace": trace,
        }
        if args:
            given = _shim_positional(
                args,
                ("order", "order_label", "linear", "schedule", "chunk", "trace"),
                given,
                "PreprocessedDoacross.run",
            )
        defaults = {
            "order": None,
            "order_label": "natural",
            "linear": False,
            "schedule": None,
            "chunk": None,
            "trace": False,
        }
        opt = {
            k: (defaults[k] if v is _UNSET else v) for k, v in given.items()
        }
        _validate_schedule_options(opt["schedule"], opt["chunk"])
        return self._runner.run(
            loop,
            schedule=self.schedule if opt["schedule"] is None else opt["schedule"],
            chunk=self.chunk if opt["chunk"] is None else opt["chunk"],
            order=opt["order"],
            order_label=opt["order_label"],
            linear=opt["linear"],
            trace=opt["trace"],
        )

    def run_stripmined(
        self, loop: IrregularLoop, block: int, chunk: int | None = None
    ) -> RunResult:
        """Run the §2.3 strip-mined variant with ``block`` iterations per
        inner doacross."""
        kind = self.schedule if isinstance(self.schedule, str) else "cyclic"
        return self._runner.run_stripmined(
            loop,
            block,
            schedule_kind=kind,
            chunk=self.chunk if chunk is None else chunk,
        )

    def runner(self) -> SimulatedRunner:
        """The underlying backend (for baselines sharing the machine)."""
        return self._runner


def parallelize(
    loop: IrregularLoop,
    *args,
    spec=None,
    processors: int = _UNSET,
    cost_model: CostModel | None = _UNSET,
    assert_independent: bool = _UNSET,
    known_distance: int | None = _UNSET,
    schedule=_UNSET,
    chunk: int = _UNSET,
    backend: str | Runner = "simulated",
    cache=None,
    validate: str | None = _UNSET,
    observe: bool = _UNSET,
    analyze: str | None = _UNSET,
) -> tuple[RunResult, TransformPlan]:
    """Automatically select and run the cheapest sound strategy.

    Mirrors the paper's compiler flow: the *static* structure of the loop
    (plus optional user assertions) picks among doall, classic doacross,
    linear-subscript doacross, and the full preprocessed doacross.  Returns
    the run result together with the plan that justified it.

    Parameters
    ----------
    spec:
        A :class:`~repro.passes.spec.PlanSpec` — the consolidated form of
        the per-run options below.  When given, planning and execution go
        through the schedule-pass pipeline (:mod:`repro.passes`):
        unsupported options raise a structured
        :class:`~repro.passes.spec.UnsupportedPlanOption` at plan time,
        and the resulting plan is attached as
        ``result.extras["schedule_plan"]``.  Cannot be combined with the
        legacy option keywords (``cache`` is a resource and composes
        fine).  The scattered ``schedule``/``chunk``/``validate``/
        ``observe``/``analyze`` keywords still work but emit a
        :class:`DeprecationWarning` pointing here.
    backend:
        Where to execute: ``"simulated"`` (default — simulated cycles, all
        strategy specializations), ``"threaded"`` (real threads,
        ``processors`` becomes the thread count), ``"vectorized"`` (batched
        wavefronts, measured wall clock, inspector-cache amortization),
        ``"multiproc"`` (real OS processes over shared memory,
        ``processors`` becomes the worker count, ``chunk`` sizes the §2.3
        strips), ``"auto"`` (the telemetry-driven tuner picks a measured
        backend per dependence structure; see
        :mod:`repro.passes.autotune`), or any
        :class:`~repro.backends.base.Runner` instance.
        Non-simulated backends execute every strategy through the same
        generalized protocol; the plan still records what a specializing
        compiler would have done.
    cache:
        Optional :class:`~repro.backends.cache.InspectorCache` shared
        across calls (vectorized and multiproc backends).
    validate:
        ``"static"`` runs the lint rules and the happens-before race
        checker (:mod:`repro.lint`) against the chosen backend's schedule
        *before* executing; an uncovered true dependence raises
        :class:`~repro.errors.RaceConditionError`, and the findings are
        attached as ``result.extras["lint"]`` /
        ``result.extras["race_check"]``.  ``"sanitize"`` checks the run
        *dynamically* instead: the backend shadow-logs its actual reads,
        writes, posts, and waits, and a vector-clock replay
        (:mod:`repro.sanitize`) verifies every true dependence against a
        witnessed happens-before edge, raising
        :class:`~repro.errors.SanitizerError` on any uncovered pair and
        attaching the clean report as ``result.extras["sanitize"]``.
        ``None`` (default) skips validation.
    observe:
        ``True`` attaches a :class:`~repro.obs.telemetry.Telemetry` blob
        (phase spans + unified metrics, one schema on every backend) to
        ``result.telemetry`` — wall-clock spans on the threaded and
        vectorized backends, cycle-clock spans synthesized from the
        simulator's own accounting on the simulated backend.
    analyze:
        ``"symbolic"`` runs the symbolic dependence engine
        (:func:`repro.analysis.analyze_loop`) and feeds the proven verdict
        into strategy selection: a DOALL-proven loop dispatches to the
        doall specialization and a constant-distance one to the classic
        doacross *without any caller assertion*, and on the threaded /
        vectorized / multiproc backends an elidable verdict skips the
        runtime inspector entirely.  ``"symbolic+check"`` additionally
        cross-checks the verdict against the runtime inspector
        (:func:`repro.analysis.cross_check`), raising
        :class:`~repro.errors.ProofError` on divergence.  Not accepted
        together with a pre-built :class:`Runner` instance — configure
        ``analyze`` on the runner itself in that case.

    Options are keyword-only; the pre-Runner positional form
    ``parallelize(loop, processors, cost_model, assert_independent,
    known_distance, schedule, chunk)`` still works but emits a
    :class:`DeprecationWarning`.
    """
    if spec is not None:
        legacy = {
            "processors": processors,
            "cost_model": cost_model,
            "assert_independent": assert_independent,
            "known_distance": known_distance,
            "schedule": schedule,
            "chunk": chunk,
            "validate": validate,
            "observe": observe,
            "analyze": analyze,
        }
        passed = [k for k, v in legacy.items() if v is not _UNSET]
        if args or passed or backend != "simulated":
            raise TypeError(
                "parallelize(spec=...) cannot be combined with the legacy "
                f"option keywords (got {passed or [repr(backend)]}); fold "
                "them into the PlanSpec"
            )
        from repro.passes.execute import run_with_spec

        return run_with_spec(loop, spec, cache=cache)

    shimmed = [
        name
        for name, value in (
            ("schedule", schedule),
            ("chunk", chunk),
            ("validate", validate),
            ("observe", observe),
            ("analyze", analyze),
        )
        if value is not _UNSET
    ]
    if shimmed and not args:
        warnings.warn(
            f"the {', '.join(shimmed)} keyword option(s) on parallelize are "
            "deprecated; pass a consolidated PlanSpec via "
            "parallelize(loop, spec=PlanSpec(...))",
            DeprecationWarning,
            stacklevel=2,
        )
    validate = None if validate is _UNSET else validate
    observe = False if observe is _UNSET else observe
    analyze = None if analyze is _UNSET else analyze

    if not isinstance(backend, Runner) and backend == "auto":
        from repro.passes.execute import run_with_spec
        from repro.passes.spec import PlanSpec

        auto_spec = PlanSpec(
            backend="auto",
            processors=16 if processors is _UNSET else processors,
            schedule=None if schedule is _UNSET else schedule,
            chunk=None if chunk is _UNSET else chunk,
            analyze=analyze,
            validate=validate,
            observe=observe,
        )
        return run_with_spec(
            loop,
            auto_spec,
            cache=cache,
            assert_independent=(
                False if assert_independent is _UNSET else assert_independent
            ),
            known_distance=(
                None if known_distance is _UNSET else known_distance
            ),
        )

    given = {
        "processors": processors,
        "cost_model": cost_model,
        "assert_independent": assert_independent,
        "known_distance": known_distance,
        "schedule": schedule,
        "chunk": chunk,
    }
    if args:
        given = _shim_positional(
            args,
            (
                "processors",
                "cost_model",
                "assert_independent",
                "known_distance",
                "schedule",
                "chunk",
            ),
            given,
            "parallelize",
        )
    defaults = {
        "processors": 16,
        "cost_model": None,
        "assert_independent": False,
        "known_distance": None,
        "schedule": "cyclic",
        "chunk": 1,
    }
    opt = {k: (defaults[k] if v is _UNSET else v) for k, v in given.items()}

    if analyze not in (None, "symbolic", "symbolic+check"):
        raise ValueError(
            f"unknown analyze mode {analyze!r}; expected 'symbolic', "
            "'symbolic+check' or None"
        )
    verdict = None
    if analyze is not None:
        if isinstance(backend, Runner):
            raise ValueError(
                "analyze cannot be combined with a pre-built Runner "
                "instance; configure analyze on the runner itself"
            )
        from repro.analysis import analyze_loop

        verdict = analyze_loop(loop)

    plan = plan_transform(
        loop,
        assert_independent=opt["assert_independent"],
        known_distance=opt["known_distance"],
        verdict=verdict,
    )

    if validate not in (None, "static", "sanitize"):
        raise ValueError(
            f"unknown validate mode {validate!r}; expected 'static', "
            "'sanitize', or None"
        )

    if isinstance(backend, Runner) or backend != "simulated":
        if isinstance(backend, Runner):
            runner = backend
            if validate == "static":
                from repro.backends.validating import ValidatingRunner

                runner = ValidatingRunner(runner)
            elif validate == "sanitize":
                from repro.sanitize.runner import SanitizingRunner

                runner = SanitizingRunner(runner)
            if observe:
                from repro.obs.instrument import InstrumentedRunner

                runner = InstrumentedRunner(runner)
        else:
            from repro.backends import _build_runner

            runner = _build_runner(
                backend,
                processors=opt["processors"],
                cost_model=opt["cost_model"],
                cache=cache,
                validate=validate,
                observe=observe,
                analyze=analyze,
            )
        # The "cyclic"/chunk-1 defaults describe the *simulated* machine's
        # schedule; forwarding them here would spuriously note schedule as
        # ignored on every run and force multiproc (which honors chunk)
        # into 1-iteration strips.  Real backends get only what the caller
        # actually asked for and pick their own defaults otherwise.
        result = runner.run(
            loop,
            schedule=None if given["schedule"] is _UNSET else opt["schedule"],
            chunk=None if given["chunk"] is _UNSET else opt["chunk"],
        )
        result.extras.setdefault("plan", plan.describe())
        return result, plan

    if validate == "static":
        from repro.errors import RaceConditionError
        from repro.lint.driver import run_lints
        from repro.lint.hb import check_backend_schedule

        kind = opt["schedule"] if isinstance(opt["schedule"], str) else None
        lint_findings = run_lints(
            loop,
            plan=plan,
            schedule=kind,
            chunk=opt["chunk"],
            processors=opt["processors"],
        )
        race_report = check_backend_schedule(
            loop,
            "simulated",
            processors=opt["processors"],
            schedule=opt["schedule"],
            chunk=opt["chunk"],
        )
        if not race_report.passed:
            raise RaceConditionError(race_report)

    if analyze == "symbolic+check" and verdict is not None:
        from repro.analysis import cross_check

        cross_check(loop, verdict, strict=True)

    pd = PreprocessedDoacross(
        processors=opt["processors"],
        cost_model=opt["cost_model"],
        schedule=opt["schedule"],
        chunk=opt["chunk"],
    )
    runner = pd.runner()

    def _dispatch() -> RunResult:
        if plan.strategy == STRATEGY_DOALL:
            return runner.run_doall(
                loop, schedule=opt["schedule"], chunk=opt["chunk"]
            )
        if plan.strategy == STRATEGY_CLASSIC_DOACROSS:
            return runner.run_classic(
                loop,
                plan.uniform_distance,
                schedule=opt["schedule"],
                chunk=opt["chunk"],
            )
        if plan.strategy == STRATEGY_LINEAR:
            return pd.run(loop, linear=True)
        return pd.run(loop)

    if validate == "sanitize":
        from repro.sanitize.runner import sanitize_simulated_run

        result = sanitize_simulated_run(runner, loop, _dispatch)
    else:
        result = _dispatch()
    if validate == "static":
        result.extras["lint"] = [d.as_dict() for d in lint_findings]
        result.extras["race_check"] = race_report.as_dict()
    if verdict is not None:
        result.extras["analyze"] = analyze
        result.extras["verdict"] = verdict.kind
        if verdict.distance is not None:
            result.extras["verdict_distance"] = int(verdict.distance)
    result.extras.setdefault("plan", plan.describe())
    if observe:
        from repro.obs.instrument import attach_simulated_telemetry

        attach_simulated_telemetry(result)
    return result, plan
