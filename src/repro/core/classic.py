"""Classic doacross baseline (a-priori dependence distance).

The construct the paper contrasts against (§1, citing Cytron [2]): when the
compiler *does* know a uniform dependence distance ``d``, iteration ``i``
simply synchronizes on the completion of iteration ``i − d`` — no inspector,
no ``iter`` checks, no renaming.  Its executor iteration is cheaper than the
preprocessed one by exactly the ``dep_check`` terms; the comparison between
the two isolates what run-time generality costs.

Only *sound* for loops whose every true dependence has distance ``d`` and
which carry no antidependencies; eligibility is verified at run time here
(the backend raises otherwise).
"""

from __future__ import annotations

from repro.backends.simulated import SimulatedRunner
from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop
from repro.machine.costs import CostModel
from repro.machine.engine import Machine

__all__ = ["ClassicDoacross"]


class ClassicDoacross:
    """Runner for the classic fixed-distance doacross."""

    def __init__(
        self,
        processors: int = 16,
        cost_model: CostModel | None = None,
        machine: Machine | None = None,
        schedule="cyclic",
        chunk: int = 1,
    ):
        if machine is None:
            machine = Machine(processors, cost_model=cost_model)
        self.machine = machine
        self.schedule = schedule
        self.chunk = chunk
        self._runner = SimulatedRunner(machine)

    def run(self, loop: IrregularLoop, distance: int) -> RunResult:
        """Run with the a-priori distance ``d = distance`` (validated)."""
        return self._runner.run_classic(
            loop, distance, schedule=self.schedule, chunk=self.chunk
        )
