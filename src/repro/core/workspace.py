"""Reusable scratch arrays for the preprocessed doacross.

The paper (§2.1, Figure 3) stresses that ``iter`` and ``ready`` are *reused*
across multiple preprocessed doacross loops: the postprocessing phase
restores them to their pristine state (``iter`` all ``MAXINT``, ``ready``
all ``NOTDONE``), so one allocation amortizes over many loop instances.
:class:`DoacrossWorkspace` is that allocation: the ``iter`` array, the
``ynew`` value array, and bookkeeping that lets tests verify the
clean-after-postprocess invariant.

(The ``ready`` flags live on the backend side — a
:class:`~repro.machine.flags.FlagStore` in simulation, ``threading.Event``
objects in the threaded backend — but their reset cost is charged by the
postprocessor just the same.)
"""

from __future__ import annotations

import numpy as np

__all__ = ["MAXINT", "DoacrossWorkspace"]

#: The paper's ``MAXINT`` sentinel: ``iter[off] == MAXINT`` means "element
#: ``off`` is not written by any iteration of the current loop", which the
#: executor's ``check > 0`` branch maps to "read the old value, don't wait".
MAXINT = np.iinfo(np.int64).max


class DoacrossWorkspace:
    """Scratch arrays sized to the shared array ``y``.

    Attributes
    ----------
    iter_arr:
        The paper's ``iter``: for each element of ``y``, the iteration that
        writes it, or :data:`MAXINT`.
    ynew:
        The renamed write target (paper's ``ynew``); writes never touch the
        old ``y`` until postprocessing copies them back, which is what
        removes antidependence ordering.
    invocations:
        How many loop instances have used this workspace (reuse counter).
    """

    def __init__(self, y_size: int = 0):
        self.iter_arr = np.full(y_size, MAXINT, dtype=np.int64)
        self.ynew = np.zeros(y_size, dtype=np.float64)
        self.invocations = 0

    @property
    def y_size(self) -> int:
        return len(self.iter_arr)

    def ensure_size(self, y_size: int) -> None:
        """Grow the scratch arrays if the loop's ``y`` is larger.

        Growing preserves the clean state; shrinking never happens (the whole
        point is reuse across loops of similar footprint).
        """
        if y_size > len(self.iter_arr):
            grown_iter = np.full(y_size, MAXINT, dtype=np.int64)
            grown_iter[: len(self.iter_arr)] = self.iter_arr
            self.iter_arr = grown_iter
            grown_new = np.zeros(y_size, dtype=np.float64)
            grown_new[: len(self.ynew)] = self.ynew
            self.ynew = grown_new

    def is_clean(self) -> bool:
        """Whether ``iter`` is pristine (all :data:`MAXINT`) — the state the
        postprocessing phase must restore (paper Figure 3)."""
        return bool(np.all(self.iter_arr == MAXINT))

    def dirty_indices(self) -> np.ndarray:
        """Indices where ``iter`` is not pristine (diagnostics for tests)."""
        return np.nonzero(self.iter_arr != MAXINT)[0]

    def scratch_bytes(self) -> int:
        """Memory footprint of the scratch arrays (the quantity §2.3's
        strip-mining variant reduces)."""
        return self.iter_arr.nbytes + self.ynew.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DoacrossWorkspace(y_size={self.y_size}, "
            f"invocations={self.invocations}, clean={self.is_clean()})"
        )
