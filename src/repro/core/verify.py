"""Cross-strategy verification: run a loop every sound way and compare.

The library's central contract is that every parallel strategy reproduces
the sequential loop exactly.  :func:`verify_loop` makes that contract a
user-facing debugging tool: given any :class:`~repro.ir.loop.IrregularLoop`
it runs the sequential oracle plus every strategy *applicable* to the loop
(eligibility decided by the same analysis the runners use), reports the
maximum absolute deviation per strategy, and says PASS/FAIL.

Useful when developing a new workload encoding: a subscript-mapping bug
shows up as one strategy disagreeing rather than as a mysterious wrong
number downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.threaded import ThreadedRunner
from repro.core.amortized import AmortizedDoacross
from repro.core.classic import ClassicDoacross
from repro.core.doacross import PreprocessedDoacross
from repro.core.doall_runner import DoallRunner
from repro.core.doconsider import Doconsider
from repro.ir.analysis import (
    CAT_ANTI,
    CAT_TRUE,
    classify_reads,
    uniform_distance,
)
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import AffineSubscript

__all__ = ["StrategyCheck", "VerificationReport", "verify_loop"]


@dataclass(frozen=True)
class StrategyCheck:
    """Outcome of one strategy's comparison against the oracle."""

    strategy: str
    max_abs_diff: float
    passed: bool
    skipped_reason: str | None = None

    @property
    def skipped(self) -> bool:
        return self.skipped_reason is not None


@dataclass
class VerificationReport:
    """All strategy checks for one loop."""

    loop_name: str
    tolerance: float
    checks: list[StrategyCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks if not c.skipped)

    @property
    def ran(self) -> list[StrategyCheck]:
        return [c for c in self.checks if not c.skipped]

    def summary(self) -> str:
        lines = [
            f"verification of {self.loop_name!r} "
            f"(tolerance {self.tolerance:g}): "
            f"{'PASS' if self.passed else 'FAIL'}"
        ]
        for c in self.checks:
            if c.skipped:
                lines.append(f"  - {c.strategy}: skipped ({c.skipped_reason})")
            else:
                verdict = "ok" if c.passed else "MISMATCH"
                lines.append(
                    f"  - {c.strategy}: {verdict} "
                    f"(max |diff| = {c.max_abs_diff:.3e})"
                )
        return "\n".join(lines)


def verify_loop(
    loop: IrregularLoop,
    processors: int = 8,
    tolerance: float = 1e-12,
    include_threaded: bool = True,
    threads: int = 4,
) -> VerificationReport:
    """Run every applicable strategy and compare against the oracle.

    Strategies whose eligibility conditions the loop does not meet are
    reported as skipped (with the reason) rather than failed.
    """
    reference = loop.run_sequential()
    report = VerificationReport(loop_name=loop.name, tolerance=tolerance)

    def check(name: str, y: np.ndarray) -> None:
        diff = float(np.max(np.abs(y - reference))) if len(reference) else 0.0
        report.checks.append(
            StrategyCheck(
                strategy=name, max_abs_diff=diff, passed=diff <= tolerance
            )
        )

    def skip(name: str, reason: str) -> None:
        report.checks.append(
            StrategyCheck(
                strategy=name,
                max_abs_diff=float("nan"),
                passed=True,
                skipped_reason=reason,
            )
        )

    runner = PreprocessedDoacross(processors=processors)
    check("preprocessed-doacross", runner.run(loop).y)
    check("doconsider-doacross", Doconsider(doacross=runner).run(loop).y)
    block = max(1, loop.n // 4)
    check("stripmined-doacross", runner.run_stripmined(loop, block=block).y)
    check(
        "amortized-doacross(x2)",
        # Two instances would compose the loop with itself; verify the
        # single-instance form, which must equal one plain run.
        AmortizedDoacross(doacross=runner).run(loop, 1).y,
    )

    if isinstance(loop.write_subscript, AffineSubscript):
        check("linear-doacross", runner.run(loop, linear=True).y)
    else:
        skip("linear-doacross", "write subscript is not statically affine")

    _, _, categories = classify_reads(loop)
    has_true = bool(np.any(categories == CAT_TRUE))
    has_anti = bool(np.any(categories == CAT_ANTI))

    distance = uniform_distance(loop)
    if distance is not None and not has_anti:
        check(
            "classic-doacross",
            ClassicDoacross(processors=processors).run(loop, distance).y,
        )
    else:
        skip(
            "classic-doacross",
            "no uniform dependence distance"
            if distance is None
            else "loop carries antidependencies",
        )

    if not has_true and not has_anti:
        check("doall", DoallRunner(processors=processors).run(loop).y)
    else:
        skip("doall", "loop carries cross-iteration dependencies")

    # Imported here: backends.vectorized pulls in backends.cache, which
    # would cycle back into repro.core at module-import time.
    from repro.backends.vectorized import VectorizedRunner

    check("vectorized-wavefront", VectorizedRunner().run(loop).y)

    if include_threaded:
        check(
            f"threaded({threads})",
            ThreadedRunner(threads=threads).run_preprocessed(loop).y,
        )

    return report
