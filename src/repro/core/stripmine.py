"""Strip-mined preprocessed doacross (paper §2.3).

The original loop ``L`` becomes a sequential outer loop over contiguous
blocks, each block an inner preprocessed doacross.  Pre- and postprocessing
run per block, so the scratch arrays (``iter``, ``ready``) are reused — the
modeled scratch footprint shrinks from the whole index set to the widest
block's write range, at the price of extra barriers and reduced cross-block
overlap.  :class:`StripminedDoacross` exposes the trade-off; ablation B
(DESIGN.md §5) sweeps the block size.
"""

from __future__ import annotations

from repro.core.doacross import PreprocessedDoacross
from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop

__all__ = ["StripminedDoacross"]


class StripminedDoacross:
    """Facade for the blocked variant; see
    :meth:`repro.backends.simulated.SimulatedRunner.run_stripmined`."""

    def __init__(
        self,
        block: int,
        doacross: PreprocessedDoacross | None = None,
        **doacross_kwargs,
    ):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.block = block
        self.doacross = (
            doacross
            if doacross is not None
            else PreprocessedDoacross(**doacross_kwargs)
        )

    def run(self, loop: IrregularLoop, block: int | None = None) -> RunResult:
        """Run the blocked pipeline (``block`` overrides the constructor's
        block size for this run)."""
        return self.doacross.run_stripmined(
            loop, self.block if block is None else block
        )
