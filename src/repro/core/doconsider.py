"""The doconsider transformation: wavefront iteration reordering.

Paper §3.2: "A modified loop was produced by carrying out the loop
iterations in a more advantageous order.  This reordering of loop iterations
leaves the inter-iteration dependencies unchanged but reduces the effects of
these dependencies on performance."  The mechanism — reference [4], *The
Doconsider Loop* — schedules iterations level by level through the
true-dependence DAG: all iterations whose dependencies are satisfied form a
wavefront and run concurrently.

Here the reordering composes with the preprocessed doacross exactly as in
the paper: the executor still resolves every reference at run time through
``iter``/``ready`` (synchronization is *not* removed), but because whole
wavefronts are adjacent in the new order, processors almost never arrive at
a ``ready`` flag before its writer has finished.

Cost accounting: the wavefront computation is itself runtime preprocessing.
For triangular solves it is amortized over the many solves performed per
factorization (the standard practice in the Saltz et al. line of work), so
by default it is *reported* (``extras["reorder_cycles_modeled"]``) but not
added to the makespan; pass ``include_reorder_cost=True`` to charge it.
"""

from __future__ import annotations

import numpy as np

from repro.core.doacross import PreprocessedDoacross
from repro.core.results import RunResult
from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import LevelSchedule, compute_levels
from repro.ir.loop import IrregularLoop

__all__ = ["level_order", "Doconsider"]


def level_order(loop: IrregularLoop) -> tuple[np.ndarray, LevelSchedule]:
    """Wavefront execution order for ``loop``.

    Returns ``(order, schedule)``: ``order[p]`` is the original iteration to
    run at position ``p``; ``schedule`` carries the level decomposition.
    """
    schedule = compute_levels(loop)
    return schedule.order, schedule


def modeled_reorder_cycles(
    loop: IrregularLoop,
    graph: DependenceGraph,
    processors: int,
    schedule: LevelSchedule | None = None,
    item_cycles: int = 4,
    barrier_cycles: int | None = None,
) -> int:
    """Modeled cost of computing the wavefronts at run time.

    The standard parallel algorithm (as in reference [4]): initialize
    in-degrees (touch every iteration and edge once, fully parallel), then
    peel frontiers — each round emits the current zero-in-degree set and
    decrements its out-edges, with a barrier per round.  The rounds
    serialize across levels, so the modeled cost is::

        ceil((n + edges)/P)·c  +  Σ_levels [ceil((|level| + out_edges)/P)·c + B]

    where ``c`` is the per-touched-item cost and ``B`` the barrier.  Deep
    DAGs (many levels) therefore pay real preprocessing — the reason this
    cost is amortized over repeated solves rather than paid per solve.
    """
    if schedule is None:
        schedule = compute_levels(graph)
    if barrier_cycles is None:
        barrier_cycles = 20 + 4 * processors  # CostModel.barrier defaults

    def share(work: int) -> int:
        return -(-work // processors) * item_cycles  # ceil division

    total = share(loop.n + graph.edge_count) + barrier_cycles
    out_degrees = graph.out_degrees()
    for k in range(schedule.n_levels):
        members = schedule.order[
            schedule.level_ptr[k] : schedule.level_ptr[k + 1]
        ]
        frontier_work = len(members) + int(out_degrees[members].sum())
        total += share(frontier_work) + barrier_cycles
    return total


class Doconsider:
    """Preprocessed doacross with doconsider (level) reordering.

    Wraps a :class:`~repro.core.doacross.PreprocessedDoacross`; see module
    docstring for the reorder-cost accounting convention.
    """

    def __init__(
        self,
        doacross: PreprocessedDoacross | None = None,
        include_reorder_cost: bool = False,
        simulate_reorder: bool = False,
        **doacross_kwargs,
    ):
        self.doacross = (
            doacross
            if doacross is not None
            else PreprocessedDoacross(**doacross_kwargs)
        )
        self.include_reorder_cost = include_reorder_cost
        #: When True, the wavefront computation is *simulated* as machine
        #: phases (capturing within-round load imbalance) instead of the
        #: closed-form estimate.
        self.simulate_reorder = simulate_reorder

    def run(self, loop: IrregularLoop, **run_kwargs) -> RunResult:
        """Compute the wavefront order and run the preprocessed doacross in
        it; level counts, widest wavefront, and the modeled reorder cost
        land in ``result.extras``."""
        graph = DependenceGraph.from_loop(loop)
        schedule = compute_levels(graph)
        order = schedule.order
        result = self.doacross.run(
            loop,
            order=order,
            order_label=f"doconsider(levels={schedule.n_levels})",
            **run_kwargs,
        )
        result.strategy = "doconsider-doacross"
        if self.simulate_reorder:
            reorder_cycles, _phases = self.doacross.runner().run_wavefront_preprocessing(
                loop, graph, schedule
            )
            result.extras["reorder_cycles_simulated"] = reorder_cycles
        else:
            reorder_cycles = modeled_reorder_cycles(
                loop,
                graph,
                self.doacross.machine.processors,
                schedule=schedule,
            )
            result.extras["reorder_cycles_modeled"] = reorder_cycles
        result.extras["n_levels"] = schedule.n_levels
        result.extras["max_wavefront"] = schedule.max_width()
        if self.include_reorder_cost:
            result.total_cycles += reorder_cycles
            result.extras["reorder_cost_included"] = True
        return result
