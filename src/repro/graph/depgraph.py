"""The true-dependence DAG of an irregular loop.

Nodes are iterations ``0..n-1``; there is an edge ``w → r`` for every unique
true dependence (iteration ``r`` reads an element written by ``w < r``).
Because every edge points forward in the original iteration order, the graph
is acyclic by construction and natural order is already topological — which
is why a forward sweep suffices for level computation.

Storage is CSR (two flat arrays), built vectorized from the analysis layer.
"""

from __future__ import annotations

import numpy as np

from repro.ir.analysis import dependence_pairs
from repro.ir.loop import IrregularLoop

__all__ = ["DependenceGraph"]


class DependenceGraph:
    """CSR adjacency of the true-dependence DAG.

    Attributes
    ----------
    n:
        Number of iterations (nodes).
    succ_ptr, succ:
        CSR successors: the readers depending on iteration ``w`` are
        ``succ[succ_ptr[w]:succ_ptr[w+1]]``.
    pred_ptr, pred:
        CSR predecessors: the writers iteration ``r`` depends on.
    """

    def __init__(self, n: int, edges: np.ndarray):
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges) and (
            edges.min() < 0 or edges.max() >= n or np.any(edges[:, 0] >= edges[:, 1])
        ):
            raise ValueError(
                "dependence edges must satisfy 0 <= writer < reader < n"
            )
        self.n = n
        self.edge_count = len(edges)

        # Successors grouped by writer.
        order = np.argsort(edges[:, 0], kind="stable") if len(edges) else []
        by_writer = edges[order] if len(edges) else edges
        self.succ_ptr = np.zeros(n + 1, dtype=np.int64)
        if len(edges):
            counts = np.bincount(by_writer[:, 0], minlength=n)
            self.succ_ptr[1:] = np.cumsum(counts)
        self.succ = by_writer[:, 1].copy() if len(edges) else np.empty(0, np.int64)

        # Predecessors grouped by reader.
        order = np.argsort(edges[:, 1], kind="stable") if len(edges) else []
        by_reader = edges[order] if len(edges) else edges
        self.pred_ptr = np.zeros(n + 1, dtype=np.int64)
        if len(edges):
            counts = np.bincount(by_reader[:, 1], minlength=n)
            self.pred_ptr[1:] = np.cumsum(counts)
        self.pred = by_reader[:, 0].copy() if len(edges) else np.empty(0, np.int64)

    @classmethod
    def from_loop(cls, loop: IrregularLoop) -> "DependenceGraph":
        return cls(loop.n, dependence_pairs(loop))

    def successors(self, w: int) -> np.ndarray:
        return self.succ[self.succ_ptr[w] : self.succ_ptr[w + 1]]

    def predecessors(self, r: int) -> np.ndarray:
        return self.pred[self.pred_ptr[r] : self.pred_ptr[r + 1]]

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.pred_ptr)

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.succ_ptr)

    def sources(self) -> np.ndarray:
        """Iterations with no predecessors (runnable immediately)."""
        return np.nonzero(self.in_degrees() == 0)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DependenceGraph(n={self.n}, edges={self.edge_count})"
