"""Greedy graph coloring — the other classic irregular-loop reordering.

Level scheduling (doconsider) reorders iterations *within* a fixed
dependence structure, preserving the computation exactly.  Coloring takes
the complementary route for sweep-style loops (Gauss-Seidel relaxation,
assembly): renumber the *vertices* so that no two adjacent vertices share a
color; sweeping color by color then makes every within-color iteration
independent — huge wavefronts — at the price of *changing the sweep order*
(and therefore the iterate sequence, though not the fixed point).  The
red-black ordering of structured grids is the two-color special case.

This module provides greedy coloring over CSR adjacency with validation;
:func:`repro.workloads.mesh.sweep_loop` consumes the color order, and the
mesh tests contrast the two philosophies: doconsider = same results,
bounded wavefronts; coloring = different (but equally valid) sweep, maximal
wavefronts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_coloring", "color_order", "validate_coloring"]


def greedy_coloring(
    adj_ptr: np.ndarray, adj: np.ndarray, order: np.ndarray | None = None
) -> np.ndarray:
    """Color an undirected graph greedily (first-fit).

    Parameters
    ----------
    adj_ptr, adj:
        CSR adjacency: neighbors of vertex ``v`` are
        ``adj[adj_ptr[v]:adj_ptr[v+1]]``.  Assumed symmetric.
    order:
        Vertex visit order (default: natural).  Greedy quality depends on
        it; any order yields at most ``max_degree + 1`` colors.

    Returns the color of each vertex (``int64``, colors ``0..k-1``).
    """
    n = len(adj_ptr) - 1
    if order is None:
        order = np.arange(n, dtype=np.int64)
    colors = np.full(n, -1, dtype=np.int64)
    for v in order:
        v = int(v)
        neighbor_colors = {
            int(colors[u]) for u in adj[adj_ptr[v] : adj_ptr[v + 1]]
        }
        c = 0
        while c in neighbor_colors:
            c += 1
        colors[v] = c
    return colors


def color_order(colors: np.ndarray) -> np.ndarray:
    """Vertices sorted by ``(color, index)`` — the sweep order in which all
    same-color vertices are contiguous (and mutually independent)."""
    colors = np.asarray(colors, dtype=np.int64)
    n = len(colors)
    return np.lexsort((np.arange(n, dtype=np.int64), colors)).astype(np.int64)


def validate_coloring(
    adj_ptr: np.ndarray, adj: np.ndarray, colors: np.ndarray
) -> None:
    """Raise ``AssertionError`` if any edge connects same-colored vertices
    or any vertex is uncolored."""
    colors = np.asarray(colors)
    if np.any(colors < 0):
        raise AssertionError("uncolored vertex")
    n = len(adj_ptr) - 1
    for v in range(n):
        for u in adj[adj_ptr[v] : adj_ptr[v + 1]]:
            if int(u) != v and colors[int(u)] == colors[v]:
                raise AssertionError(
                    f"edge ({v}, {int(u)}) connects color {int(colors[v])} "
                    f"to itself"
                )
