"""Level (wavefront) scheduling of the dependence DAG.

The doconsider transformation reorders loop iterations so that all
iterations of one *level* — iterations whose true dependencies are all
satisfied by previous levels — are contiguous.  Level of an iteration:
``0`` if it has no predecessors, else ``1 + max(level of predecessors)``.

Because every dependence edge points forward in the original order, one
forward sweep computes all levels; sorting by ``(level, original index)``
then yields the reordered execution sequence, which by construction makes
every dependence point backward in execution order (the property
:func:`repro.backends.base.validate_execution_order` demands).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.depgraph import DependenceGraph
from repro.ir.loop import IrregularLoop

__all__ = ["compute_levels", "LevelSchedule"]


@dataclass
class LevelSchedule:
    """A wavefront decomposition of a loop's iterations.

    Attributes
    ----------
    levels:
        ``levels[i]`` — the wavefront index of iteration ``i``.
    order:
        Execution order: iterations sorted by ``(level, index)``.
    level_ptr:
        CSR boundaries into ``order``: level ``k`` is
        ``order[level_ptr[k]:level_ptr[k+1]]``.
    """

    levels: np.ndarray
    order: np.ndarray
    level_ptr: np.ndarray

    @property
    def n_levels(self) -> int:
        return len(self.level_ptr) - 1

    @property
    def n(self) -> int:
        return len(self.order)

    def level_sizes(self) -> np.ndarray:
        return np.diff(self.level_ptr)

    def slices(self):
        """Iterate ``(lo, hi)`` boundaries into ``order``, one per level —
        the wavefront batches the vectorized backend executes."""
        for k in range(self.n_levels):
            yield int(self.level_ptr[k]), int(self.level_ptr[k + 1])

    def max_width(self) -> int:
        """Widest wavefront — an upper bound on exploitable parallelism at
        any instant."""
        sizes = self.level_sizes()
        return int(sizes.max()) if len(sizes) else 0

    def average_width(self) -> float:
        """Mean iterations per wavefront — the classic level-scheduling
        parallelism estimate ``n / n_levels``."""
        if self.n_levels == 0:
            return 0.0
        return self.n / self.n_levels

    def validate(self, graph: DependenceGraph) -> None:
        """Assert the wavefront property: every edge crosses levels
        strictly upward (tested invariant, DESIGN.md §6)."""
        for w in range(graph.n):
            for r in graph.successors(w):
                if self.levels[w] >= self.levels[r]:
                    raise AssertionError(
                        f"edge {w}→{r} does not ascend levels "
                        f"({self.levels[w]} → {self.levels[r]})"
                    )


def compute_levels(
    source: IrregularLoop | DependenceGraph,
    method: str = "auto",
) -> LevelSchedule:
    """Compute the wavefront decomposition of a loop (or its DAG).

    Parameters
    ----------
    method:
        ``"sweep"`` — the original per-node forward sweep (natural order is
        topological, so one pass suffices); ``"frontier"`` — a vectorized
        Kahn-by-waves propagation whose Python-level work is one step per
        *level* rather than per node (much faster on wide DAGs, which is
        exactly where the vectorized backend operates); ``"auto"`` — pick
        by size.  Both produce identical schedules (tested).
    """
    graph = (
        source
        if isinstance(source, DependenceGraph)
        else DependenceGraph.from_loop(source)
    )
    n = graph.n
    if method == "auto":
        method = "frontier" if n >= 2048 else "sweep"
    if method == "frontier":
        levels = _levels_by_frontier(graph)
    elif method == "sweep":
        levels = _levels_by_sweep(graph)
    else:
        raise ValueError(
            f"unknown level method {method!r}; expected sweep/frontier/auto"
        )

    order = np.lexsort((np.arange(n, dtype=np.int64), levels)).astype(np.int64)
    n_levels = int(levels.max()) + 1 if n else 0
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    if n:
        level_ptr[1:] = np.cumsum(np.bincount(levels, minlength=n_levels))
    return LevelSchedule(levels=levels, order=order, level_ptr=level_ptr)


def _levels_by_sweep(graph: DependenceGraph) -> np.ndarray:
    """Per-node forward sweep (edges point forward, so natural order is
    topological)."""
    n = graph.n
    levels = np.zeros(n, dtype=np.int64)
    pred_ptr, pred = graph.pred_ptr, graph.pred
    for r in range(n):
        lo, hi = pred_ptr[r], pred_ptr[r + 1]
        if hi > lo:
            levels[r] = int(levels[pred[lo:hi]].max()) + 1
    return levels


def _levels_by_frontier(graph: DependenceGraph) -> np.ndarray:
    """Vectorized Kahn-by-waves: wave ``k`` holds the nodes whose last
    predecessor completed in wave ``k-1``, which is exactly the
    longest-path level.  Python-level cost is one iteration per level; all
    per-node work is NumPy array operations."""
    n = graph.n
    levels = np.zeros(n, dtype=np.int64)
    indeg = graph.in_degrees().astype(np.int64).copy()
    succ_ptr, succ = graph.succ_ptr, graph.succ
    frontier = np.nonzero(indeg == 0)[0]
    lvl = 0
    while len(frontier):
        levels[frontier] = lvl
        counts = succ_ptr[frontier + 1] - succ_ptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        # Flat positions of every successor edge leaving the frontier.
        offsets = np.repeat(succ_ptr[frontier], counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        targets = succ[offsets + within]
        indeg -= np.bincount(targets, minlength=n)
        frontier = np.unique(targets[indeg[targets] == 0])
        lvl += 1
    return levels
