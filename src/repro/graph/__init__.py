"""Iteration dependence-graph analysis.

The doconsider transformation (paper §3.2, reference [4]) and the harness's
ideal-speedup bounds both need the loop's *true-dependence DAG*: a node per
iteration, an edge ``w → r`` whenever iteration ``r`` reads a value written
by earlier iteration ``w``.

- :mod:`repro.graph.depgraph` — :class:`DependenceGraph`, CSR adjacency
  built from :func:`repro.ir.analysis.dependence_pairs`.
- :mod:`repro.graph.levels` — level (wavefront) scheduling.
- :mod:`repro.graph.critical_path` — weighted critical path and parallelism
  bounds.
"""

from repro.graph.coloring import color_order, greedy_coloring, validate_coloring
from repro.graph.critical_path import critical_path_cycles, ideal_speedup
from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import LevelSchedule, compute_levels

__all__ = [
    "DependenceGraph",
    "compute_levels",
    "LevelSchedule",
    "critical_path_cycles",
    "ideal_speedup",
    "greedy_coloring",
    "color_order",
    "validate_coloring",
]
