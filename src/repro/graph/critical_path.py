"""Critical-path analysis of the dependence DAG.

The longest weighted path through the true-dependence DAG is a lower bound
on any parallel schedule's makespan; ``total_work / critical_path`` bounds
the achievable speedup regardless of processor count.  The benchmark reports
use these to show how close the preprocessed doacross (natural and
doconsider-reordered) comes to the structural limit of each problem.

Weights are per-iteration executor cycles (overhead + terms), so the bound
is in the same units as the simulated runs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.depgraph import DependenceGraph
from repro.ir.loop import IrregularLoop
from repro.machine.costs import CostModel

__all__ = ["iteration_weights", "critical_path_cycles", "ideal_speedup"]


def iteration_weights(
    loop: IrregularLoop, cost_model: CostModel
) -> np.ndarray:
    """Executor cycle cost of each iteration (no waits, no dispatch)."""
    work = cost_model.effective_work(loop.work)
    term_counts = loop.reads.term_counts()
    return (
        cost_model.exec_iter_overhead
        + work.overhead
        + term_counts * (work.term + cost_model.dep_check)
        + cost_model.flag_set
    ).astype(np.int64)


def critical_path_cycles(
    loop: IrregularLoop,
    cost_model: CostModel,
    graph: DependenceGraph | None = None,
) -> int:
    """A lower bound on any schedule's makespan from the dependence DAG.

    Dependence chains *pipeline*: a reader's setup work overlaps its
    writer's execution, so after the awaited flag flips only the post-wake
    cost remains (flag check + term consume + flag set).  The bound is
    therefore: iteration ``r`` finishes no earlier than the latest of (a)
    its own full weight and (b) any predecessor's finish plus the minimal
    post-wake step.  One forward sweep (natural order is topological).
    """
    if graph is None:
        graph = DependenceGraph.from_loop(loop)
    weights = iteration_weights(loop, cost_model)
    work = cost_model.effective_work(loop.work)
    step = cost_model.flag_check + work.term_consume + cost_model.flag_set
    finish = np.zeros(loop.n, dtype=np.int64)
    pred_ptr, pred = graph.pred_ptr, graph.pred
    for r in range(loop.n):
        lo, hi = pred_ptr[r], pred_ptr[r + 1]
        after_preds = (
            int(finish[pred[lo:hi]].max()) + step if hi > lo else 0
        )
        finish[r] = max(int(weights[r]), after_preds)
    return int(finish.max()) if loop.n else 0


def ideal_speedup(
    loop: IrregularLoop,
    cost_model: CostModel,
    graph: DependenceGraph | None = None,
) -> float:
    """Structural speedup bound: total executor work over the critical path.

    This ignores inspector/postprocessor/barrier overheads and assumes
    unlimited processors — an optimistic ceiling the measured runs must stay
    under (tested invariant).
    """
    if loop.n == 0:
        return 1.0
    if graph is None:
        graph = DependenceGraph.from_loop(loop)
    total = int(iteration_weights(loop, cost_model).sum())
    path = critical_path_cycles(loop, cost_model, graph)
    if path == 0:
        return 1.0
    return total / path
