"""Vector clocks over shadow-log lanes.

A lane's *own* component never needs storing: replay processes each
lane's events in order, so a lane's own time is simply "index of the
current event, plus one".  What must be stored is the *cross-lane*
knowledge a lane accumulates by acquiring posted tokens or passing
barriers.  :class:`VectorClock` is therefore a sparse mapping
``lane_id -> timestamp`` holding only components a lane has learned
about; missing components are implicitly zero.

Happens-before for a read-after-write pair is then one lookup: the write
by lane ``w`` at time ``t`` happens before the reader's clock ``vc``
iff ``vc.get(w) >= t`` (or the reader *is* lane ``w`` and its own time
exceeds ``t`` — the replay handles that case positionally).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Mapping, Tuple

__all__ = ["VectorClock"]

Lane = Hashable


class VectorClock:
    """A sparse vector clock: ``lane -> last known timestamp``.

    Instances are mutable during replay (joins happen in place) but
    cheap to snapshot (:meth:`copy`) at the synchronization points where
    the detector needs a checkpoint.
    """

    __slots__ = ("_c",)

    def __init__(self, components: Mapping[Lane, int] | None = None):
        self._c: Dict[Lane, int] = dict(components) if components else {}

    def get(self, lane: Lane) -> int:
        """The clock's component for ``lane`` (0 if never learned)."""
        return self._c.get(lane, 0)

    def covers(self, lane: Lane, timestamp: int) -> bool:
        """True iff this clock has witnessed ``lane`` advance to at
        least ``timestamp`` — i.e. the event at ``timestamp`` on
        ``lane`` happens-before the point this clock describes."""
        return self._c.get(lane, 0) >= timestamp

    def advance(self, lane: Lane, timestamp: int) -> None:
        """Raise ``lane``'s component to at least ``timestamp``."""
        if timestamp > self._c.get(lane, 0):
            self._c[lane] = timestamp

    def join(self, other: "VectorClock") -> None:
        """Component-wise maximum, in place (the acquire-side merge)."""
        c = self._c
        for lane, t in other._c.items():
            if t > c.get(lane, 0):
                c[lane] = t

    def copy(self) -> "VectorClock":
        vc = VectorClock()
        vc._c = dict(self._c)
        return vc

    def items(self) -> Iterator[Tuple[Lane, int]]:
        return iter(self._c.items())

    def as_dict(self) -> Dict[Lane, int]:
        return dict(self._c)

    def __len__(self) -> int:
        return len(self._c)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._c == other._c

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(
            self._c.items(), key=lambda kv: str(kv[0])))
        return f"VectorClock({{{inner}}})"
