"""A :class:`Runner` decorator that sanitizes the execution it wraps.

``SanitizingRunner`` attaches a :class:`~repro.sanitize.shadow.
ShadowCapture` to the innermost backend for the duration of one
:meth:`run`, lets the backend execute for real (logging the accesses and
synchronization events it actually performs), then replays the logs
through :func:`~repro.sanitize.detector.detect`.  A witnessed violation
aborts with :class:`~repro.errors.SanitizerError`; a clean run returns
normally with the report riding in ``result.extras["sanitize"]`` and the
violation/log-size counters in the run's telemetry metrics.

This is the ``validate="sanitize"`` path of
:func:`~repro.backends.make_runner` and
:func:`~repro.core.doacross.parallelize` — the dynamic dual of
:class:`~repro.backends.validating.ValidatingRunner`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.base import Runner
from repro.backends.validating import _innermost
from repro.errors import SanitizerError, WaitTimeout
from repro.ir.loop import IrregularLoop
from repro.sanitize.detector import SanitizeReport, detect
from repro.sanitize.shadow import ShadowCapture

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.results import RunResult

__all__ = ["SanitizingRunner", "sanitize_simulated_run"]


def _record_metrics(target: Runner, report: SanitizeReport) -> None:
    """Surface the sanitizer's counters through the run's metrics
    registry when the observation layer attached one (wall-clock
    backends under ``observe=True``)."""
    met = getattr(target, "_obs_metrics", None)
    if met is None:
        return
    met.count("sanitize_events", report.events)
    met.count("sanitize_lanes", report.lanes)
    met.count("sanitize_pairs_checked", report.pairs_checked)
    met.count("sanitize_violations", report.total_violations)


def _attach_extras(result, report: SanitizeReport) -> None:
    result.extras["sanitize"] = report.as_dict()


class SanitizingRunner(Runner):
    """Run ``inner`` with shadow logging on, then check the logs."""

    def __init__(self, inner: Runner):
        self.inner = inner
        self.name = f"sanitizing({inner.name})"

    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        target = _innermost(self.inner)
        capture = ShadowCapture()
        capture.meta["backend"] = target.name
        target._san_capture = capture
        try:
            result = self.inner.run(
                loop, order=order, schedule=schedule, chunk=chunk,
                trace=trace,
            )
        except WaitTimeout as exc:
            # The run died in a busy-wait: check whatever was logged
            # before the stall.  A violation explains the hang far
            # better than the raw timeout does; if the partial logs are
            # clean (e.g. the stall is in an uninstrumented region) the
            # timeout itself is still the best report.
            report = detect(capture, loop, partial=True)
            _record_metrics(target, report)
            if not report.ok:
                raise SanitizerError(report) from exc
            raise
        finally:
            target._san_capture = None
        report = detect(capture, loop)
        _record_metrics(target, report)
        _attach_extras(result, report)
        if not report.ok:
            raise SanitizerError(report)
        return result


def sanitize_simulated_run(runner: Runner, loop: IrregularLoop, run_fn):
    """Sanitize one legacy-path simulated execution.

    The legacy ``parallelize`` path dispatches simulated strategies
    through :class:`~repro.core.doacross.PreprocessedDoacross` rather
    than ``Runner.run``; this helper wraps that dispatch with the same
    capture/detect/raise discipline as :class:`SanitizingRunner`.
    ``run_fn`` is a zero-argument callable performing the run; ``runner``
    is the :class:`~repro.backends.simulated.SimulatedRunner` that
    executes it.
    """
    capture = ShadowCapture()
    capture.meta["backend"] = runner.name
    runner._san_capture = capture
    try:
        result = run_fn()
    finally:
        runner._san_capture = None
    report = detect(capture, loop)
    _attach_extras(result, report)
    if not report.ok:
        raise SanitizerError(report)
    return result
