"""Replay shadow logs and check witnessed happens-before.

The detector answers one question: *did this particular execution order
every cross-iteration true dependence with synchronization it actually
performed?*  The static checkers answer the planned-order version of the
question; this module answers it for the run the backend really did.

Two replay strategies share one report format:

- The **general path** (:class:`_Replay`) performs a worklist replay of
  the per-lane event lists.  Each lane owns a sparse
  :class:`~repro.sanitize.vclock.VectorClock` holding the cross-lane
  knowledge it has acquired; its own component is implicit (the index of
  the current event).  Lanes advance until they block on an acquire
  whose token is unposted or a barrier whose participants are
  incomplete; a global stall means the run's log cannot be linearized —
  every blocked lane yields a violation and is force-advanced so the
  remainder of the log is still examined.  Clock snapshots are taken
  only at joins (acquire/barrier), so memory is O(joins x lanes), not
  O(events).
- The **level fast path** (:func:`_detect_levels`) handles the
  vectorized backend, whose lanes are wavefront levels chained by
  synthetic tokens.  A chain of L levels would give the general path
  O(L^2) clock components (L can be ~n for a distance-1 chain), so the
  fast path checks ``write_level < read_level`` with numpy and a
  prefix-sum over broken chain links instead.

Required read-after-write pairs come from
:func:`repro.ir.analysis.classify_reads` — *not* from
``dependence_pairs``, which collapses per-element information the
violation messages need.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Tuple

import numpy as np

from repro.ir.analysis import CAT_TRUE, classify_reads, writer_map
from repro.sanitize.events import (
    EV_ACQUIRE,
    EV_BARRIER,
    EV_BULK_READ,
    EV_BULK_WRITE,
    EV_POST,
    EV_READ,
    EV_WRITE,
    SRC_NEW,
    SRC_OLD,
)
from repro.sanitize.shadow import ShadowCapture
from repro.sanitize.vclock import VectorClock

__all__ = [
    "Violation",
    "SanitizeReport",
    "detect",
    "required_pairs",
    "MAX_REPORTED",
]

#: Violations materialized into the report; the rest are only counted.
MAX_REPORTED = 50

# Violation kinds
V_MISSING_WRITE = "missing-write"
V_MISSING_READ = "missing-read"
V_STALE_READ = "stale-read"
V_NO_HB_EDGE = "no-hb-edge"
V_UNSATISFIED_ACQUIRE = "unsatisfied-acquire"
V_UNSATISFIED_BARRIER = "unsatisfied-barrier"
V_UNEXPECTED_NEW_READ = "unexpected-new-read"


@dataclass
class Violation:
    """One witnessed protocol violation.

    ``writer``/``reader`` are *iterations*; ``writer_lane``/
    ``reader_lane`` are the shadow-log lanes (thread id, ``(pid, wid)``
    pair, simulated processor, or wavefront level) that performed them.
    """

    kind: str
    element: int | None = None
    writer: int | None = None
    reader: int | None = None
    writer_lane: Hashable | None = None
    reader_lane: Hashable | None = None
    token: Hashable | None = None
    detail: str = ""

    def describe(self) -> str:
        bits = [self.kind]
        if self.element is not None:
            bits.append(f"element {self.element}")
        if self.writer is not None or self.reader is not None:
            w = "?" if self.writer is None else str(self.writer)
            r = "?" if self.reader is None else str(self.reader)
            bits.append(f"iterations {w}->{r}")
        if self.writer_lane is not None or self.reader_lane is not None:
            wl = "?" if self.writer_lane is None else str(self.writer_lane)
            rl = "?" if self.reader_lane is None else str(self.reader_lane)
            bits.append(f"lanes {wl}->{rl}")
        if self.token is not None:
            bits.append(f"token {self.token}")
        if self.detail:
            bits.append(self.detail)
        return ": ".join((bits[0], "; ".join(bits[1:]))) if len(bits) > 1 \
            else bits[0]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "element": self.element,
            "writer": self.writer,
            "reader": self.reader,
            "writer_lane": _jsonable(self.writer_lane),
            "reader_lane": _jsonable(self.reader_lane),
            "token": _jsonable(self.token),
            "detail": self.detail,
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, np.integer):
        return int(value)
    return value


@dataclass
class SanitizeReport:
    """The detector's verdict over one run's shadow logs."""

    violations: List[Violation] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    pairs_checked: int = 0
    events: int = 0
    lanes: int = 0
    backend: str | None = None
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counts

    @property
    def total_violations(self) -> int:
        return sum(self.counts.values())

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def add(self, violation: Violation) -> None:
        self._count(violation.kind)
        if len(self.violations) < MAX_REPORTED:
            self.violations.append(violation)

    def summary(self) -> str:
        where = f" [{self.backend}]" if self.backend else ""
        if self.ok:
            return (
                f"sanitizer{where}: clean — {self.pairs_checked} "
                f"dependence pair(s) checked over {self.events} event(s) "
                f"on {self.lanes} lane(s)"
            )
        kinds = ", ".join(
            f"{k}×{v}" for k, v in sorted(self.counts.items())
        )
        lines = [
            f"sanitizer{where}: {self.total_violations} violation(s) "
            f"({kinds}) over {self.pairs_checked} pair(s), "
            f"{self.events} event(s), {self.lanes} lane(s)"
        ]
        for v in self.violations[:8]:
            lines.append(f"  - {v.describe()}")
        hidden = self.total_violations - min(
            len(self.violations), 8
        )
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "backend": self.backend,
            "pairs_checked": self.pairs_checked,
            "events": self.events,
            "lanes": self.lanes,
            "counts": dict(self.counts),
            "total_violations": self.total_violations,
            "violations": [v.as_dict() for v in self.violations],
            "notes": list(self.notes),
            "summary": self.summary(),
        }


def _required_triples(loop) -> List[Tuple[int, int, int]]:
    """Unique ``(writer_iteration, reader_iteration, element)`` triples
    the §2.2 protocol must order — every cross-iteration true-dependence
    read term."""
    readers, writers, categories = classify_reads(loop)
    mask = categories == CAT_TRUE
    if not mask.any():
        return []
    elems = np.asarray(loop.reads.index)[mask]
    trip = np.stack(
        [writers[mask], readers[mask], elems.astype(np.int64)], axis=1
    )
    trip = np.unique(trip, axis=0)
    return [(int(w), int(r), int(e)) for w, r, e in trip]


def required_pairs(loop) -> List[Tuple[int, int, int]]:
    """Public name for the sanitizer's contract: the unique
    ``(writer_iteration, reader_iteration, element)`` triples whose reads
    must each be covered by a witnessed happens-before edge.  Used by the
    plan-time :class:`~repro.passes.builtin.SanitizePass` to record the
    check workload before execution."""
    return _required_triples(loop)


class _Replay:
    """Worklist replay of per-lane event lists (general path)."""

    def __init__(self, capture: ShadowCapture, report: SanitizeReport):
        self.report = report
        self.lanes: List[Hashable] = sorted(
            capture.lanes, key=lambda lid: (str(type(lid)), str(lid))
        )
        self.events: Dict[Hashable, List[tuple]] = {
            lid: self._expand(capture.lanes[lid]) for lid in self.lanes
        }
        self.pos: Dict[Hashable, int] = {lid: 0 for lid in self.lanes}
        self.vc: Dict[Hashable, VectorClock] = {
            lid: VectorClock() for lid in self.lanes
        }
        # Clock checkpoints: (event indices, snapshots) per lane, taken
        # only when a join changes the clock.
        self.checkpoints: Dict[Hashable, Tuple[List[int], List[VectorClock]]]
        self.checkpoints = {lid: ([], []) for lid in self.lanes}
        # First post wins: flags stay set, and re-posting must not grant
        # later acquirers more knowledge than the flag's value implies.
        self.posted: Dict[Hashable, Tuple[Hashable, int, VectorClock]] = {}
        self.barrier_arrivals: Dict[Hashable, Dict[Hashable, int]] = {}
        self.blocked: Dict[Hashable, tuple] = {}
        # Access records for the checking pass.
        self.writes: Dict[Tuple[int, int], Tuple[Hashable, int]] = {}
        self.reads: Dict[Tuple[int, int], List[Tuple[Hashable, int, int]]]
        self.reads = {}

    @staticmethod
    def _expand(events: List[tuple]) -> List[tuple]:
        """Expand bulk read/write events into scalar ones."""
        if not any(ev[0] in (EV_BULK_READ, EV_BULK_WRITE) for ev in events):
            return events
        out: List[tuple] = []
        for ev in events:
            kind = ev[0]
            if kind == EV_BULK_READ:
                _, iters, elems, srcs = ev
                for i, e, s in zip(iters, elems, srcs):
                    out.append((EV_READ, int(i), int(e), int(s)))
            elif kind == EV_BULK_WRITE:
                _, iters, elems = ev
                for i, e in zip(iters, elems):
                    out.append((EV_WRITE, int(i), int(e)))
            else:
                out.append(ev)
        return out

    def _checkpoint(self, lane: Hashable, idx: int) -> None:
        indices, snaps = self.checkpoints[lane]
        snapshot = self.vc[lane].copy()
        if indices and indices[-1] == idx:
            snaps[-1] = snapshot
        else:
            indices.append(idx)
            snaps.append(snapshot)

    def clock_at(self, lane: Hashable, idx: int) -> VectorClock | None:
        """The lane's cross-lane clock in effect at event index ``idx``
        (the last checkpoint at or before it)."""
        indices, snaps = self.checkpoints[lane]
        k = bisect_right(indices, idx)
        return snaps[k - 1] if k else None

    def run(self) -> None:
        while True:
            progress = self._sweep()
            if all(
                self.pos[lid] >= len(self.events[lid]) for lid in self.lanes
            ):
                return
            if not progress:
                self._break_stall()

    def _sweep(self) -> bool:
        progress = False
        for lane in self.lanes:
            if self._advance(lane):
                progress = True
        return progress

    def _advance(self, lane: Hashable) -> bool:
        """Run one lane until it blocks or exhausts its log; True if it
        processed at least one event."""
        events = self.events[lane]
        idx = self.pos[lane]
        moved = False
        vc = self.vc[lane]
        while idx < len(events):
            ev = events[idx]
            kind = ev[0]
            if kind == EV_READ:
                _, it, elem, src = ev
                self.reads.setdefault((it, elem), []).append(
                    (lane, idx, src)
                )
            elif kind == EV_WRITE:
                _, it, elem = ev
                self.writes.setdefault((it, elem), (lane, idx + 1))
            elif kind == EV_POST:
                token = ev[1]
                if token not in self.posted:
                    snapshot = vc.copy()
                    snapshot.advance(lane, idx + 1)
                    self.posted[token] = (lane, idx + 1, snapshot)
            elif kind == EV_ACQUIRE:
                token = ev[1]
                post = self.posted.get(token)
                if post is None:
                    self.blocked[lane] = ("a", token, idx)
                    self.pos[lane] = idx
                    return moved
                vc.join(post[2])
                self._checkpoint(lane, idx)
                self.blocked.pop(lane, None)
            elif kind == EV_BARRIER:
                gen = ev[1]
                arrivals = self.barrier_arrivals.setdefault(gen, {})
                arrivals.setdefault(lane, idx)
                if len(arrivals) < len(self.lanes):
                    self.blocked[lane] = ("b", gen, idx)
                    self.pos[lane] = idx
                    return moved
                self._release_barrier(gen)
                # _release_barrier advanced this lane past the barrier.
                idx = self.pos[lane]
                vc = self.vc[lane]
                moved = True
                continue
            idx += 1
            moved = True
        self.pos[lane] = idx
        return moved

    def _release_barrier(self, gen: Hashable) -> None:
        """All lanes arrived at ``gen``: join everyone into everyone."""
        arrivals = self.barrier_arrivals[gen]
        merged = VectorClock()
        for lane, idx in arrivals.items():
            merged.join(self.vc[lane])
            merged.advance(lane, idx + 1)
        for lane, idx in arrivals.items():
            self.vc[lane].join(merged)
            self._checkpoint(lane, idx)
            self.pos[lane] = idx + 1
            if self.blocked.get(lane, (None,))[0] == "b":
                del self.blocked[lane]

    def _break_stall(self) -> None:
        """No lane can advance: the log cannot be linearized.  Report
        each blocked lane and force it past its blocking event so the
        rest of the log is still checked."""
        report = self.report
        stalled = [
            lid
            for lid in self.lanes
            if self.pos[lid] < len(self.events[lid])
        ]
        for lane in stalled:
            why = self.blocked.pop(lane, None)
            idx = self.pos[lane]
            if why is not None and why[0] == "a":
                report.add(
                    Violation(
                        V_UNSATISFIED_ACQUIRE,
                        reader_lane=lane,
                        token=why[1],
                        detail=(
                            "wait acquired a flag no post ever set "
                            "(run stalled here)"
                        ),
                    )
                )
            elif why is not None and why[0] == "b":
                report.add(
                    Violation(
                        V_UNSATISFIED_BARRIER,
                        reader_lane=lane,
                        token=why[1],
                        detail=(
                            "barrier generation never completed: "
                            f"{len(self.barrier_arrivals.get(why[1], {}))}"
                            f"/{len(self.lanes)} lane(s) arrived"
                        ),
                    )
                )
            # Force past the blocking event without granting knowledge.
            self.pos[lane] = idx + 1
        # Partially-arrived barriers still merge what they can, so
        # later accesses on the arrived lanes keep their genuine edges.
        for gen, arrivals in list(self.barrier_arrivals.items()):
            if 0 < len(arrivals) < len(self.lanes):
                merged = VectorClock()
                for lane, idx in arrivals.items():
                    merged.join(self.vc[lane])
                    merged.advance(lane, idx + 1)
                for lane, idx in arrivals.items():
                    self.vc[lane].join(merged)
                    self._checkpoint(lane, idx)
                del self.barrier_arrivals[gen]


def _check_pairs(
    replay: _Replay,
    triples: List[Tuple[int, int, int]],
    report: SanitizeReport,
    partial: bool,
) -> None:
    allowed_new = {(r, e) for _, r, e in triples}
    for w_it, r_it, elem in triples:
        report.pairs_checked += 1
        write = replay.writes.get((w_it, elem))
        occurrences = replay.reads.get((r_it, elem))
        if occurrences is None:
            if not partial:
                report.add(
                    Violation(
                        V_MISSING_READ,
                        element=elem,
                        writer=w_it,
                        reader=r_it,
                        detail="required read never logged",
                    )
                )
            continue
        for r_lane, r_idx, src in occurrences:
            if src == SRC_OLD:
                report.add(
                    Violation(
                        V_STALE_READ,
                        element=elem,
                        writer=w_it,
                        reader=r_it,
                        writer_lane=None if write is None else write[0],
                        reader_lane=r_lane,
                        detail=(
                            "reader took the untouched input value where "
                            "the renamed value was required"
                        ),
                    )
                )
                continue
            if write is None:
                if not partial:
                    report.add(
                        Violation(
                            V_MISSING_WRITE,
                            element=elem,
                            writer=w_it,
                            reader=r_it,
                            reader_lane=r_lane,
                            detail="required write never logged",
                        )
                    )
                continue
            w_lane, w_time = write
            if w_lane == r_lane:
                if w_time <= r_idx:
                    continue
                edge = "program order reversed on one lane"
            else:
                vc = replay.clock_at(r_lane, r_idx)
                if vc is not None and vc.covers(w_lane, w_time):
                    continue
                edge = (
                    "no witnessed post/wait or barrier edge orders the "
                    "write before the read"
                )
            report.add(
                Violation(
                    V_NO_HB_EDGE,
                    element=elem,
                    writer=w_it,
                    reader=r_it,
                    writer_lane=w_lane,
                    reader_lane=r_lane,
                    detail=edge,
                )
            )
    if partial:
        return
    for (r_it, elem), occurrences in replay.reads.items():
        if (r_it, elem) in allowed_new:
            continue
        for r_lane, _, src in occurrences:
            if src == SRC_NEW:
                report.add(
                    Violation(
                        V_UNEXPECTED_NEW_READ,
                        element=elem,
                        reader=r_it,
                        reader_lane=r_lane,
                        detail=(
                            "read of the renamed vector where no true "
                            "dependence exists (corrupt iter array?)"
                        ),
                    )
                )
                break


def _lookup(
    sorted_keys: np.ndarray,
    sorted_values: np.ndarray,
    queries: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Binary-search ``queries`` in ``sorted_keys``; return a found mask
    and the matched values (``-1`` where unmatched)."""
    found = np.zeros(len(queries), dtype=bool)
    values = np.full(len(queries), -1, dtype=np.int64)
    if len(sorted_keys) == 0 or len(queries) == 0:
        return found, values
    ix = np.searchsorted(sorted_keys, queries)
    clamped = np.minimum(ix, len(sorted_keys) - 1)
    found = sorted_keys[clamped] == queries
    values[found] = sorted_values[clamped[found]]
    return found, values


def _detect_levels(
    capture: ShadowCapture,
    loop,
    report: SanitizeReport,
    partial: bool,
) -> None:
    """Numpy fast path for level-structured (vectorized) logs.

    Lane k is wavefront level k; the synthetic chain token ``-(k+1)``
    posted by level k and acquired by level k+1 makes the inter-level
    ordering transitive, so happens-before degenerates to
    ``write_level < read_level`` with every chain link between them
    intact.  Within a level all gathers precede all scatters, so a
    same-level pair is unordered.
    """
    n_levels = int(capture.meta["levels"])
    y_size = int(loop.y_size)

    acquired = np.zeros(n_levels + 1, dtype=bool)
    posted = np.zeros(n_levels + 1, dtype=bool)
    write_level = np.full(y_size, -1, dtype=np.int64)
    r_iters: List[np.ndarray] = []
    r_elems: List[np.ndarray] = []
    r_srcs: List[np.ndarray] = []
    r_levels: List[np.ndarray] = []
    for k in range(n_levels):
        for ev in capture.lanes.get(k, ()):
            kind = ev[0]
            if kind == EV_ACQUIRE:
                acquired[-int(ev[1])] = True
            elif kind == EV_POST:
                posted[-int(ev[1])] = True
            elif kind == EV_BULK_WRITE:
                write_level[np.asarray(ev[2], dtype=np.int64)] = k
            elif kind == EV_BULK_READ:
                elems = np.asarray(ev[2], dtype=np.int64)
                r_iters.append(np.asarray(ev[1], dtype=np.int64))
                r_elems.append(elems)
                r_srcs.append(np.asarray(ev[3], dtype=np.int64))
                r_levels.append(np.full(len(elems), k, dtype=np.int64))
            elif kind == EV_WRITE:
                write_level[int(ev[2])] = k
            elif kind == EV_READ:
                r_iters.append(np.asarray([ev[1]], dtype=np.int64))
                r_elems.append(np.asarray([ev[2]], dtype=np.int64))
                r_srcs.append(np.asarray([ev[3]], dtype=np.int64))
                r_levels.append(np.asarray([k], dtype=np.int64))

    # Chain link k (level k-1 -> level k) is intact iff level k-1 posted
    # token -k and level k acquired it.  cum[k] counts broken links at
    # or below k, so levels w < r are ordered iff cum[r] == cum[w].
    intact = posted[1:n_levels] & acquired[1:n_levels]
    broken = np.zeros(n_levels, dtype=np.int64)
    if n_levels > 1:
        broken[1:] = ~intact
        for k in np.nonzero(~intact)[0]:
            report.add(
                Violation(
                    V_UNSATISFIED_ACQUIRE,
                    reader_lane=int(k) + 1,
                    token=-(int(k) + 1),
                    detail=(
                        "level chain broken: level handoff token never "
                        "posted/acquired"
                    ),
                )
            )
    cum = np.cumsum(broken)

    if r_iters:
        li = np.concatenate(r_iters)
        le = np.concatenate(r_elems)
        ls = np.concatenate(r_srcs)
        ll = np.concatenate(r_levels)
    else:
        li = le = ls = ll = np.empty(0, dtype=np.int64)

    readers, writers, categories = classify_reads(loop)
    mask = categories == CAT_TRUE
    report.pairs_checked += int(mask.sum())
    if not mask.any() and len(li) == 0:
        return
    q_r = readers[mask].astype(np.int64)
    q_e = np.asarray(loop.reads.index, dtype=np.int64)[mask]
    q_w = writers[mask].astype(np.int64)

    key_all = li * y_size + le
    new_mask = ls == SRC_NEW
    key_new = key_all[new_mask]
    lvl_new = ll[new_mask]
    order = np.argsort(key_new, kind="stable")
    key_new_s, lvl_new_s = key_new[order], lvl_new[order]
    key_old_s = np.sort(key_all[~new_mask])

    key_q = q_r * y_size + q_e
    # Locate each required read among the logged new-value reads.
    found_new, r_lv = _lookup(key_new_s, lvl_new_s, key_q)
    found_old, _ = _lookup(key_old_s, key_old_s, key_q)

    w_lv = write_level[q_e]

    safe_w = np.maximum(w_lv, 0)
    safe_r = np.maximum(r_lv, 0)
    ordered = (
        found_new
        & (w_lv >= 0)
        & (w_lv < r_lv)
        & (cum[safe_r] == cum[safe_w])
    )
    bad = ~ordered
    for k in np.nonzero(bad)[0]:
        w_it, r_it, elem = int(q_w[k]), int(q_r[k]), int(q_e[k])
        if found_old[k] and not found_new[k]:
            report.add(
                Violation(
                    V_STALE_READ,
                    element=elem,
                    writer=w_it,
                    reader=r_it,
                    writer_lane=None if w_lv[k] < 0 else int(w_lv[k]),
                    detail=(
                        "reader took the untouched input value where "
                        "the renamed value was required"
                    ),
                )
            )
        elif not found_new[k]:
            if not partial:
                report.add(
                    Violation(
                        V_MISSING_READ,
                        element=elem,
                        writer=w_it,
                        reader=r_it,
                        detail="required read never logged",
                    )
                )
        elif w_lv[k] < 0:
            if not partial:
                report.add(
                    Violation(
                        V_MISSING_WRITE,
                        element=elem,
                        writer=w_it,
                        reader=r_it,
                        reader_lane=int(r_lv[k]),
                        detail="required write never logged",
                    )
                )
        else:
            same = "same wavefront level" if w_lv[k] == r_lv[k] else None
            late = "write scheduled after the read" \
                if w_lv[k] > r_lv[k] else None
            report.add(
                Violation(
                    V_NO_HB_EDGE,
                    element=elem,
                    writer=w_it,
                    reader=r_it,
                    writer_lane=int(w_lv[k]),
                    reader_lane=int(r_lv[k]),
                    detail=same or late or (
                        "level chain between writer and reader is broken"
                    ),
                )
            )

    if partial:
        return
    # New-value reads outside the required set.
    if len(key_new):
        key_req_s = np.sort(key_q)
        known, _ = _lookup(key_req_s, key_req_s, key_new)
        stray = np.nonzero(~known)[0]
        seen: set = set()
        for k in stray:
            pair = (int(key_new[k]) // y_size, int(key_new[k]) % y_size)
            if pair in seen:
                continue
            seen.add(pair)
            report.add(
                Violation(
                    V_UNEXPECTED_NEW_READ,
                    element=pair[1],
                    reader=pair[0],
                    reader_lane=int(lvl_new[k]),
                    detail=(
                        "read of the renamed vector where no true "
                        "dependence exists (corrupt iter array?)"
                    ),
                )
            )


def detect(
    capture: ShadowCapture,
    loop,
    partial: bool = False,
) -> SanitizeReport:
    """Check one run's shadow logs against the loop's true dependences.

    ``partial=True`` relaxes the completeness checks (missing reads and
    writes, unexpected new-value reads): it is used when the run died
    mid-flight (e.g. :class:`~repro.errors.WaitTimeout`), where only
    violations among the events actually witnessed are meaningful.
    """
    report = SanitizeReport(
        events=capture.total_events(),
        lanes=len(capture.lanes),
        backend=capture.meta.get("backend"),
    )
    triples = _required_triples(loop)
    has_access_events = any(
        ev[0] in (EV_READ, EV_WRITE, EV_BULK_READ, EV_BULK_WRITE)
        for events in capture.lanes.values()
        for ev in events
    )
    if not has_access_events and not partial:
        # A run with synchronization events but no accesses means the
        # execution strategy is uninstrumented (legacy simulated doall /
        # classic paths).  Under partial=True the same shape means the
        # run stalled before its first access — replay what *was*
        # logged, so blocked acquires still get named.
        report.pairs_checked = 0
        if triples:
            report.notes.append(
                "no shadow accesses logged: execution strategy is "
                "uninstrumented; nothing checked"
            )
        return report

    if capture.meta.get("levels"):
        _detect_levels(capture, loop, report, partial)
        return report

    replay = _Replay(capture, report)
    replay.run()
    _check_pairs(replay, triples, report, partial)
    return report
