"""Shadow-log event vocabulary.

Backends append tuples to per-lane event lists while executing; the
detector replays them.  Events are plain tuples (not dataclasses) because
the hot executor loops append millions of them — tuple construction is
the cheapest structured record CPython has.

Scalar events (first field is the kind tag):

``("r", iteration, element, src)``
    A read of ``y``/``ynew`` element ``element`` performed by
    ``iteration``.  ``src`` is :data:`SRC_OLD` (the untouched input
    vector — paper Figure 5's ``y[idx]`` branch) or :data:`SRC_NEW` (the
    renamed ``ynew`` vector, which is only safe after the writer's post).
``("w", iteration, element)``
    The iteration's single renamed write ``ynew[element] = acc``.
``("p", token)``
    A post: the lane published token ``token`` (for real backends the
    token is the written element whose ``ready`` flag was set; the
    vectorized backend posts one synthetic token per wavefront level).
``("a", token)``
    An acquire: the lane observed token ``token`` as posted before
    proceeding (a completed busy-wait, a chunk handoff, a level boundary).
``("b", generation)``
    The lane arrived at global barrier generation ``generation`` — a
    rendezvous of *all* lanes (the threaded backend's inspector/executor
    phase barrier).

Bulk events (vectorized backend — one event per wavefront level instead
of one per access):

``("R", iterations, elements, srcs)``
    Parallel arrays (numpy ``ndarray`` or sequences) of reads.
``("W", iterations, elements)``
    Parallel arrays of writes.

The detector expands bulk events during replay; backends never need to.
"""

from __future__ import annotations

__all__ = [
    "EV_READ",
    "EV_WRITE",
    "EV_POST",
    "EV_ACQUIRE",
    "EV_BARRIER",
    "EV_BULK_READ",
    "EV_BULK_WRITE",
    "SRC_OLD",
    "SRC_NEW",
]

EV_READ = "r"
EV_WRITE = "w"
EV_POST = "p"
EV_ACQUIRE = "a"
EV_BARRIER = "b"
EV_BULK_READ = "R"
EV_BULK_WRITE = "W"

#: The read came from the untouched input vector ``y`` (old value).
SRC_OLD = 0
#: The read came from the renamed output vector ``ynew`` (new value).
SRC_NEW = 1
