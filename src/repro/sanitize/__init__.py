"""Execution sanitizer: witnessed happens-before checking of real runs.

The static layer (:mod:`repro.lint.hb`, the symbolic engine) verifies the
*planned* order of a doacross schedule; nothing there verifies that an
actual execution honored it.  This package closes that gap — the dynamic
dual of the happens-before race checker:

- :mod:`repro.sanitize.shadow` — shadow logs: backends append the memory
  accesses and synchronization events they actually perform, one
  append-only event list per lane (thread / worker / simulated processor
  / wavefront level).
- :mod:`repro.sanitize.vclock` — per-lane vector clocks, advanced at
  wait/post/barrier/chunk-handoff events during replay.
- :mod:`repro.sanitize.detector` — replays the logs, assigns each access
  a clock, and checks every true-dependence read-after-write pair
  against the happens-before relation the run *witnessed*; violations
  surface as a structured :class:`~repro.errors.SanitizerError`.
- :mod:`repro.sanitize.runner` — the ``validate="sanitize"`` decorator
  runner (:class:`SanitizingRunner`).
- :mod:`repro.sanitize.mutate` — the schedule-mutation harness proving
  detector power: corrupted schedules, dropped waits/posts, reversed
  chunk round-robin, skipped scrubs; the kill rate is a CI gate.

Select it with ``PlanSpec(validate="sanitize")`` (or the deprecated
``validate="sanitize"`` keyword), or from the CLI:
``python -m repro sanitize``.
"""

from repro.sanitize.detector import SanitizeReport, Violation, detect
from repro.sanitize.mutate import MUTANTS, MutationReport, run_mutation_suite
from repro.sanitize.runner import SanitizingRunner
from repro.sanitize.shadow import ShadowCapture

__all__ = [
    "ShadowCapture",
    "SanitizeReport",
    "Violation",
    "detect",
    "SanitizingRunner",
    "MUTANTS",
    "MutationReport",
    "run_mutation_suite",
]
