"""Shadow-access capture: the per-run container backends log into.

A :class:`ShadowCapture` is attached to the innermost backend runner
(``runner._san_capture``) by :class:`~repro.sanitize.runner.
SanitizingRunner` for the duration of one ``run()`` call.  Each executing
lane (thread, worker process, simulated processor, wavefront level)
obtains its own append-only event list via :meth:`lane` and appends
tuples from the :mod:`~repro.sanitize.events` vocabulary; nothing is
shared between lanes mid-run, so logging needs no locking beyond the
GIL-atomic ``dict.setdefault``/``list.append``.

Worker *processes* cannot share the list: the multiprocessing backend
accumulates events locally and ships them back in its result payload;
the main process merges them with :meth:`ingest`, pid-tagging the lane so
two workers reusing worker-id 0 across pool generations stay distinct.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List

__all__ = ["ShadowCapture"]


class ShadowCapture:
    """Per-run shadow log: lane id -> ordered event list, plus metadata
    the detector uses to pick its replay strategy."""

    def __init__(self) -> None:
        self.lanes: Dict[Hashable, List[tuple]] = {}
        #: Backend-reported facts about the log's structure.  Recognised
        #: keys: ``backend`` (name), ``levels`` (vectorized: lanes are
        #: wavefront levels chained by synthetic tokens), ``pids``
        #: (multiproc: lanes are ``(pid, wid)`` tuples).
        self.meta: Dict[str, Any] = {}

    def lane(self, lane_id: Hashable) -> List[tuple]:
        """Get (or create) the event list for ``lane_id``.

        The returned list is the live log: backends keep a local
        reference and ``append`` directly to it inside the hot loop.
        """
        return self.lanes.setdefault(lane_id, [])

    def ingest(self, lane_id: Hashable, events: List[tuple],
               pid: int | None = None) -> None:
        """Merge an event list produced out-of-process.

        ``pid`` tags the lane id as ``(pid, lane_id)`` so logs from
        distinct OS processes never collide even if they reuse worker
        ids.
        """
        key: Hashable = (pid, lane_id) if pid is not None else lane_id
        self.lanes.setdefault(key, []).extend(events)
        if pid is not None:
            self.meta.setdefault("pids", []).append(pid)

    def total_events(self) -> int:
        """Number of logged events, counting bulk events by their width."""
        total = 0
        for events in self.lanes.values():
            for ev in events:
                kind = ev[0]
                if kind == "R" or kind == "W":
                    total += len(ev[2])
                else:
                    total += 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = {k: len(v) for k, v in self.lanes.items()}
        return f"ShadowCapture(lanes={sizes}, meta={self.meta})"
