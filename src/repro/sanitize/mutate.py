"""Schedule-mutation harness: proof of detector power.

A race detector that never fires is indistinguishable from one that
cannot fire.  This module provides the evidence: a deterministic
:class:`ProtocolInterpreter` that *models* the §2.2 post/wait protocol
in each backend shape (chunked workers, cyclic threads, wavefront
levels, speculative commit chains) and emits exactly the shadow logs a
conforming backend would — then a registry of :data:`MUTANTS` that
corrupt the protocol the way a buggy executor would: dropped waits,
dropped posts, reversed chunk round-robin, stale ``iter`` entries,
skipped shm scrubs, posts-before-writes, merged wavefront levels,
skipped barriers, skipped snapshot restores, dropped conflict edges,
out-of-order rollback re-execution.

The interpreter distinguishes the **planned** schedule (which drives
wait-*elision* decisions, exactly as a real backend bakes elisions in at
plan time) from the **actual** schedule it executes — so mutants that
change only the actual order (e.g. ``reverse-round-robin``) invalidate
elisions that were sound under the plan, which is precisely the class of
bug static checking cannot see.

:func:`run_mutation_suite` asserts two things at once:

- every unmutated interpretation is **clean** (no false positives), and
- the detector **kills** (reports at least one violation for) at least
  ``min_kill`` of the mutants.

The resulting kill rate is a CI gate (the dynamic dual of the
corrupted-schedule happens-before tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.ir.analysis import CAT_TRUE, classify_reads, writer_map
from repro.sanitize.detector import SanitizeReport, detect
from repro.sanitize.events import SRC_NEW, SRC_OLD
from repro.sanitize.shadow import ShadowCapture

__all__ = [
    "InterpreterConfig",
    "ProtocolInterpreter",
    "Mutant",
    "MUTANTS",
    "MutantResult",
    "MutationReport",
    "run_mutation_suite",
]


@dataclass
class InterpreterConfig:
    """Knobs of one protocol interpretation.  The default configuration
    is a conforming execution; mutants flip individual knobs."""

    mode: str = "chunked"  # "chunked" | "threaded" | "levels" | "speculative"
    lanes: int = 3
    chunk: int = 4
    # --- mutation knobs (all off by default) ---
    #: Suppress the first N acquire events a conforming run would emit.
    drop_waits: int = 0
    #: Suppress the first N post events a conforming run would emit.
    drop_posts: int = 0
    #: Each worker executes its chunk list in reverse order while
    #: wait-elision decisions still assume the planned (ascending) order.
    reverse_round_robin: bool = False
    #: Corrupt the ``iter`` array for the first N true-dependence
    #: elements: their entries revert to "unwritten", so readers take
    #: the stale input value without waiting.
    stale_iter: int = 0
    #: Model a skipped shm scrub: the ready flags of the first N
    #: true-dependence elements are left set from a previous session, so
    #: readers skip the wait entirely.
    skip_scrub: int = 0
    #: Emit each post before its write instead of after it.
    post_before_write: bool = False
    #: (levels mode) Execute level k+1's iterations inside level k —
    #: all gathers before all scatters, as the vectorized kernel would.
    merge_level_at: int | None = None
    #: (threaded mode) This lane skips the phase barrier.
    skip_barrier_lane: int | None = None
    #: (levels mode) Suppress the chain handoff post out of this level.
    drop_chain_link_at: int | None = None
    #: (speculative mode) The first N RAW-conflicting chunks commit the
    #: values they computed against the stale snapshot instead of being
    #: rolled back and re-executed — the skipped-restore bug.
    skip_restore: int = 0
    #: (speculative mode) The conflict detector misses the RAW edge of
    #: the first N conflicting chunks whose writer chunk is deferred:
    #: the reader chunk commits *before* the chunk that produces its
    #: input, while its log still claims the new value.
    drop_conflict_edge: int = 0
    #: (speculative mode) Rolled-back chunks re-execute in reverse chunk
    #: order instead of ascending chunk order.
    reverse_reexec: bool = False


class ProtocolInterpreter:
    """Deterministically interpret the post/wait protocol over a loop,
    emitting the shadow log a backend of the given shape would."""

    def __init__(self, loop, config: InterpreterConfig):
        self.loop = loop
        self.cfg = config
        self.writer_of = writer_map(loop)
        # Elements that carry at least one cross-iteration true
        # dependence, in ascending order — the targets the scoped
        # mutants (stale_iter, skip_scrub) corrupt so the corruption is
        # guaranteed to matter.
        readers, writers, categories = classify_reads(loop)
        mask = categories == CAT_TRUE
        self.dep_elements = np.unique(
            np.asarray(loop.reads.index)[mask]
        )
        # (writer, reader, element) per cross-iteration true-dep term,
        # for mutants that must target pairs with a known lane shape.
        self.dep_triples = np.stack(
            [
                writers[mask],
                readers[mask],
                np.asarray(loop.reads.index, dtype=np.int64)[mask],
            ],
            axis=1,
        ) if mask.any() else np.empty((0, 3), dtype=np.int64)

    # ------------------------------------------------------------------
    def interpret(self) -> ShadowCapture:
        capture = ShadowCapture()
        cfg = self.cfg
        if cfg.mode == "chunked":
            self._run_chunked(capture)
        elif cfg.mode == "threaded":
            self._run_threaded(capture)
        elif cfg.mode == "levels":
            self._run_levels(capture)
        elif cfg.mode == "speculative":
            self._run_speculative(capture)
        else:  # pragma: no cover - config error
            raise ValueError(f"unknown interpreter mode {cfg.mode!r}")
        return capture

    # ------------------------------------------------------------------
    def _corrupted_iter(self) -> np.ndarray:
        """The ``iter`` array as the (possibly mutated) run sees it."""
        arr = self.writer_of.copy()
        if self.cfg.stale_iter:
            for e in self.dep_elements[: self.cfg.stale_iter]:
                arr[e] = -1
        return arr

    def _stale_flags(
        self, elide: Callable[[int, int], bool] | None = None
    ) -> set:
        """Elements whose ready flags a skipped scrub leaves set.

        Only dependences whose wait would actually be *taken* (not
        elided into program order) are affected — a stale flag on a
        program-order-covered pair is harmless, so corrupting it would
        model a bug no execution can exhibit."""
        if not self.cfg.skip_scrub:
            return set()
        chosen: set = set()
        for w, r, e in self.dep_triples:
            if elide is not None and elide(int(w), int(r)):
                continue
            chosen.add(int(e))
            if len(chosen) >= self.cfg.skip_scrub:
                break
        return chosen

    def _emit_iteration(
        self,
        events: List[tuple],
        i: int,
        iter_arr: np.ndarray,
        stale_flags: set,
        budget: Dict[str, int],
        elide_wait: Callable[[int, int], bool],
        cross_lane: Callable[[int, int], bool],
    ) -> None:
        """One iteration of the Figure-5 executor body.

        ``cross_lane`` tells the drop-wait mutant which waits *matter*:
        dropping a wait whose pair is covered by program order anyway
        would make an equivalent mutant (undetectable by any sound
        detector), so only cross-lane waits are droppable."""
        cfg = self.cfg
        indices, _ = self.loop.reads.terms_of(i)
        for idx in indices:
            idx = int(idx)
            writer = int(iter_arr[idx])
            if writer == i:
                continue  # intra-iteration: the accumulator, not memory
            if 0 <= writer < i:
                if idx in stale_flags:
                    pass  # flag left set by a previous session: no wait
                elif elide_wait(writer, i):
                    pass  # planned-ownership elision: program order
                elif (
                    budget["waits"] < cfg.drop_waits
                    and cross_lane(writer, i)
                ):
                    budget["waits"] += 1  # mutated executor skips the wait
                else:
                    events.append(("a", idx))
                events.append(("r", i, idx, SRC_NEW))
            else:
                events.append(("r", i, idx, SRC_OLD))
        w = int(self.loop.write[i])
        post = True
        if budget["posts"] < cfg.drop_posts:
            budget["posts"] += 1
            post = False
        if post and cfg.post_before_write:
            events.append(("p", w))
            events.append(("w", i, w))
        else:
            events.append(("w", i, w))
            if post:
                events.append(("p", w))

    # ------------------------------------------------------------------
    def _run_chunked(self, capture: ShadowCapture) -> None:
        """Multiproc shape: chunks round-robined over workers; waits on
        cross-owner dependences are elided when the *planned* owner of
        the writer's chunk matches the reader's (program order on that
        worker covers them)."""
        cfg = self.cfg
        n = self.loop.n
        n_chunks = -(-n // cfg.chunk)
        iter_arr = self._corrupted_iter()
        budget = {"waits": 0, "posts": 0}

        def chunk_of(i: int) -> int:
            return i // cfg.chunk

        def planned_lane(c: int) -> int:
            return c % cfg.lanes

        def elide(writer: int, reader: int) -> bool:
            cw, cr = chunk_of(writer), chunk_of(reader)
            return planned_lane(cw) == planned_lane(cr) and cw <= cr

        stale = self._stale_flags(elide)

        def cross(writer: int, reader: int) -> bool:
            return planned_lane(chunk_of(writer)) != planned_lane(
                chunk_of(reader)
            )

        for lane in range(cfg.lanes):
            events = capture.lane(lane)
            chunks = [c for c in range(n_chunks) if planned_lane(c) == lane]
            if cfg.reverse_round_robin:
                chunks = chunks[::-1]
            for c in chunks:
                lo, hi = c * cfg.chunk, min((c + 1) * cfg.chunk, n)
                for i in range(lo, hi):
                    self._emit_iteration(
                        events, i, iter_arr, stale, budget, elide, cross
                    )

    def _run_threaded(self, capture: ShadowCapture) -> None:
        """Threaded shape: cyclic iteration assignment, a phase barrier
        between inspector and executor, waits never elided."""
        cfg = self.cfg
        n = self.loop.n
        iter_arr = self._corrupted_iter()
        stale = self._stale_flags()
        budget = {"waits": 0, "posts": 0}

        def never(_w: int, _r: int) -> bool:
            return False

        def cross(writer: int, reader: int) -> bool:
            return writer % cfg.lanes != reader % cfg.lanes

        for lane in range(cfg.lanes):
            events = capture.lane(lane)
            if lane != cfg.skip_barrier_lane:
                events.append(("b", 0))
            for i in range(lane, n, cfg.lanes):
                self._emit_iteration(
                    events, i, iter_arr, stale, budget, never, cross
                )
            if lane != cfg.skip_barrier_lane:
                events.append(("b", 1))

    def _run_levels(self, capture: ShadowCapture) -> None:
        """Vectorized shape: lanes are wavefront levels chained by
        synthetic handoff tokens, with bulk per-level events."""
        cfg = self.cfg
        loop = self.loop
        iter_arr = self._corrupted_iter()
        level_of = np.zeros(loop.n, dtype=np.int64)
        for i in range(loop.n):
            indices, _ = loop.reads.terms_of(i)
            lv = 0
            for idx in indices:
                writer = int(self.writer_of[idx])
                if 0 <= writer < i:
                    lv = max(lv, int(level_of[writer]) + 1)
            level_of[i] = lv
        n_levels = int(level_of.max()) + 1 if loop.n else 1

        merged = cfg.merge_level_at
        lane_of_level = list(range(n_levels))
        if merged is not None and merged + 1 < n_levels:
            lane_of_level[merged + 1] = merged

        members: Dict[int, List[int]] = {}
        for i in range(loop.n):
            members.setdefault(lane_of_level[int(level_of[i])], []).append(i)

        capture.meta["levels"] = n_levels
        for k in range(n_levels):
            events = capture.lane(k)
            if k > 0:
                events.append(("a", -k))
            iters = members.get(k, [])
            r_it: List[int] = []
            r_el: List[int] = []
            r_src: List[int] = []
            w_it: List[int] = []
            w_el: List[int] = []
            for i in iters:
                indices, _ = loop.reads.terms_of(i)
                for idx in indices:
                    idx = int(idx)
                    writer = int(iter_arr[idx])
                    if writer == i:
                        continue
                    r_it.append(i)
                    r_el.append(idx)
                    r_src.append(
                        SRC_NEW if 0 <= writer < i else SRC_OLD
                    )
                w_it.append(i)
                w_el.append(int(loop.write[i]))
            if r_it:
                events.append(
                    (
                        "R",
                        np.asarray(r_it, dtype=np.int64),
                        np.asarray(r_el, dtype=np.int64),
                        np.asarray(r_src, dtype=np.int64),
                    )
                )
            if w_it:
                events.append(
                    (
                        "W",
                        np.asarray(w_it, dtype=np.int64),
                        np.asarray(w_el, dtype=np.int64),
                    )
                )
            if k + 1 < n_levels and cfg.drop_chain_link_at != k:
                events.append(("p", -(k + 1)))

    def _run_speculative(self, capture: ShadowCapture) -> None:
        """Speculative shape: one lane per chunk, a commit chain of
        synthetic ``("c", k)`` tokens ordering the commits.

        The model mirrors the backend's commit rule in two phases:
        phase 1 commits the hazard-free chunks in chunk order (a chunk
        is deferred on a cross-chunk RAW, or when its writes touch
        elements an already-deferred chunk reads or writes); phase 2
        re-executes the deferred chunks, again in chunk order.  Reads
        served by an already-committed write log ``SRC_NEW``; snapshot
        reads log ``SRC_OLD``.  The mutants commit conflicting chunks
        without the rollback (``skip_restore``), drop a conflict edge so
        a reader chunk commits before its writer
        (``drop_conflict_edge``), or reverse the phase-2 order
        (``reverse_reexec``)."""
        cfg = self.cfg
        loop = self.loop
        n = loop.n
        n_chunks = -(-n // cfg.chunk)
        iter_arr = self._corrupted_iter()
        restore_budget = cfg.skip_restore
        edge_budget = cfg.drop_conflict_edge

        def span(c: int) -> range:
            return range(c * cfg.chunk, min((c + 1) * cfg.chunk, n))

        def chunk_reads(c: int) -> List[int]:
            out: List[int] = []
            for i in span(c):
                indices, _ = loop.reads.terms_of(i)
                out.extend(int(idx) for idx in indices)
            return out

        phase1: List[int] = []
        phase2: List[int] = []
        #: Chunks whose commit carries snapshot-stale true-dep values.
        stale_chunks: set = set()
        #: Chunks committed although their writer chunk is deferred.
        optimistic_chunks: set = set()
        deferred_rw: set = set()
        for c in range(n_chunks):
            reads = chunk_reads(c)
            writes = [int(loop.write[i]) for i in span(c)]
            raw_writers = {
                c_w
                for idx in reads
                if 0 <= (w := int(iter_arr[idx])) < c * cfg.chunk
                for c_w in (w // cfg.chunk,)
            }
            war = any(e in deferred_rw for e in writes)
            if raw_writers and restore_budget > 0:
                restore_budget -= 1
                stale_chunks.add(c)
                phase1.append(c)
            elif (
                raw_writers & set(phase2)
                and not war
                and edge_budget > 0
            ):
                edge_budget -= 1
                optimistic_chunks.add(c)
                phase1.append(c)
            elif raw_writers or war:
                phase2.append(c)
                deferred_rw.update(reads)
                deferred_rw.update(writes)
            else:
                phase1.append(c)
        if cfg.reverse_reexec:
            phase2 = phase2[::-1]

        commits = 0
        for c in phase1 + phase2:
            events = capture.lane(c)
            if commits > 0:
                events.append(("a", ("c", commits - 1)))
            for i in span(c):
                indices, _ = loop.reads.terms_of(i)
                for idx in indices:
                    idx = int(idx)
                    writer = int(iter_arr[idx])
                    if writer == i:
                        continue
                    if 0 <= writer < i:
                        cross = writer // cfg.chunk < c
                        if c in stale_chunks and cross:
                            src = SRC_OLD  # snapshot value, never redone
                        else:
                            src = SRC_NEW
                    else:
                        src = SRC_OLD
                    events.append(("r", i, idx, src))
                events.append(("w", i, int(loop.write[i])))
            events.append(("p", ("c", commits)))
            commits += 1


# ----------------------------------------------------------------------
# Mutant registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Mutant:
    """One deliberately injected protocol bug."""

    name: str
    description: str
    mode: str
    expect: Tuple[str, ...]
    apply: Callable[[InterpreterConfig], None]
    #: Restrict to workloads whose name contains one of these substrings
    #: (``None``: all).  Some bugs need a dependence shape every backend
    #: sees but not every toy workload has (e.g. reverse-round-robin
    #: needs a dependence spanning several chunks).
    only: Tuple[str, ...] | None = None


def _set(**kwargs) -> Callable[[InterpreterConfig], None]:
    def mutate(cfg: InterpreterConfig) -> None:
        for k, v in kwargs.items():
            setattr(cfg, k, v)

    return mutate


MUTANTS: Tuple[Mutant, ...] = (
    Mutant(
        "drop-wait-threaded",
        "executor reads ynew without awaiting the ready flag",
        "threaded",
        ("no-hb-edge",),
        _set(drop_waits=3, lanes=4),
    ),
    Mutant(
        "drop-post-threaded",
        "writer never sets its ready flag",
        "threaded",
        ("unsatisfied-acquire", "no-hb-edge"),
        _set(drop_posts=2),
    ),
    Mutant(
        "post-before-write",
        "flag set before the value lands in ynew",
        "threaded",
        ("no-hb-edge",),
        _set(post_before_write=True, lanes=4),
    ),
    Mutant(
        "split-barrier",
        "one thread skips the inspector/executor phase barrier",
        "threaded",
        ("unsatisfied-barrier",),
        _set(skip_barrier_lane=1),
    ),
    Mutant(
        "stale-iter",
        "corrupt iter entries send readers to the stale input value",
        "threaded",
        ("stale-read",),
        _set(stale_iter=2),
    ),
    Mutant(
        "drop-wait-chunked",
        "worker reads ynew without awaiting the ready flag",
        "chunked",
        ("no-hb-edge",),
        _set(drop_waits=3),
    ),
    Mutant(
        "reverse-round-robin",
        "workers drain their chunk lists in reverse while planned-"
        "ownership wait elisions assume ascending order",
        "chunked",
        ("no-hb-edge",),
        _set(reverse_round_robin=True, chunk=2, lanes=2),
        only=("irregular",),
    ),
    Mutant(
        "skip-scrub",
        "shm session scrub skipped: ready flags left set from the "
        "previous run",
        "chunked",
        ("no-hb-edge",),
        _set(skip_scrub=2),
    ),
    Mutant(
        "stale-iter-chunked",
        "corrupt iter entries in the shared session",
        "chunked",
        ("stale-read",),
        _set(stale_iter=2),
    ),
    Mutant(
        "merge-levels",
        "two adjacent wavefront levels fused: their cross deps become "
        "same-level and unordered",
        "levels",
        ("no-hb-edge",),
        _set(merge_level_at=1),
    ),
    Mutant(
        "break-level-chain",
        "a level handoff token is never posted",
        "levels",
        ("unsatisfied-acquire", "no-hb-edge"),
        _set(drop_chain_link_at=1),
    ),
    Mutant(
        "skip-restore",
        "conflicting chunks commit their stale speculation instead of "
        "rolling back to the snapshot",
        "speculative",
        ("stale-read",),
        _set(skip_restore=2),
    ),
    Mutant(
        "drop-conflict-edge",
        "the conflict detector misses a RAW edge: the reader chunk "
        "commits before the deferred chunk that produces its input",
        "speculative",
        ("no-hb-edge",),
        _set(drop_conflict_edge=2),
        only=("chain",),
    ),
    Mutant(
        "reverse-reexecution",
        "rolled-back chunks re-execute newest-first instead of in "
        "chunk order",
        "speculative",
        ("no-hb-edge",),
        _set(reverse_reexec=True),
        only=("chain",),
    ),
)


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------


@dataclass
class MutantResult:
    name: str
    mode: str
    workload: str
    killed: bool
    expected: Tuple[str, ...]
    matched_expected: bool
    counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "mode": self.mode,
            "workload": self.workload,
            "killed": self.killed,
            "expected": list(self.expected),
            "matched_expected": self.matched_expected,
            "counts": dict(self.counts),
        }


@dataclass
class MutationReport:
    results: List[MutantResult] = field(default_factory=list)
    baselines: List[Tuple[str, str, bool]] = field(default_factory=list)

    @property
    def kill_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.killed for r in self.results) / len(self.results)

    @property
    def baseline_clean(self) -> bool:
        return all(ok for _, _, ok in self.baselines)

    def passed(self, min_kill: float = 0.9) -> bool:
        return self.baseline_clean and self.kill_rate >= min_kill

    def summary(self) -> str:
        killed = sum(r.killed for r in self.results)
        lines = [
            f"mutation suite: {killed}/{len(self.results)} mutant(s) "
            f"killed (kill rate {self.kill_rate:.0%}); baselines "
            f"{'clean' if self.baseline_clean else 'NOT CLEAN'}"
        ]
        for r in self.results:
            mark = "KILLED" if r.killed else "SURVIVED"
            note = "" if r.matched_expected else " (unexpected kind)"
            lines.append(
                f"  [{mark}] {r.name} ({r.mode}, {r.workload})"
                f"{note}: {r.counts or '-'}"
            )
        for mode, workload, ok in self.baselines:
            if not ok:
                lines.append(
                    f"  [FALSE POSITIVE] unmutated {mode} on {workload}"
                )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kill_rate": self.kill_rate,
            "baseline_clean": self.baseline_clean,
            "mutants": [r.as_dict() for r in self.results],
            "baselines": [
                {"mode": m, "workload": w, "clean": ok}
                for m, w, ok in self.baselines
            ],
        }


def _default_workloads() -> List[Tuple[str, Any]]:
    from repro.workloads.synthetic import chain_loop, random_irregular_loop

    return [
        ("chain-48-d1", chain_loop(48, 1)),
        ("chain-60-d3", chain_loop(60, 3)),
        ("irregular-100-s5", random_irregular_loop(100, seed=5)),
    ]


def run_mutation_suite(
    workloads: List[Tuple[str, Any]] | None = None,
    mutants: Tuple[Mutant, ...] = MUTANTS,
) -> MutationReport:
    """Interpret every mutant over every workload it applies to.

    A mutant counts as *killed* if the detector reports at least one
    violation on **every** workload (a detector that only fires on easy
    shapes does not get credit); an unmutated interpretation of each
    mode over each workload must stay clean.
    """
    if workloads is None:
        workloads = _default_workloads()
    report = MutationReport()

    for mode in ("chunked", "threaded", "levels", "speculative"):
        for wl_name, loop in workloads:
            capture = ProtocolInterpreter(
                loop, InterpreterConfig(mode=mode)
            ).interpret()
            verdict = detect(capture, loop)
            report.baselines.append((mode, wl_name, verdict.ok))

    for mutant in mutants:
        killed_everywhere = True
        matched = True
        merged_counts: Dict[str, int] = {}
        names = []
        for wl_name, loop in workloads:
            if mutant.only is not None and not any(
                tag in wl_name for tag in mutant.only
            ):
                continue
            cfg = InterpreterConfig(mode=mutant.mode)
            mutant.apply(cfg)
            capture = ProtocolInterpreter(loop, cfg).interpret()
            verdict: SanitizeReport = detect(capture, loop)
            names.append(wl_name)
            if verdict.ok:
                killed_everywhere = False
            else:
                for k, v in verdict.counts.items():
                    merged_counts[k] = merged_counts.get(k, 0) + v
                if not any(k in mutant.expect for k in verdict.counts):
                    matched = False
        report.results.append(
            MutantResult(
                name=mutant.name,
                mode=mutant.mode,
                workload="+".join(names),
                killed=killed_everywhere,
                expected=mutant.expect,
                matched_expected=matched,
                counts=merged_counts,
            )
        )
    return report
