"""``python -m repro sanitize`` — run the execution sanitizer from the shell.

Two modes:

- **Target mode** (default): resolve each target to loops exactly like
  ``python -m repro lint`` does (a ``.py`` file with a loop hook, a
  directory of such files, or a builtin spec like ``chain:n=200,d=3``),
  execute every loop on the chosen backend under ``validate="sanitize"``,
  and report the witnessed-happens-before verdict per loop.
- **Mutation mode** (``--mutants``): run the schedule-mutation harness
  (:mod:`repro.sanitize.mutate`) that proves detector power — every
  mutant protocol corruption must be killed while the conformant
  protocols stay silent — and gate on the kill rate.

Options
-------
``--backend=NAME``    execution backend (simulated/threaded/vectorized/
                      multiproc/speculative; default threaded)
``--processors=P``    thread/worker/processor count (default 4)
``--json``            machine-readable output instead of text
``--strict``          also fail when a loop's run was uninstrumented
                      (coverage notes), not just on violations
``--mutants``         run the mutation harness instead of targets
``--min-kill=F``      kill-rate floor for ``--mutants`` (default 0.9)

Exit status: 0 clean, 1 on any violation (target mode) or a failed
kill-rate / dirty baseline (mutation mode), 2 on usage errors.
"""

from __future__ import annotations

import json
import sys

from repro.errors import SanitizerError

__all__ = ["main"]

_BACKENDS = (
    "simulated", "threaded", "vectorized", "multiproc", "speculative",
)


def _run_targets(
    targets: list[str],
    backend: str,
    processors: int,
    as_json: bool,
    strict: bool,
) -> int:
    from repro.backends import _build_runner
    from repro.lint.cli import collect_loops

    loops = collect_loops(targets)
    records: list[dict] = []
    total_violations = 0
    total_notes = 0
    for source, name, loop in loops:
        runner = _build_runner(
            backend, processors=processors, validate="sanitize"
        )
        try:
            result = runner.run(loop)
            report_dict = result.extras["sanitize"]
        except SanitizerError as exc:
            report_dict = exc.report.as_dict()
        total_violations += sum(report_dict["counts"].values())
        total_notes += len(report_dict["notes"])
        records.append(
            {"source": source, "loop": name, "sanitize": report_dict}
        )
        if not as_json:
            print(f"== {name} ({source}) ==")
            print(report_dict["summary"])
            for note in report_dict["notes"]:
                print(f"note: {note}")
            print()

    if as_json:
        print(
            json.dumps(
                {
                    "backend": backend,
                    "targets": records,
                    "total_violations": total_violations,
                    "notes": total_notes,
                },
                indent=2,
            )
        )
    else:
        print(
            f"sanitized {len(loops)} loop(s) on the {backend} backend: "
            f"{total_violations} violation(s), {total_notes} coverage "
            f"note(s)"
        )
    if total_violations:
        return 1
    if strict and total_notes:
        return 1
    return 0


def _run_mutants(as_json: bool, min_kill: float) -> int:
    from repro.sanitize.mutate import run_mutation_suite

    report = run_mutation_suite()
    if as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.passed(min_kill=min_kill) else 1


def main(argv: list[str]) -> int:
    as_json = False
    strict = False
    mutants = False
    backend = "threaded"
    processors = 4
    min_kill = 0.9
    targets: list[str] = []
    try:
        for arg in argv:
            if arg == "--json":
                as_json = True
            elif arg == "--strict":
                strict = True
            elif arg == "--mutants":
                mutants = True
            elif arg.startswith("--backend="):
                backend = arg.split("=", 1)[1]
                if backend not in _BACKENDS:
                    raise ValueError(
                        f"unknown backend {backend!r}; expected one of "
                        f"{', '.join(_BACKENDS)}"
                    )
            elif arg.startswith("--processors="):
                processors = int(arg.split("=", 1)[1])
            elif arg.startswith("--min-kill="):
                min_kill = float(arg.split("=", 1)[1])
            elif arg.startswith("-"):
                raise ValueError(f"unknown sanitize option {arg!r}")
            else:
                targets.append(arg)
        if mutants and targets:
            raise ValueError(
                "--mutants runs the builtin mutation workloads and takes "
                "no targets"
            )
        if not mutants and not targets:
            raise ValueError(
                "no targets; give a .py file, a directory, or a builtin "
                "spec (figure4/chain/random), or pass --mutants"
            )
        if mutants:
            return _run_mutants(as_json, min_kill)
        return _run_targets(targets, backend, processors, as_json, strict)
    except ValueError as exc:
        print(f"sanitize: {exc}", file=sys.stderr)
        return 2
