"""Speculative doacross backend: optimism instead of inspection.

The paper's inspector is pessimistic — it pays the Figure-3
preprocessing cost up front to *prove* every cross-iteration dependence
before executing anything.  This backend is the optimistic dual
(PAPERS.md: "Speculative DOACROSS Loop Parallelization with taskloop",
arXiv 2302.05506): execute contiguous chunks of iterations in parallel
against a frozen snapshot of ``y`` with **no inspector run at all**,
record each chunk's actual read/write element sets, then detect
conflicts after the fact and re-execute the losers from the snapshot.

The round structure:

1. **Speculate.**  Every pending chunk executes on the thread pool
   against the committed array state (frozen for the round).  Writes
   land in a chunk-private buffer; the elements each chunk read from the
   snapshot (rather than from its own buffer) form its read log.
2. **Commit.**  Chunks are considered *sequentially in chunk order*.  A
   chunk conflicts — and is rolled back to pending — if it read an
   element an earlier pending chunk wrote this round (RAW: its inputs
   were stale), or if it writes an element an already-deferred chunk
   read or wrote (WAR/WAW: committing it would corrupt the deferred
   chunk's later re-execution).  A conflict-free chunk's buffer is
   applied to the committed state; its values are final.
3. **Fixpoint.**  Deferred chunks re-execute next round against the
   updated state.  The earliest pending chunk can never conflict, so
   every round commits at least one chunk and the fixpoint needs at most
   ``n_chunks`` rounds; a bounded retry budget (``max_rounds``) caps the
   wasted re-execution on dense dependence chains and falls back to
   plain sequential execution of whatever is still pending — the
   liveness guarantee the wait-free protocol otherwise lacks.

Correctness does not depend on thread timing: the snapshot is frozen
during the parallel phase, buffers are private, and conflict decisions
are computed from deterministic element sets in deterministic chunk
order — so ``speculation_rounds`` and the final values are reproducible
run to run, and a committed chunk provably read exactly the values the
sequential oracle would have (per-iteration term order is the oracle's,
so equality is bitwise, not approximate).

Sanitize composition: only *committed* executions are shadow-logged
(a rolled-back attempt is discarded work, not part of the witnessed
execution), one lane per chunk, with commits chained by synthetic
``("c", k)`` post/acquire tokens — the k-th commit acquires the token
the (k-1)-th posted, so every cross-chunk true dependence is covered by
a transitive happens-before edge the detector can replay.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.backends.base import (
    Runner,
    note_ignored_options,
    validate_execution_order,
)
from repro.core.results import RunResult
from repro.core.sequential import sequential_time
from repro.ir.analysis import writer_map
from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.machine.costs import CostModel
from repro.obs.spans import CAT_PHASE

__all__ = ["SpeculativeRunner"]

#: Default retry budget: enough rounds for moderate conflict densities
#: to reach the fixpoint, small enough that a dense chain (which commits
#: exactly one chunk per round) falls back before re-executing the whole
#: tail quadratically.
DEFAULT_MAX_ROUNDS = 8


class SpeculativeRunner(Runner):
    """Optimistic chunk-parallel execution with post-hoc conflict
    detection, rollback, and a sequential-fallback retry budget.

    ``analyze="symbolic"`` attaches the symbolic verdict to the result
    for diagnosis; unlike the inspector backends there is no inspector
    phase to elide, so the verdict never changes execution.
    """

    name = "speculative"

    def __init__(
        self,
        workers: int = 4,
        chunk: int | None = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        analyze: str | None = None,
    ):
        from repro.backends.vectorized import ANALYZE_MODES

        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if max_rounds < 1:
            raise ValueError(
                f"retry budget must allow at least one round, got {max_rounds}"
            )
        if analyze not in ANALYZE_MODES:
            raise ValueError(
                f"unknown analyze mode {analyze!r}; expected one of "
                f"{ANALYZE_MODES}"
            )
        self.workers = workers
        self.chunk = chunk
        #: Speculation rounds before giving up on convergence and
        #: executing the remaining chunks sequentially (bounded-livelock
        #: contract, same spirit as the multiproc WaitLadder).
        self.max_rounds = max_rounds
        self.analyze = analyze

    # ------------------------------------------------------------------
    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Execute ``loop`` speculatively; returns a :class:`RunResult`
        bitwise-equal to the sequential oracle.

        ``chunk`` overrides the constructor's chunk size for this run.
        ``order`` is validated when given but not used: commits happen in
        natural chunk order, and any *valid* execution order produces the
        same values, so reordering buys nothing here.  ``schedule`` and
        ``trace`` are ignored and recorded in
        ``result.extras["ignored_options"]``.
        """
        verdict = None
        if self.analyze is not None:
            from repro.analysis import analyze_loop

            verdict = analyze_loop(loop)
            if self.analyze == "symbolic+check":
                from repro.analysis import cross_check

                cross_check(loop, verdict, strict=True)
        if order is not None:
            order = np.asarray(order, dtype=np.int64)
            validate_execution_order(loop, order)
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        cs = chunk if chunk is not None else self.chunk
        if cs is None:
            cs = max(1, -(-loop.n // (4 * self.workers)))

        t0 = time.perf_counter()
        y, stats = self._execute(loop, cs)
        wall = time.perf_counter() - t0

        cm = CostModel()
        result = RunResult(
            loop_name=loop.name,
            strategy="speculative-doacross",
            processors=self.workers,
            y=y,
            total_cycles=0,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            schedule=f"speculative({stats['chunks']} chunks of {cs})",
            wall_seconds=wall,
        )
        result.extras["speculation"] = stats
        if self.analyze is not None:
            result.extras["analyze"] = self.analyze
            if verdict is not None:
                result.extras["verdict"] = verdict.kind
                if verdict.distance is not None:
                    result.extras["verdict_distance"] = int(verdict.distance)
        ignored = {}
        if order is not None:
            ignored["order"] = (
                "<array>",
                "speculative commits happen in natural chunk order; any "
                "valid execution order yields the identical result",
            )
        if schedule is not None:
            ignored["schedule"] = (
                schedule,
                "the speculative backend always executes contiguous "
                "chunks; only the chunk size is tunable",
            )
        if trace:
            ignored["trace"] = (
                True,
                "no simulated timeline exists on real threads; use "
                "observe=True for wall-clock spans",
            )
        note_ignored_options(result, self.name, **ignored)
        met = self._obs_metrics
        if met is not None:
            met.count("speculation_rounds", stats["rounds"])
            met.count("chunks_conflicted", stats["chunks_conflicted"])
            met.count("chunks_rolled_back", stats["chunks_rolled_back"])
            met.count("iterations", loop.n)
            if stats["sequential_fallback"]:
                met.count("fallback_chunks", stats["fallback_chunks"])
        return result

    # ------------------------------------------------------------------
    def _conflicts(
        self,
        read_elems: np.ndarray,
        write_elems: np.ndarray,
        pending_writes: np.ndarray,
        deferred_rw: np.ndarray,
    ) -> bool:
        """Whether a chunk must defer its commit this round.

        RAW — it read an element an earlier pending chunk wrote, so its
        speculative inputs were stale; WAR/WAW — it writes an element an
        already-deferred chunk read or wrote, so committing it now would
        corrupt that chunk's later re-execution.  Overridable seam for
        fault injection (an always-``True`` detector must drain the
        retry budget and fall back, never livelock — tested).
        """
        return bool(
            pending_writes[read_elems].any() or deferred_rw[write_elems].any()
        )

    # ------------------------------------------------------------------
    def _execute(
        self, loop: IrregularLoop, cs: int
    ) -> tuple[np.ndarray, dict]:
        n = loop.n
        write = loop.write
        ptr, r_idx, r_coeff = (
            loop.reads.ptr,
            loop.reads.index,
            loop.reads.coeff,
        )
        external = loop.init_kind == INIT_EXTERNAL
        init_values = loop.init_values

        y = loop.y0.copy()
        n_chunks = -(-n // cs) if n else 0
        # writer_of[e] = the iteration writing element e, or -1: the
        # ir-level access map the read logs are classified against.
        writer_of = writer_map(loop)
        #: Elements written by a committed chunk so far — drives the
        #: sanitizer's old/new source flags; frozen during each parallel
        #: phase, grown only at commits.
        written = np.zeros(loop.y_size, dtype=bool)
        rec = self._obs_recorder
        san = self._san_capture
        logging = san is not None
        spans: list[tuple] = []
        now = time.perf_counter

        def bounds(c: int) -> tuple[int, int]:
            return c * cs, min(n, (c + 1) * cs)

        def read_log(c: int) -> np.ndarray:
            """Elements chunk ``c`` reads from the snapshot — its
            conflict-detection read log.

            Which reads hit the snapshot (vs. the chunk's own buffer or
            the live accumulator) depends only on subscripts, never on
            values, so the log is computed once from the CSR read table
            and the writer map and reused across re-execution rounds: a
            term ``y[idx]`` of iteration ``i`` is served locally exactly
            when ``idx``'s writer is ``i`` itself (the accumulator) or an
            earlier iteration of the same chunk (the buffer).
            """
            lo, hi = bounds(c)
            elems = r_idx[ptr[lo]:ptr[hi]]
            iters = np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(ptr[lo:hi + 1]),
            )
            wm = writer_of[elems]
            return np.unique(elems[(wm < lo) | (wm > iters)])

        def run_chunk(c: int) -> tuple[dict, list | None]:
            """Execute chunk ``c`` against the frozen snapshot.

            Returns the private write buffer and — when the sanitizer is
            attached — the shadow events to replay if this attempt
            commits.  Per-iteration term order is the oracle's, so a
            committed buffer is bitwise what sequential execution would
            have produced from the same inputs.
            """
            lo, hi = bounds(c)
            buf: dict = {}
            events: list | None = [] if logging else None
            for i in range(lo, hi):
                w = write[i]
                # The write subscript is injective (no output deps), so
                # no other iteration ever writes w: the initial read can
                # never conflict and is not logged (threaded-backend
                # convention for the accumulator seed).
                acc = init_values[i] if external else y[w]
                for k in range(ptr[i], ptr[i + 1]):
                    idx = r_idx[k]
                    if idx == w:
                        value = acc
                    elif idx in buf:
                        value = buf[idx]
                        if events is not None:
                            events.append(("r", i, int(idx), 1))
                    else:
                        value = y[idx]
                        if events is not None:
                            events.append(
                                ("r", i, int(idx), 1 if written[idx] else 0)
                            )
                    acc += r_coeff[k] * value
                buf[w] = acc
                if events is not None:
                    events.append(("w", i, int(w)))
            return buf, events

        commits = 0

        def commit_events(c: int, events: list) -> None:
            """Replay a committed chunk's shadow log onto its lane,
            chained to every earlier commit by the synthetic token."""
            nonlocal commits
            lane = san.lane(int(c))
            if commits:
                lane.append(("a", ("c", commits - 1)))
            lane.extend(events)
            lane.append(("p", ("c", commits)))
            commits += 1

        rounds = 0
        rolled_back = 0
        conflicted: set = set()
        pending = list(range(n_chunks))
        read_logs = {c: read_log(c) for c in pending}
        fallback = False
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            while pending:
                if rounds >= self.max_rounds:
                    fallback = True
                    break
                rounds += 1
                if rec is not None:
                    t_spec = now()
                futures = [pool.submit(run_chunk, c) for c in pending]
                results = [f.result() for f in futures]
                if rec is not None:
                    t_commit = now()
                    spans.append((
                        "speculate", CAT_PHASE, t_spec, t_commit, 0,
                        {"round": rounds, "chunks": len(pending)},
                    ))
                pending_w = np.zeros(loop.y_size, dtype=bool)
                deferred_rw = np.zeros(loop.y_size, dtype=bool)
                next_pending: list[int] = []
                for c, (buf, events) in zip(pending, results):
                    lo, hi = bounds(c)
                    w_slice = write[lo:hi]
                    reads = read_logs[c]
                    if self._conflicts(reads, w_slice, pending_w, deferred_rw):
                        pending_w[w_slice] = True
                        deferred_rw[reads] = True
                        deferred_rw[w_slice] = True
                        next_pending.append(c)
                        rolled_back += 1
                        conflicted.add(c)
                        continue
                    pending_w[w_slice] = True
                    elems = np.fromiter(
                        buf.keys(), dtype=np.int64, count=len(buf)
                    )
                    y[elems] = np.fromiter(
                        buf.values(), dtype=np.float64, count=len(buf)
                    )
                    written[elems] = True
                    if logging:
                        commit_events(c, events)
                if rec is not None:
                    spans.append((
                        "commit", CAT_PHASE, t_commit, now(), 0,
                        {
                            "round": rounds,
                            "committed": len(pending) - len(next_pending),
                            "deferred": len(next_pending),
                        },
                    ))
                pending = next_pending

        fallback_chunks = len(pending)
        if pending:
            # Retry budget exhausted: execute the stragglers sequentially
            # in chunk order straight against the committed state — exact
            # by construction, and bounded time by construction.
            if rec is not None:
                t_fb = now()
            for c in pending:
                lo, hi = bounds(c)
                events = [] if logging else None
                for i in range(lo, hi):
                    w = write[i]
                    acc = init_values[i] if external else y[w]
                    for k in range(ptr[i], ptr[i + 1]):
                        idx = r_idx[k]
                        if idx == w:
                            value = acc
                        else:
                            value = y[idx]
                            if events is not None:
                                events.append((
                                    "r", i, int(idx),
                                    1 if written[idx] else 0,
                                ))
                        acc += r_coeff[k] * value
                    y[w] = acc
                    written[w] = True
                    if events is not None:
                        events.append(("w", i, int(w)))
                if logging:
                    commit_events(c, events)
            if rec is not None:
                spans.append((
                    "fallback", CAT_PHASE, t_fb, now(), 0,
                    {"chunks": fallback_chunks},
                ))
        if rec is not None and spans:
            rec.record_batch(spans)

        stats = {
            "rounds": rounds,
            "chunks": n_chunks,
            "chunk": cs,
            "chunks_conflicted": len(conflicted),
            "chunks_rolled_back": rolled_back,
            "sequential_fallback": fallback,
            "fallback_chunks": fallback_chunks,
        }
        return y, stats
