"""Vectorized wavefront backend: real wall-clock parallel throughput.

The simulated backend models a multiprocessor; the threaded backend proves
the protocol correct under the GIL.  This backend is the one that actually
runs fast on CPython: it executes the dependence DAG *level by level*
(wavefronts, the §3.2 doconsider decomposition), and runs each wavefront as
batched NumPy array operations over all of its iterations at once — SIMD
lanes and memory bandwidth play the role of the paper's processors, with
no per-iteration Python interpretation and no GIL involvement.

Exactness, not approximation: the executor performs the *same* arithmetic
as the sequential oracle, in the same per-term order, as elementwise
float64 operations — iterations of one wavefront are mutually independent,
so batching them changes nothing — and is therefore **bitwise equal** to
:meth:`~repro.ir.loop.IrregularLoop.run_sequential` (a tested property,
not a tolerance).

Mechanics (per wavefront level, all arrays precomputed by the inspector):

- reads resolve through a doubled value environment ``[y_old | y_new]``:
  antidependent and never-written reads gather from the old half, true
  dependence reads from the renamed half (the paper's ``ynew``), so the
  ``iter``-array comparison of Figure 5 is baked into one gather index;
- iterations are ordered within the level by term count (descending), so
  term slot ``j`` is live for a *prefix* of the level — each slot is one
  gather + one fused multiply-add over contiguous slices;
- intra-iteration reads (``check == 0``) select the live accumulator via
  ``np.where`` in the same slot step.

All structure-dependent preprocessing — the inspector's ``iter`` array,
the wavefront schedule, the execution-ordered term layout — lives in an
:class:`~repro.backends.cache.InspectorRecord` and is served by a
content-addressed :class:`~repro.backends.cache.InspectorCache`, so
repeated instances of one loop structure skip preprocessing entirely: the
paper's Figure-3 amortization with a hit counter attached.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import (
    Runner,
    note_ignored_options,
    validate_execution_order,
)
from repro.backends.cache import InspectorCache, InspectorRecord
from repro.core.results import RunResult
from repro.core.sequential import sequential_time
from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.errors import InvalidLoopError
from repro.machine.costs import CostModel
from repro.obs.spans import CAT_LEVEL, CAT_PHASE

__all__ = ["VectorizedRunner", "ANALYZE_MODES"]

#: Accepted values for the ``analyze`` option (here and on
#: :func:`~repro.backends.make_runner` / ``parallelize``).
ANALYZE_MODES = (None, "symbolic", "symbolic+check")


class VectorizedRunner(Runner):
    """Batched wavefront execution with cached inspector results.

    Parameters
    ----------
    cache:
        The :class:`InspectorCache` serving preprocessing results; pass a
        shared instance to amortize across runners (or rely on the
        per-runner default).
    cost_model:
        Used only to report the simulated ``T_seq`` alongside measured
        wall time, so vectorized rows are comparable in mixed tables.
    analyze:
        ``"symbolic"`` runs the symbolic dependence engine
        (:func:`repro.analysis.analyze_loop`) first and, when the verdict
        is elidable (write proven injective, every read slot classified),
        builds the inspector record in closed form
        (:func:`repro.analysis.build_symbolic_record`) — zero inspector
        iterations, and the cache is keyed by the structure-only
        :func:`repro.analysis.symbolic_fingerprint` so loops with
        identical proofs share one entry.  ``"symbolic+check"`` is the
        debug mode: every elided record is cross-checked against the real
        inspector (verdict vs. observed dependences, record vs. record,
        bitwise), raising :class:`~repro.errors.ProofError` on any
        divergence.  ``None`` (default) always runs the runtime inspector.
    """

    name = "vectorized"

    def __init__(
        self,
        cache: InspectorCache | None = None,
        cost_model: CostModel | None = None,
        analyze: str | None = None,
    ):
        if analyze not in ANALYZE_MODES:
            raise ValueError(
                f"unknown analyze mode {analyze!r}; expected one of "
                f"{ANALYZE_MODES}"
            )
        self.cache = cache if cache is not None else InspectorCache()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.analyze = analyze

    # ------------------------------------------------------------------
    def _preprocess(self, loop: IrregularLoop):
        """Serve the inspector record for ``loop``.

        Returns ``(record, hit, elided, verdict)``.  With ``analyze`` set
        and an elidable verdict, the record is built symbolically (no
        read term is classified against memory) and cached under the
        structure-only fingerprint; otherwise the runtime inspector path
        of :class:`InspectorCache` is used unchanged.

        When the DistancePass attached a group size (``_group_sync``),
        the record's wavefronts are the distance groups ``i // group``
        instead of the exact DAG levels — usually far fewer, far wider
        levels (:func:`repro.analysis.build_distance_record`).  This
        works even for verdicts that are *not* fully classified: a
        ``min-distance-k`` bound is enough.
        """
        group = self._group_sync
        if group is not None and group >= 2:
            from repro.analysis import (
                analyze_loop,
                build_distance_record,
                cross_check,
                distance_fingerprint,
            )

            verdict = analyze_loop(loop)
            record, hit = self.cache.get_or_build(
                loop,
                builder=lambda lp: build_distance_record(
                    lp, group, verdict
                ),
                fingerprint=distance_fingerprint(loop, group),
            )
            if self.analyze == "symbolic+check":
                cross_check(loop, verdict, strict=True)
            return record, hit, False, verdict
        if self.analyze is not None:
            from repro.analysis import (
                analyze_loop,
                build_symbolic_record,
                symbolic_fingerprint,
            )

            verdict = analyze_loop(loop)
            if verdict.elidable:
                record, hit = self.cache.get_or_build(
                    loop,
                    builder=lambda lp: build_symbolic_record(lp, verdict),
                    fingerprint=symbolic_fingerprint(loop),
                )
                if self.analyze == "symbolic+check":
                    self._debug_check(loop, verdict, record)
                return record, hit, True, verdict
            record, hit = self.cache.get_or_build(loop)
            return record, hit, False, verdict
        record, hit = self.cache.get_or_build(loop)
        return record, hit, False, None

    def _debug_check(self, loop: IrregularLoop, verdict, record) -> None:
        """``analyze="symbolic+check"``: validate the verdict against the
        runtime inspector and the elided record against the real one."""
        from repro.analysis import cross_check, record_mismatches
        from repro.backends.cache import build_inspector_record
        from repro.errors import ProofError

        cross_check(loop, verdict, strict=True)
        problems = record_mismatches(record, build_inspector_record(loop))
        if problems:
            raise ProofError(
                f"{loop.name}: symbolic record diverges from the runtime "
                f"inspector: " + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Execute ``loop`` as batched wavefronts; see the module doc.

        ``order`` is validated for legality (identically to the other
        backends) but does not change the result: the backend always
        executes in wavefront order, and any legal order produces the same
        values.  ``schedule``/``chunk``/``trace`` have no meaning without
        per-processor scheduling and are ignored (each ignored option is
        recorded in ``result.extras["ignored_options"]``).
        """
        if order is not None:
            validate_execution_order(loop, np.asarray(order, dtype=np.int64))
        rec = self._obs_recorder

        t0 = time.perf_counter()
        record, hit, elided, verdict = self._preprocess(loop)
        t1 = time.perf_counter()
        if rec is not None:
            # The cache lookup/build window IS this backend's inspector
            # phase: Figure 3's preprocessing, amortized across hits (and
            # skipped entirely on the symbolic elision path).
            rec.record(
                "inspector", CAT_PHASE, t0, t1, lane=0,
                cache_hit=bool(hit), elided=elided,
            )
        y = self._execute(loop, record)
        t2 = time.perf_counter()

        result = self._result(
            loop,
            record,
            y,
            hit=hit,
            preprocess_seconds=t1 - t0,
            execute_seconds=t2 - t1,
            elided=elided,
            verdict=verdict,
        )
        wavefront_reason = (
            "the vectorized backend has no per-processor schedules; its "
            "execution order is the wavefront decomposition itself"
        )
        ignored = {}
        if schedule is not None:
            ignored["schedule"] = (schedule, wavefront_reason)
        if chunk is not None:
            ignored["chunk"] = (chunk, wavefront_reason)
        if trace:
            ignored["trace"] = (
                True,
                "no simulated timeline exists for batched execution; use "
                "observe=True for wall-clock level spans",
            )
        note_ignored_options(result, self.name, **ignored)
        return result

    # ------------------------------------------------------------------
    def run_repeated(
        self,
        loop: IrregularLoop,
        instances: int,
        rhs_sequence=None,
    ) -> RunResult:
        """Run ``instances`` back-to-back executions with one preprocessing.

        The vectorized form of :class:`~repro.core.amortized.
        AmortizedDoacross`: instance ``k`` consumes instance ``k-1``'s
        output (or, for external-init loops, a per-instance ``rhs``), and
        the inspector/wavefront work is fetched from the cache once.
        """
        if instances < 1:
            raise InvalidLoopError(
                f"need at least one instance, got {instances}"
            )
        if rhs_sequence is not None:
            if loop.init_kind != INIT_EXTERNAL:
                raise InvalidLoopError(
                    "rhs_sequence requires an external-init loop"
                )
            rhs_sequence = [
                np.ascontiguousarray(rhs, dtype=np.float64)
                for rhs in rhs_sequence
            ]
            if len(rhs_sequence) != instances:
                raise InvalidLoopError(
                    f"rhs_sequence has {len(rhs_sequence)} entries for "
                    f"{instances} instances"
                )
            for rhs in rhs_sequence:
                if len(rhs) != loop.n:
                    raise InvalidLoopError(
                        f"rhs has {len(rhs)} entries for {loop.n} iterations"
                    )

        t0 = time.perf_counter()
        record, hit, elided, verdict = self._preprocess(loop)
        t1 = time.perf_counter()
        y = loop.y0
        for k in range(instances):
            init = rhs_sequence[k] if rhs_sequence is not None else None
            y = self._execute(loop, record, y=y, init_values=init)
        t2 = time.perf_counter()

        result = self._result(
            loop,
            record,
            y,
            hit=hit,
            preprocess_seconds=t1 - t0,
            execute_seconds=t2 - t1,
            elided=elided,
            verdict=verdict,
        )
        result.strategy = "vectorized-wavefront-amortized"
        result.sequential_cycles = instances * result.sequential_cycles
        result.extras["instances"] = instances
        result.extras["inspector_runs"] = 0 if (hit or elided) else 1
        return result

    # ------------------------------------------------------------------
    def _execute(
        self,
        loop: IrregularLoop,
        record: InspectorRecord,
        y: np.ndarray | None = None,
        init_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """One batched execution against current values ``y`` (defaults to
        ``loop.y0``).  Returns the final ``y`` (a fresh array)."""
        n, y_size = loop.n, loop.y_size
        exec_order = record.exec_order
        exec_ptr = record.exec_ptr
        exec_write = record.exec_write
        env_index = record.env_index
        intra = record.intra
        level_ptr = record.schedule.level_ptr
        slot_active, slot_ptr = record.slot_active, record.slot_ptr

        if y is None:
            y = loop.y0
        # Per-run values: coefficients permuted into execution order, and
        # the per-iteration initial accumulators.
        coeff = loop.reads.coeff[record.term_source]
        external = loop.init_kind == INIT_EXTERNAL
        if external:
            init = (
                init_values if init_values is not None else loop.init_values
            )[exec_order]

        # Doubled environment: [y_old | y_new].  The old half is never
        # mutated (writes are renamed), the new half is filled level by
        # level and only read by strictly later levels.
        env = np.empty(2 * y_size, dtype=np.float64)
        env[:y_size] = y

        rec = self._obs_recorder
        met = self._obs_metrics
        san = self._san_capture
        n_levels = record.schedule.n_levels
        if san is not None:
            # Shadow lanes are wavefront levels; the synthetic token
            # -(k+1) posted by level k and acquired by level k+1 is the
            # log's rendering of "levels execute strictly in order".
            san.meta["levels"] = n_levels
        # Per-level spans buffer locally and flush once — a locked
        # record() per wavefront costs ~3µs, which on a many-level loop
        # is a measurable fraction of the whole run (tested budget:
        # observe=True adds <10% wall time).
        buf: list[tuple] = []
        widths: list[int] = []
        if rec is not None:
            now = rec.now
            t_exec = now()

        for k in range(n_levels):
            if rec is not None:
                t_level = now()
            p0, p1 = int(level_ptr[k]), int(level_ptr[k + 1])
            if san is not None:
                lane = san.lane(k)
                if k > 0:
                    lane.append(("a", -k))
                tt0, tt1 = int(exec_ptr[p0]), int(exec_ptr[p1])
                keep = ~intra[tt0:tt1]
                ei = env_index[tt0:tt1][keep]
                iters = np.repeat(
                    exec_order[p0:p1], np.diff(exec_ptr[p0 : p1 + 1])
                )[keep]
                srcs = (ei >= y_size).astype(np.int64)
                if len(ei):
                    lane.append(
                        ("R", iters, np.where(srcs == 1, ei - y_size, ei),
                         srcs)
                    )
                lane.append(
                    ("W", exec_order[p0:p1].copy(), exec_write[p0:p1].copy())
                )
                if k + 1 < n_levels:
                    lane.append(("p", -(k + 1)))
            if external:
                acc = init[p0:p1].copy()
            else:
                acc = env[exec_write[p0:p1]]
            base = exec_ptr[p0 : p1 + 1]
            for j in range(int(slot_ptr[k + 1] - slot_ptr[k])):
                m = int(slot_active[slot_ptr[k] + j])
                kk = base[:m] + j
                vals = env[env_index[kk]]
                a = acc[:m]
                # Same op order as the oracle: acc += coeff * value, with
                # value = live accumulator for intra-iteration reads.
                acc[:m] = a + coeff[kk] * np.where(intra[kk], a, vals)
            env[y_size + exec_write[p0:p1]] = acc
            if rec is not None:
                buf.append((
                    f"level[{k}]", CAT_LEVEL, t_level, now(), 0,
                    {"level": k, "width": p1 - p0},
                ))
            if met is not None:
                widths.append(p1 - p0)

        if met is not None and widths:
            met.observe_many("level_width", widths)
        if rec is not None:
            t_post = now()
            buf.append((
                "executor", CAT_PHASE, t_exec, t_post, 0,
                {"levels": record.schedule.n_levels},
            ))
            rec.record_batch(buf)
        out = np.array(y, dtype=np.float64, copy=True)
        if n:
            out[exec_write] = env[y_size + exec_write]
        if rec is not None:
            # The copy-back of renamed values into y is this backend's
            # (tiny) postprocessor phase.
            rec.record("postprocessor", CAT_PHASE, t_post, rec.now(), lane=0)
        return out

    # ------------------------------------------------------------------
    def _result(
        self,
        loop: IrregularLoop,
        record: InspectorRecord,
        y: np.ndarray,
        hit: bool,
        preprocess_seconds: float,
        execute_seconds: float,
        elided: bool = False,
        verdict=None,
    ) -> RunResult:
        schedule = record.schedule
        result = RunResult(
            loop_name=loop.name,
            strategy="vectorized-wavefront",
            processors=1,
            y=y,
            total_cycles=0,
            sequential_cycles=sequential_time(loop, self.cost_model),
            cost_model=self.cost_model,
            schedule=f"wavefront({schedule.n_levels} levels)",
            order_label=f"wavefront(levels={schedule.n_levels})",
            wall_seconds=preprocess_seconds + execute_seconds,
        )
        cache_stats = self.cache.stats()
        result.extras.update(
            {
                "levels": schedule.n_levels,
                "max_width": schedule.max_width(),
                "average_width": schedule.average_width(),
                "cache_hit": hit,
                "cache_hits_total": cache_stats["hits"],
                "cache_misses_total": cache_stats["misses"],
                "preprocess_seconds": preprocess_seconds,
                "execute_seconds": execute_seconds,
                "plan": record.plan.describe(),
            }
        )
        if self._group_sync is not None:
            result.extras["distance_group"] = int(self._group_sync)
        if self.analyze is not None:
            result.extras["analyze"] = self.analyze
            result.extras["inspector_elided"] = elided
            if verdict is not None:
                result.extras["verdict"] = verdict.kind
                if verdict.distance is not None:
                    result.extras["verdict_distance"] = int(verdict.distance)
        met = self._obs_metrics
        if met is not None:
            met.count("inspector_cache_hits", 1 if hit else 0)
            met.count("inspector_cache_misses", 0 if hit else 1)
            # Inspection work actually performed this run: zero on a cache
            # hit or when the symbolic proof elided the inspector, the
            # full loop otherwise (the acceptance metric for elision).
            ran_inspector = not (hit or elided)
            met.count(
                "inspector_iterations", loop.n if ran_inspector else 0
            )
            met.count(
                "inspector_terms_classified",
                loop.reads.total_terms if ran_inspector else 0,
            )
            met.count("inspector_elisions", 1 if elided else 0)
            met.gauge("inspector_cache_hits_total", cache_stats["hits"])
            met.gauge("inspector_cache_misses_total", cache_stats["misses"])
            met.gauge("inspector_cache_entries", cache_stats["entries"])
            met.gauge("inspector_cache_bytes", cache_stats["bytes"])
            met.gauge("levels", schedule.n_levels)
            met.gauge("max_width", schedule.max_width())
            met.count("iterations", loop.n)
        return result
