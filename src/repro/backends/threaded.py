"""Real-thread backend: the doacross protocol on actual concurrency.

The paper's protocol is a *correctness* claim as much as a performance one:
with the inspector's ``iter`` array and per-element ``ready`` flags, any
interleaving of iterations across processors produces the sequential result.
This backend checks that claim on real ``threading`` threads — per-element
``threading.Event`` objects play the ``ready`` flags, a ``threading.Barrier``
separates the three phases, and iterations are distributed cyclically so
each thread executes its positions in increasing order (the deadlock-freedom
precondition, DESIGN.md §6).

No timing is reported: under CPython's GIL these threads interleave rather
than run in parallel, which is exactly why the *performance* experiments use
the simulated backend instead (DESIGN.md §3).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.backends.base import Runner, validate_execution_order
from repro.core.results import RunResult
from repro.core.sequential import sequential_time
from repro.core.workspace import MAXINT
from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.machine.costs import CostModel

__all__ = ["ThreadedRunner"]


class ThreadedRunner(Runner):
    """Runs the preprocessed doacross on real Python threads."""

    name = "threaded"

    def __init__(self, threads: int = 4):
        if threads < 1:
            raise ValueError(f"need at least one thread, got {threads}")
        self.threads = threads

    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Execute ``loop`` on real threads and return a
        :class:`RunResult` (measured wall clock; no cycle model — the GIL
        forbids timing claims, DESIGN.md §3).

        Iterations are always distributed cyclically (the deadlock-freedom
        precondition), so ``schedule``/``chunk`` are ignored; ``trace`` has
        no simulated timeline to record and is ignored too.
        """
        t0 = time.perf_counter()
        y = self._execute(loop, order=order)
        wall = time.perf_counter() - t0
        cm = CostModel()
        return RunResult(
            loop_name=loop.name,
            strategy="threaded-doacross",
            processors=self.threads,
            y=y,
            total_cycles=0,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            schedule=f"cyclic({self.threads} threads)",
            wall_seconds=wall,
        )

    def run_preprocessed(
        self, loop: IrregularLoop, order: np.ndarray | None = None
    ) -> RunResult:
        """Execute ``loop`` with ``self.threads`` threads.

        Returns a :class:`RunResult` like every other runner (the final
        values are in ``.y``, semantically equal to the sequential oracle —
        tested).  Prior releases returned the bare ``y`` array.
        """
        return self.run(loop, order=order)

    def _execute(
        self, loop: IrregularLoop, order: np.ndarray | None = None
    ) -> np.ndarray:
        """The three-phase protocol on real threads; returns final ``y``."""
        if order is not None:
            order = np.asarray(order, dtype=np.int64)
            validate_execution_order(loop, order)

        n = loop.n
        t_count = min(self.threads, max(n, 1))
        write = loop.write
        ptr, r_idx, r_coeff = loop.reads.ptr, loop.reads.index, loop.reads.coeff
        external = loop.init_kind == INIT_EXTERNAL
        init_values = loop.init_values

        y = loop.y0.copy()
        ynew = np.zeros(loop.y_size, dtype=np.float64)
        iter_arr = np.full(loop.y_size, MAXINT, dtype=np.int64)
        ready = [threading.Event() for _ in range(loop.y_size)]
        barrier = threading.Barrier(t_count)
        failures: list[BaseException] = []
        failure_lock = threading.Lock()

        def positions_for(tid: int) -> range:
            return range(tid, n, t_count)

        def worker(tid: int) -> None:
            try:
                # Phase 1: inspector — each thread fills its slice of iter.
                for p in positions_for(tid):
                    i = p if order is None else int(order[p])
                    iter_arr[write[i]] = i
                barrier.wait()

                # Phase 2: executor (Figure 5).
                for p in positions_for(tid):
                    i = p if order is None else int(order[p])
                    w = write[i]
                    acc = init_values[i] if external else y[w]
                    for k in range(ptr[i], ptr[i + 1]):
                        idx = r_idx[k]
                        writer = iter_arr[idx]
                        if writer == i:
                            value = acc
                        elif writer < i:
                            ready[idx].wait()
                            value = ynew[idx]
                        else:
                            value = y[idx]
                        acc += r_coeff[k] * value
                    ynew[w] = acc
                    ready[w].set()
                barrier.wait()

                # Phase 3: postprocessor — reset scratch, copy back.
                for p in positions_for(tid):
                    i = p if order is None else int(order[p])
                    w = write[i]
                    iter_arr[w] = MAXINT
                    y[w] = ynew[w]
                    ready[w].clear()
            except BaseException as exc:  # pragma: no cover - defensive
                with failure_lock:
                    failures.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(tid,), daemon=True)
            for tid in range(t_count)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            raise failures[0]
        return y
