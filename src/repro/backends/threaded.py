"""Real-thread backend: the doacross protocol on actual concurrency.

The paper's protocol is a *correctness* claim as much as a performance one:
with the inspector's ``iter`` array and per-element ``ready`` flags, any
interleaving of iterations across processors produces the sequential result.
This backend checks that claim on real ``threading`` threads — per-element
``threading.Event`` objects play the ``ready`` flags, a ``threading.Barrier``
separates the three phases, and iterations are distributed cyclically so
each thread executes its positions in increasing order (the deadlock-freedom
precondition, DESIGN.md §6).

No timing is reported: under CPython's GIL these threads interleave rather
than run in parallel, which is exactly why the *performance* experiments use
the simulated backend instead (DESIGN.md §3).

Observability: when an :class:`~repro.obs.instrument.InstrumentedRunner`
attaches a span recorder, each worker emits wall-clock spans for its
inspector/executor/postprocessor slices, and the executor additionally
splits into alternating ``compute``/``wait`` spans at every *blocking*
``ready`` wait — by construction the children exactly tile their phase
span, the measured analogue of the simulated trace/stats accounting
invariant (tested).  Flag-check / busy-wait counters land in the unified
metrics registry under the same names the simulated
:class:`~repro.machine.stats.ProcessorStats` uses.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.backends.base import (
    Runner,
    note_ignored_options,
    validate_execution_order,
)
from repro.core.results import RunResult
from repro.core.sequential import sequential_time
from repro.core.workspace import MAXINT
from repro.errors import WaitTimeout
from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.machine.costs import CostModel
from repro.obs.spans import CAT_PHASE

__all__ = ["ThreadedRunner"]


class ThreadedRunner(Runner):
    """Runs the preprocessed doacross on real Python threads.

    ``analyze="symbolic"`` consults the symbolic dependence engine
    (:func:`repro.analysis.analyze_loop`) first: when the write subscript
    is *proven* injective, the ``iter`` array is filled in closed form by
    the main thread before any worker starts, and the workers skip their
    phase-1 inspector loops entirely (zero inspector iterations).
    ``analyze="symbolic+check"`` additionally cross-checks the verdict
    against the runtime inspector on every run, raising
    :class:`~repro.errors.ProofError` on divergence.
    """

    name = "threaded"

    def __init__(
        self,
        threads: int = 4,
        analyze: str | None = None,
        wait_timeout: float = 60.0,
    ):
        from repro.backends.vectorized import ANALYZE_MODES

        if threads < 1:
            raise ValueError(f"need at least one thread, got {threads}")
        if analyze not in ANALYZE_MODES:
            raise ValueError(
                f"unknown analyze mode {analyze!r}; expected one of "
                f"{ANALYZE_MODES}"
            )
        if wait_timeout <= 0:
            raise ValueError(
                f"wait_timeout must be > 0, got {wait_timeout}"
            )
        self.threads = threads
        self.analyze = analyze
        #: Ceiling (seconds) on any single blocking ``ready`` wait; a
        #: correct schedule sets every awaited flag, so exceeding this
        #: means the schedule is corrupted and :class:`WaitTimeout` is
        #: raised instead of hanging the pool (same contract as the
        #: multiproc backend's WaitLadder).
        self.wait_timeout = wait_timeout

    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Execute ``loop`` on real threads and return a
        :class:`RunResult` (measured wall clock; no cycle model — the GIL
        forbids timing claims, DESIGN.md §3).

        Iterations are always distributed cyclically (the deadlock-freedom
        precondition), so ``schedule``/``chunk`` are ignored; ``trace`` has
        no simulated timeline to record and is ignored too.  Every ignored
        option is recorded in ``result.extras["ignored_options"]``.
        """
        verdict = None
        elide = False
        if self.analyze is not None:
            from repro.analysis import analyze_loop

            verdict = analyze_loop(loop)
            # Prefilling iter in closed form is sound exactly when no two
            # iterations write one element — which the verdict proves.
            elide = verdict.write_injective
            if self.analyze == "symbolic+check":
                from repro.analysis import cross_check

                cross_check(loop, verdict, strict=True)
        # Group-synchronous elision (DistancePass): only sound in natural
        # order — the distance bound is on iteration numbers.
        group = self._group_sync if order is None else None
        t0 = time.perf_counter()
        y = self._execute(loop, order=order, prefill_iter=elide, group=group)
        wall = time.perf_counter() - t0
        cm = CostModel()
        result = RunResult(
            loop_name=loop.name,
            strategy="threaded-doacross",
            processors=self.threads,
            y=y,
            total_cycles=0,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            schedule=f"cyclic({self.threads} threads)",
            wall_seconds=wall,
        )
        if self.analyze is not None:
            result.extras["analyze"] = self.analyze
            result.extras["inspector_elided"] = elide
            if verdict is not None:
                result.extras["verdict"] = verdict.kind
                if verdict.distance is not None:
                    result.extras["verdict_distance"] = int(verdict.distance)
        if group is not None:
            result.extras["distance_group"] = int(group)
        ignored = {}
        cyclic_reason = (
            "the threaded backend always distributes iterations cyclically "
            "(deadlock-freedom precondition, DESIGN.md §6)"
        )
        if schedule is not None:
            ignored["schedule"] = (schedule, cyclic_reason)
        if chunk is not None:
            ignored["chunk"] = (chunk, cyclic_reason)
        if trace:
            ignored["trace"] = (
                True,
                "no simulated timeline exists on real threads; use "
                "observe=True for wall-clock spans",
            )
        note_ignored_options(result, self.name, **ignored)
        return result

    def run_preprocessed(
        self, loop: IrregularLoop, order: np.ndarray | None = None
    ) -> RunResult:
        """Execute ``loop`` with ``self.threads`` threads.

        Returns a :class:`RunResult` like every other runner (the final
        values are in ``.y``, semantically equal to the sequential oracle —
        tested).  Prior releases returned the bare ``y`` array.
        """
        return self.run(loop, order=order)

    def _execute(
        self,
        loop: IrregularLoop,
        order: np.ndarray | None = None,
        prefill_iter: bool = False,
        group: int | None = None,
    ) -> np.ndarray:
        """The three-phase protocol on real threads; returns final ``y``.

        With ``prefill_iter`` (symbolic elision, write proven injective),
        ``iter`` is filled once on the calling thread and the workers skip
        phase 1.  With ``group`` (a proven dependence-distance lower
        bound, natural order only), the executor runs group-synchronously:
        no per-element ready flags at all — every cross-iteration true
        dependence is proven to reach into a strictly earlier group, so
        one barrier per group of ``group`` iterations orders every
        renamed read after its write."""
        if order is not None:
            order = np.asarray(order, dtype=np.int64)
            validate_execution_order(loop, order)

        n = loop.n
        t_count = min(self.threads, max(n, 1))
        write = loop.write
        ptr, r_idx, r_coeff = loop.reads.ptr, loop.reads.index, loop.reads.coeff
        external = loop.init_kind == INIT_EXTERNAL
        init_values = loop.init_values

        y = loop.y0.copy()
        ynew = np.zeros(loop.y_size, dtype=np.float64)
        iter_arr = np.full(loop.y_size, MAXINT, dtype=np.int64)
        if prefill_iter:
            # Closed-form inspector: injectivity is proven, so no fill
            # order matters and the workers' phase-1 loops are skipped.
            iter_arr[write] = np.arange(n, dtype=np.int64)
        # Group-synchronous runs never touch per-element flags.
        ready = (
            None
            if group is not None
            else [threading.Event() for _ in range(loop.y_size)]
        )
        n_groups = 0 if group is None else -(-n // group) if n else 0
        barrier = threading.Barrier(t_count)
        failures: list[BaseException] = []
        failure_lock = threading.Lock()
        rec = self._obs_recorder
        met = self._obs_metrics
        san = self._san_capture

        def positions_for(tid: int) -> range:
            return range(tid, n, t_count)

        def await_ready(event: threading.Event, idx: int) -> None:
            # Bounded form of the Figure-5 busy-wait: a correct schedule
            # always sets the flag, so an expired deadline means the
            # schedule (or iter array) is corrupted — diagnose, don't hang.
            if not event.wait(self.wait_timeout):
                raise WaitTimeout(
                    f"busy-wait on element {idx} exceeded "
                    f"{self.wait_timeout:g}s; the schedule (or its iter "
                    f"array) is corrupted — a correct doacross schedule "
                    f"sets every awaited ready flag",
                    element=idx,
                    waited_seconds=self.wait_timeout,
                )

        def worker(tid: int) -> None:
            flag_checks = 0
            flag_sets = 0
            busy_waits = 0
            wait_seconds = 0.0
            events = None if san is None else san.lane(tid)
            # Span rows buffer locally (plain tuples, no lock, no object
            # construction) and flush in one record_batch call at the end —
            # per-span locking in the executor hot loop would double the
            # wall time of wait-heavy runs (tested budget: <10% overhead).
            # Blocking waits are even leaner: one (w0, w1, element) triple
            # per wait, expanded into the compute/wait tiling at drain time.
            buf: list[tuple] = []
            waits: list[tuple] = []
            now = time.perf_counter
            try:
                # Phase 1: inspector — each thread fills its slice of iter
                # (skipped entirely when the symbolic proof prefilled it).
                if rec is not None:
                    t_phase = now()
                inspected = 0
                if not prefill_iter:
                    for p in positions_for(tid):
                        i = p if order is None else int(order[p])
                        iter_arr[write[i]] = i
                        inspected += 1
                if rec is not None:
                    buf.append((
                        "inspector", CAT_PHASE, t_phase, now(), tid,
                        {"elided": prefill_iter},
                    ))
                if events is not None:
                    events.append(("b", 0))
                barrier.wait()

                # Phase 2: executor (Figure 5).  When observed, alternate
                # compute/wait spans so the children exactly tile the phase.
                if rec is not None:
                    t_phase = now()
                observing = rec is not None
                waits_append = waits.append
                if group is not None:
                    # Group-synchronous executor: iterations are processed
                    # group by group (cyclic within each group), with a
                    # barrier between groups.  The proven distance bound
                    # puts every renamed read's writer in a strictly
                    # earlier group, so no flag is ever checked or set.
                    elided = 0
                    executed = 0
                    for gk in range(n_groups):
                        ghi = min(n, (gk + 1) * group)
                        for i in range(gk * group + tid, ghi, t_count):
                            w = write[i]
                            acc = init_values[i] if external else y[w]
                            for k in range(ptr[i], ptr[i + 1]):
                                idx = r_idx[k]
                                writer = iter_arr[idx]
                                if writer == i:
                                    value = acc
                                elif writer < i:
                                    # Elided wait: the write completed
                                    # before the last group barrier.
                                    elided += 1
                                    if events is not None:
                                        events.append(("r", i, int(idx), 1))
                                    value = ynew[idx]
                                else:
                                    if events is not None:
                                        events.append(("r", i, int(idx), 0))
                                    value = y[idx]
                                acc += r_coeff[k] * value
                            ynew[w] = acc
                            # Elided post: no ready flag exists to set.
                            if events is not None:
                                events.append(("w", i, int(w)))
                            executed += 1
                        if events is not None:
                            events.append(("b", ("g", gk)))
                        barrier.wait()
                    if met is not None:
                        # sync_elisions = posts never set (one per
                        # iteration) + waits never performed (one per
                        # cross-iteration renamed read).
                        met.count("sync_elisions", executed + elided)
                        if tid == 0:
                            met.count("group_barriers", n_groups)
                    if rec is not None:
                        t_end = now()
                        buf.append(
                            ("executor", CAT_PHASE, t_phase, t_end, tid, None)
                        )
                        rec.record_wait_segments(tid, t_phase, t_end, waits)
                    if events is not None:
                        events.append(("b", 1))
                    barrier.wait()

                    # Phase 3 (group mode): reset scratch, copy back —
                    # identical minus the flag clears (none were set).
                    if rec is not None:
                        t_phase = now()
                    for p in positions_for(tid):
                        w = write[p]
                        iter_arr[w] = MAXINT
                        y[w] = ynew[w]
                    if rec is not None:
                        buf.append((
                            "postprocessor", CAT_PHASE, t_phase, now(), tid,
                            None,
                        ))
                        rec.record_batch(buf)
                    if met is not None:
                        met.count("flag_checks", 0)
                        met.count("flag_sets", 0)
                        met.count("busy_waits", 0)
                        met.count("wait_seconds", 0.0)
                        met.count("iterations", len(positions_for(tid)))
                        met.count("inspector_iterations", inspected)
                    return
                for p in positions_for(tid):
                    i = p if order is None else int(order[p])
                    w = write[i]
                    acc = init_values[i] if external else y[w]
                    for k in range(ptr[i], ptr[i + 1]):
                        idx = r_idx[k]
                        writer = iter_arr[idx]
                        if writer == i:
                            value = acc
                        elif writer < i:
                            flag_checks += 1
                            event = ready[idx]
                            if events is not None:
                                # Log the acquire *before* blocking: on a
                                # successful wait the per-lane order is
                                # unchanged, and a timed-out wait leaves
                                # the unsatisfied acquire in the shadow
                                # log for the sanitizer to name.
                                events.append(("a", int(idx)))
                            if observing and not event.is_set():
                                # Blocking busy-wait: note the interval;
                                # the compute/wait span tiling is expanded
                                # from these triples at drain time.
                                busy_waits += 1
                                w0 = now()
                                await_ready(event, int(idx))
                                w1 = now()
                                waits_append((w0, w1, idx))
                                wait_seconds += w1 - w0
                            else:
                                await_ready(event, int(idx))
                            if events is not None:
                                events.append(("r", i, int(idx), 1))
                            value = ynew[idx]
                        else:
                            if events is not None:
                                events.append(("r", i, int(idx), 0))
                            value = y[idx]
                        acc += r_coeff[k] * value
                    ynew[w] = acc
                    ready[w].set()
                    if events is not None:
                        events.append(("w", i, int(w)))
                        events.append(("p", int(w)))
                    flag_sets += 1
                if rec is not None:
                    t_end = now()
                    buf.append(
                        ("executor", CAT_PHASE, t_phase, t_end, tid, None)
                    )
                    rec.record_wait_segments(tid, t_phase, t_end, waits)
                if events is not None:
                    events.append(("b", 1))
                barrier.wait()

                # Phase 3: postprocessor — reset scratch, copy back.
                if rec is not None:
                    t_phase = now()
                for p in positions_for(tid):
                    i = p if order is None else int(order[p])
                    w = write[i]
                    iter_arr[w] = MAXINT
                    y[w] = ynew[w]
                    ready[w].clear()
                if rec is not None:
                    buf.append(
                        ("postprocessor", CAT_PHASE, t_phase, now(), tid, None)
                    )
                    rec.record_batch(buf)
                if met is not None:
                    met.count("flag_checks", flag_checks)
                    met.count("flag_sets", flag_sets)
                    met.count("busy_waits", busy_waits)
                    met.count("wait_seconds", wait_seconds)
                    met.count("iterations", len(positions_for(tid)))
                    met.count("inspector_iterations", inspected)
            except BaseException as exc:  # pragma: no cover - defensive
                with failure_lock:
                    failures.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(tid,), daemon=True)
            for tid in range(t_count)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            # A worker that dies aborts the barrier, so sibling threads
            # fail with BrokenBarrierError; surface the root cause.
            for exc in failures:
                if not isinstance(exc, threading.BrokenBarrierError):
                    raise exc
            raise failures[0]
        return y
