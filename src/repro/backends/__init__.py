"""Execution backends for the transformed loops.

- :mod:`repro.backends.simulated` — the primary backend: runs the
  inspector/executor/postprocessor phases on the discrete-event machine
  (:mod:`repro.machine`), producing both correct values and simulated
  timings.  All paper experiments use this backend.
- :mod:`repro.backends.threaded` — real ``threading`` execution with
  per-element events; demonstrates the protocol is functionally correct on
  actual concurrent hardware (no timing claims — the GIL forbids them; see
  DESIGN.md §3).
- :mod:`repro.backends.base` — shared helpers (order validation).
"""

from repro.backends.base import validate_execution_order
from repro.backends.simulated import SimulatedRunner
from repro.backends.threaded import ThreadedRunner

__all__ = ["SimulatedRunner", "ThreadedRunner", "validate_execution_order"]
