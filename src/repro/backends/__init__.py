"""Execution backends for the transformed loops.

All backends implement the :class:`repro.backends.base.Runner` protocol —
``run(loop, *, order=None, schedule=None, chunk=None, trace=False)``
returning a :class:`~repro.core.results.RunResult` — so strategy code and
benchmarks select them interchangeably (``parallelize(..., backend=...)``).

- :mod:`repro.backends.simulated` — the paper-experiment backend: runs the
  inspector/executor/postprocessor phases on the discrete-event machine
  (:mod:`repro.machine`), producing both correct values and simulated
  timings.  All paper experiments use this backend.
- :mod:`repro.backends.threaded` — real ``threading`` execution with
  per-element events; demonstrates the protocol is functionally correct on
  actual concurrent hardware (no timing claims — the GIL forbids them; see
  DESIGN.md §3).
- :mod:`repro.backends.vectorized` — batched wavefront execution: each
  dependence level runs as NumPy array operations over all its iterations,
  giving real wall-clock parallel throughput on CPython; preprocessing is
  served by a content-addressed :class:`InspectorCache`.
- :mod:`repro.backends.multiproc` — the doacross protocol across real OS
  processes: a persistent worker pool busy-waits on
  ``multiprocessing.shared_memory`` arrays (``iter``/``ready``/``ynew``)
  with §2.3 strip-mined chunking, every wait bounded by a
  :class:`~repro.backends.waitladder.WaitLadder`.
- :mod:`repro.backends.speculative` — the optimistic dual of the
  inspector: chunks execute in parallel with no inspection at all,
  conflicts are detected from per-chunk access logs after the fact, and
  losers are rolled back and re-executed (bounded retry budget, then
  sequential fallback).
- :mod:`repro.backends.cache` — the inspector cache (Figure-3 amortization
  with hit/miss counters).
- :mod:`repro.backends.base` — the :class:`Runner` protocol and shared
  helpers (order validation).
"""

from repro.backends.base import Runner, validate_execution_order
from repro.backends.cache import InspectorCache, InspectorRecord, loop_fingerprint
from repro.backends.multiproc import MultiprocRunner
from repro.backends.simulated import SimulatedRunner
from repro.backends.speculative import SpeculativeRunner
from repro.backends.threaded import ThreadedRunner
from repro.backends.validating import ValidatingRunner
from repro.backends.vectorized import VectorizedRunner
from repro.backends.waitladder import WaitLadder

__all__ = [
    "Runner",
    "SimulatedRunner",
    "ThreadedRunner",
    "VectorizedRunner",
    "MultiprocRunner",
    "SpeculativeRunner",
    "ValidatingRunner",
    "InspectorCache",
    "InspectorRecord",
    "WaitLadder",
    "loop_fingerprint",
    "make_runner",
    "BACKENDS",
    "validate_execution_order",
]

#: Names accepted by ``make_runner`` / ``parallelize(backend=...)``.
BACKENDS = ("simulated", "threaded", "vectorized", "multiproc", "speculative")


_UNSET = object()


def make_runner(
    backend: str = "simulated",
    *,
    spec=None,
    processors: int = 16,
    cost_model=None,
    cache: InspectorCache | None = None,
    bus: bool = False,
    coherence: bool = False,
    validate: str | None = _UNSET,
    observe: bool = _UNSET,
    analyze: str | None = _UNSET,
) -> Runner:
    """Build a :class:`Runner` by name — or from a
    :class:`~repro.passes.spec.PlanSpec` via ``spec=``.

    ``spec`` is the consolidated form: one frozen value object carrying
    backend/processors/analyze/validate/observe/wait_timeout, checked
    against the backend option-support matrix before anything is built.
    The individual ``validate``/``observe``/``analyze`` keywords still
    work but emit a :class:`DeprecationWarning` pointing at ``spec=``
    (``processors``/``cost_model``/``cache``/``bus``/``coherence`` are
    resources and machine configuration, not plan options, and stay
    plain keywords).

    ``processors`` means simulated processors for the simulated backend,
    thread count for the threaded backend, and worker-process count for
    the multiproc backend; the vectorized backend has no processor knob
    (its parallelism is the wavefront width).  ``cache`` serves the
    vectorized backend's inspector records and, on the multiproc backend,
    prefills the shared ``iter`` array so workers skip their inspector
    phase.

    ``analyze="symbolic"`` enables the symbolic dependence engine on the
    threaded, vectorized, and multiproc backends: when a loop's verdict is
    proven, the
    runtime inspector is elided (closed-form ``iter`` array / inspector
    record; see :mod:`repro.analysis`).  ``analyze="symbolic+check"`` is
    the debug mode that additionally cross-checks every proof against the
    real inspector output.  The simulated backend models the inspector as
    a costed phase, so ``analyze`` is rejected here — use
    :func:`repro.core.doacross.parallelize` with ``analyze=`` for
    verdict-driven strategy dispatch on the simulator.

    ``validate="static"`` wraps the runner in a
    :class:`~repro.backends.validating.ValidatingRunner`: every ``run``
    first lint-checks the loop and race-checks the backend's schedule,
    raising :class:`~repro.errors.RaceConditionError` before execution if
    a true dependence is unordered.  ``validate="sanitize"`` wraps it in
    a :class:`~repro.sanitize.runner.SanitizingRunner` instead: the
    backend shadow-logs its actual reads, writes, posts, and waits, and
    after the run a vector-clock replay checks every true dependence for
    a *witnessed* happens-before edge, raising
    :class:`~repro.errors.SanitizerError` on any uncovered pair.

    ``observe=True`` wraps the (possibly validating) runner in an
    :class:`~repro.obs.instrument.InstrumentedRunner`: every ``run``
    attaches a :class:`~repro.obs.telemetry.Telemetry` blob — phase spans
    plus the unified metrics registry, same schema on every backend — to
    ``result.telemetry``.
    """
    if spec is not None:
        if (
            validate is not _UNSET
            or observe is not _UNSET
            or analyze is not _UNSET
        ):
            raise TypeError(
                "make_runner(spec=...) cannot be combined with the legacy "
                "validate/observe/analyze keywords; set them on the PlanSpec"
            )
        from repro.passes.spec import AUTO_BACKEND, check_options

        if spec.backend == AUTO_BACKEND:
            raise ValueError(
                "backend='auto' is a per-loop decision, not a runner: use "
                "parallelize(loop, spec=...) or repro.passes.plan_loop so "
                "the tuner can see the loop's structure"
            )
        check_options(spec)
        return _build_runner(
            spec.backend,
            processors=spec.processors,
            cost_model=cost_model,
            cache=cache,
            bus=bus,
            coherence=coherence,
            validate=spec.validate,
            observe=spec.observe,
            analyze=spec.analyze,
            wait_timeout=spec.wait_timeout,
        )

    shimmed = [
        name
        for name, value in (
            ("validate", validate),
            ("observe", observe),
            ("analyze", analyze),
        )
        if value is not _UNSET
    ]
    if shimmed:
        import warnings

        warnings.warn(
            f"the {', '.join(shimmed)} keyword option(s) on make_runner are "
            "deprecated; pass a consolidated PlanSpec via "
            "make_runner(spec=PlanSpec(...))",
            DeprecationWarning,
            stacklevel=2,
        )
    return _build_runner(
        backend,
        processors=processors,
        cost_model=cost_model,
        cache=cache,
        bus=bus,
        coherence=coherence,
        validate=None if validate is _UNSET else validate,
        observe=False if observe is _UNSET else observe,
        analyze=None if analyze is _UNSET else analyze,
    )


def _build_runner(
    backend: str = "simulated",
    *,
    processors: int = 16,
    cost_model=None,
    cache: InspectorCache | None = None,
    bus: bool = False,
    coherence: bool = False,
    validate: str | None = None,
    observe: bool = False,
    analyze: str | None = None,
    wait_timeout: float | None = None,
) -> Runner:
    """The warning-free constructor behind :func:`make_runner`.

    Internal callers (the legacy ``parallelize`` path, plan execution,
    the CLI, benches) use this directly so one user-facing call never
    produces more than one :class:`DeprecationWarning`.  ``wait_timeout``
    bounds each blocking busy-wait where the backend has one (threaded
    events; the multiproc :class:`WaitLadder`).
    """
    if backend == "simulated":
        from repro.machine.engine import Machine

        if analyze is not None:
            raise ValueError(
                "analyze is not supported on the simulated backend (its "
                "inspector is a costed phase, not elidable work); use "
                "parallelize(..., analyze=...) for verdict-driven strategy "
                "dispatch"
            )
        runner: Runner = SimulatedRunner(
            Machine(
                processors, cost_model=cost_model, bus=bus, coherence=coherence
            )
        )
    elif backend == "threaded":
        kwargs = {} if wait_timeout is None else {"wait_timeout": wait_timeout}
        runner = ThreadedRunner(threads=processors, analyze=analyze, **kwargs)
    elif backend == "vectorized":
        runner = VectorizedRunner(
            cache=cache, cost_model=cost_model, analyze=analyze
        )
    elif backend == "multiproc":
        ladder = None if wait_timeout is None else WaitLadder(timeout=wait_timeout)
        runner = MultiprocRunner(
            workers=processors, cache=cache, analyze=analyze, ladder=ladder
        )
    elif backend == "speculative":
        # Speculation never busy-waits, so wait_timeout has nothing to
        # bound (same silent no-op as on the vectorized backend); the
        # liveness bound is the retry budget instead.
        runner = SpeculativeRunner(workers=processors, analyze=analyze)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    if validate is not None:
        if validate == "static":
            runner = ValidatingRunner(runner)
        elif validate == "sanitize":
            from repro.sanitize.runner import SanitizingRunner

            runner = SanitizingRunner(runner)
        else:
            raise ValueError(
                f"unknown validate mode {validate!r}; expected 'static', "
                "'sanitize', or None"
            )
    if observe:
        from repro.obs.instrument import InstrumentedRunner

        runner = InstrumentedRunner(runner)
    return runner
