"""Content-addressed inspector cache: the paper's amortization, concrete.

The paper's central economic argument (§2.3, Figure 3) is that the
inspector's output is *reusable*: preprocessing cost is paid once per
dependence structure and amortized over every execution that shares it —
the triangular solve inside a Krylov iteration being the canonical case
(tens of solves per factorization, identical subscripts every time).

:class:`InspectorCache` makes that claim operational.  A loop's dependence
structure is fingerprinted by *content* — SHA-256 over the ``write`` index
array, the read table's ``ptr``/``index`` arrays, and the static signature
(:func:`repro.ir.transform.structural_signature`) — so:

- two distinct loop objects with equal index arrays share one cache entry
  (amortization across instances, Figure 3);
- mutating any index array in place changes the digest and *misses*
  (there is no way to consume a stale inspector result);
- coefficients and values are deliberately excluded: they do not affect
  who-writes-what, so a solver that rescales its matrix still hits.

A cache entry (:class:`InspectorRecord`) holds everything the vectorized
backend's preprocessing produces: the paper's ``iter`` array, the
wavefront :class:`~repro.graph.levels.LevelSchedule`, the
:class:`~repro.ir.transform.TransformPlan`, and the executor-ready term
layout (terms permuted into wavefront order, read sources resolved to
old-``y``/``ynew``, intra-iteration terms marked).  Everything in the
record is structure-only; per-run values (coefficients, initial values)
are gathered at execution time.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.workspace import MAXINT
from repro.errors import InvalidLoopError
from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import LevelSchedule, compute_levels
from repro.ir.loop import IrregularLoop
from repro.ir.transform import TransformPlan, plan_transform, structural_signature

__all__ = [
    "loop_fingerprint",
    "InspectorRecord",
    "InspectorCache",
    "build_inspector_record",
    "assemble_record",
]


def loop_fingerprint(loop: IrregularLoop) -> str:
    """SHA-256 digest of the loop's dependence structure.

    Covers the static signature plus the raw bytes of ``write``,
    ``reads.ptr``, and ``reads.index``.  Excludes coefficients, ``y0``,
    and ``init_values`` — they affect arithmetic, not dependence.
    """
    h = hashlib.sha256()
    h.update(repr(structural_signature(loop)).encode())
    for arr in (loop.write, loop.reads.ptr, loop.reads.index):
        h.update(b"|")
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


@dataclass
class InspectorRecord:
    """One cached preprocessing result (structure-only; see module doc).

    Attributes
    ----------
    fingerprint:
        Content digest this record was built from.
    iter_array:
        The paper's ``iter``: writer iteration per ``y`` element,
        ``MAXINT`` where unwritten.
    schedule:
        Wavefront decomposition of the true-dependence DAG.
    plan:
        The compiler's strategy decision for the loop's static structure.
    exec_order:
        Iterations permuted for batched execution: wavefront level major,
        then per-iteration term count *descending* (so each term slot's
        active set is a prefix — no masks in the executor's inner step).
    exec_counts, exec_ptr:
        Term counts / CSR boundaries per execution position.
    exec_write:
        Write index per execution position.
    term_source:
        Flat original-term positions in execution order; per-run data
        (coefficients) is gathered through this permutation.
    env_index:
        Per execution-ordered term: the gather index into the doubled
        value environment ``[y_old | y_new]`` — ``index`` for
        antidependent/unwritten reads (old value), ``index + y_size`` for
        true-dependence reads (renamed new value).
    intra:
        Per execution-ordered term: reads the live accumulator of its own
        iteration (the paper's ``check == 0`` case).
    slot_active, slot_ptr:
        For level ``k`` and term slot ``j``: ``slot_active[slot_ptr[k]+j]``
        iterations (a prefix of the level) still have a ``j``-th term.
    """

    fingerprint: str
    iter_array: np.ndarray
    schedule: LevelSchedule
    plan: TransformPlan
    exec_order: np.ndarray
    exec_counts: np.ndarray
    exec_ptr: np.ndarray
    exec_write: np.ndarray
    term_source: np.ndarray
    env_index: np.ndarray
    intra: np.ndarray
    slot_active: np.ndarray
    slot_ptr: np.ndarray

    @property
    def n_levels(self) -> int:
        return self.schedule.n_levels

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the cached arrays."""
        arrays = (
            self.iter_array,
            self.schedule.levels,
            self.schedule.order,
            self.schedule.level_ptr,
            self.exec_order,
            self.exec_counts,
            self.exec_ptr,
            self.exec_write,
            self.term_source,
            self.env_index,
            self.intra,
            self.slot_active,
            self.slot_ptr,
        )
        return int(sum(a.nbytes for a in arrays))


def build_inspector_record(loop: IrregularLoop) -> InspectorRecord:
    """Run the (vectorized) inspector and wavefront preprocessing for
    ``loop`` and package the result for caching.

    This is the whole run-time preprocessing pipeline of the paper —
    Figure 3's ``iter`` construction plus the §3.2 wavefront computation —
    executed as NumPy array operations rather than simulated phases.
    """
    n, y_size = loop.n, loop.y_size
    write = loop.write
    index = loop.reads.index

    # Inspector: iter(a(i)) = i, everything else MAXINT (Figure 3, left).
    iter_array = np.full(y_size, MAXINT, dtype=np.int64)
    iter_array[write] = np.arange(n, dtype=np.int64)

    # Classify every flat term against iter (the executor's check).
    readers = loop.reads.iteration_of_term()
    writers = iter_array[index]  # MAXINT where unwritten
    intra_flat = writers == readers
    true_flat = writers < readers  # MAXINT compares greater: never true dep

    # True-dependence DAG -> wavefront levels.
    if bool(true_flat.any()):
        pairs = np.unique(
            np.stack([writers[true_flat], readers[true_flat]], axis=1), axis=0
        )
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    schedule = compute_levels(DependenceGraph(n, pairs))

    return assemble_record(
        loop,
        iter_array=iter_array,
        schedule=schedule,
        true_flat=true_flat,
        intra_flat=intra_flat,
        plan=plan_transform(loop),
        fingerprint=loop_fingerprint(loop),
    )


def assemble_record(
    loop: IrregularLoop,
    *,
    iter_array: np.ndarray,
    schedule: LevelSchedule,
    true_flat: np.ndarray,
    intra_flat: np.ndarray,
    plan: TransformPlan,
    fingerprint: str,
) -> InspectorRecord:
    """Lay out an :class:`InspectorRecord` from classified terms.

    Shared by the runtime inspector (:func:`build_inspector_record`) and
    the symbolic elision path (:func:`repro.analysis.build_symbolic_record`)
    — both feed the same deterministic layout, so records are bitwise
    comparable regardless of which side produced the classification.
    """
    n, y_size = loop.n, loop.y_size
    write = loop.write
    ptr, index = loop.reads.ptr, loop.reads.index

    # Execution order: level-major, term count descending inside a level
    # so slot j's active iterations are always a leading prefix.
    counts = np.diff(ptr)
    exec_order = np.lexsort(
        (np.arange(n, dtype=np.int64), -counts, schedule.levels)
    ).astype(np.int64)

    exec_counts = counts[exec_order]
    exec_ptr = np.zeros(n + 1, dtype=np.int64)
    exec_ptr[1:] = np.cumsum(exec_counts)
    total = int(ptr[-1])

    # Flat original-term position feeding each execution-ordered term.
    term_source = (
        np.repeat(ptr[exec_order] - exec_ptr[:-1], exec_counts)
        + np.arange(total, dtype=np.int64)
    )

    env_index = index[term_source] + y_size * true_flat[term_source]
    intra = intra_flat[term_source]

    # Per-level, per-slot active prefix lengths.
    level_ptr = schedule.level_ptr
    n_levels = schedule.n_levels
    slot_counts = np.zeros(n_levels, dtype=np.int64)
    actives: list[np.ndarray] = []
    for k in range(n_levels):
        lo, hi = int(level_ptr[k]), int(level_ptr[k + 1])
        cnt = exec_counts[lo:hi]  # non-increasing by construction
        maxc = int(cnt[0]) if hi > lo else 0
        slot_counts[k] = maxc
        if maxc:
            # active[j] = #iterations in the level with count > j.
            ascending = cnt[::-1]
            active = (hi - lo) - np.searchsorted(
                ascending, np.arange(maxc, dtype=np.int64), side="right"
            )
            actives.append(active.astype(np.int64))
    slot_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    slot_ptr[1:] = np.cumsum(slot_counts)
    slot_active = (
        np.concatenate(actives) if actives else np.empty(0, dtype=np.int64)
    )

    return InspectorRecord(
        fingerprint=fingerprint,
        iter_array=iter_array,
        schedule=schedule,
        plan=plan,
        exec_order=exec_order,
        exec_counts=exec_counts,
        exec_ptr=exec_ptr,
        exec_write=write[exec_order],
        term_source=term_source,
        env_index=env_index,
        intra=intra,
        slot_active=slot_active,
        slot_ptr=slot_ptr,
    )


class InspectorCache:
    """LRU cache of :class:`InspectorRecord` keyed by loop content.

    Parameters
    ----------
    capacity:
        Maximum number of dependence structures retained; least recently
        used entries are evicted first.

    Attributes
    ----------
    hits, misses:
        Lookup counters — the measurable form of the paper's Figure-3
        amortization claim (asserted in tests and reported by
        ``repro.bench.bench_vectorized``).

    Beyond inspector records, the cache carries the auto-tuner's state
    (:meth:`tuner_state`): per-fingerprint wall-time measurements,
    telemetry features, and the current backend decision.  Keying both
    under the same content address is deliberate — "same dependence
    structure" is one notion shared by preprocessing amortization and by
    tuning (:mod:`repro.passes.autotune`).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise InvalidLoopError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, InspectorRecord] = OrderedDict()
        self._tuner: dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, loop: IrregularLoop) -> bool:
        return loop_fingerprint(loop) in self._entries

    def get_or_build(
        self,
        loop: IrregularLoop,
        builder=None,
        fingerprint: str | None = None,
    ) -> tuple[InspectorRecord, bool]:
        """Return ``(record, hit)`` for ``loop``, building on a miss.

        ``builder`` (default :func:`build_inspector_record`) produces the
        record; the symbolic elision path injects
        :func:`repro.analysis.build_symbolic_record` here.  ``fingerprint``
        overrides the content digest — a fully proven loop is keyed by its
        structure-only :func:`repro.analysis.symbolic_fingerprint`, which
        lets loops with identical proofs share one entry without hashing
        their index arrays.
        """
        fp = fingerprint if fingerprint is not None else loop_fingerprint(loop)
        record = self._entries.get(fp)
        if record is not None:
            self.hits += 1
            self._entries.move_to_end(fp)
            return record, True
        self.misses += 1
        record = (builder or build_inspector_record)(loop)
        self._entries[fp] = record
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return record, False

    def seed(
        self, record: InspectorRecord, fingerprint: str | None = None
    ) -> None:
        """Insert a pre-built record without touching the hit/miss
        counters — how plan-time preprocessing
        (:class:`repro.passes.builtin.InspectorPass`) warms a runner's
        cache without skewing the amortization accounting."""
        fp = fingerprint if fingerprint is not None else record.fingerprint
        self._entries[fp] = record
        self._entries.move_to_end(fp)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def tuner_state(self, fingerprint: str) -> dict:
        """The auto-tuner's mutable slot for one dependence structure.

        Layout: ``{"measurements": {backend: [wall_seconds, ...]},
        "features": {backend: {...}}, "decision": dict | None}``.  Slots
        are created on demand and survive :meth:`clear` of the record
        entries only via an explicit re-fetch (tuning history is cheap;
        inspector records are the memory hogs).
        """
        return self._tuner.setdefault(
            fingerprint,
            {"measurements": {}, "features": {}, "decision": None},
        )

    def clear(self) -> None:
        """Drop all entries, tuner state included (counters are kept)."""
        self._entries.clear()
        self._tuner.clear()

    def stats(self) -> dict:
        """Counters plus footprint, JSON-safe."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "bytes": int(
                sum(r.nbytes for r in self._entries.values())
            ),
            "tuner_entries": len(self._tuner),
        }
