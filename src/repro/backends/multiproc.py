"""Shared-memory multiprocessing backend: the doacross protocol across
real OS processes.

The threaded backend proves the paper's protocol correct under the GIL;
this backend removes the GIL from the picture.  A persistent pool of
worker *processes* executes the three phases of the preprocessed doacross
(§2.2–2.3) against ``multiprocessing.shared_memory`` segments that play
the paper's shared arrays directly:

- ``iter``  — writer iteration per ``y`` element (``MAXINT`` = unwritten),
- ``ready`` — one byte per element, the Figure-5 busy-wait flags,
- ``ynew``  — the renamed write targets (antidependence removal),
- ``y``     — the live values, updated by the postprocessor.

Iterations are strip-mined into contiguous *chunks* of ``chunk``
positions (§2.3), dealt round-robin to workers; each worker executes its
chunks in increasing order, so every cross-chunk true dependence points
to a strictly earlier chunk and the busy-wait protocol is deadlock-free
by the same induction as the cyclic threaded schedule (DESIGN.md §6).
Within a chunk the worker precomputes a per-term classification from the
shared ``iter`` array (old-``y`` read / same-chunk ``ynew`` read /
cross-chunk wait / intra-iteration accumulator) — the Figure-5 compare
hoisted out of the inner loop and, for natural-order runs, cached across
loop instances per dependence structure.

Every blocking cross-chunk wait is bounded by a
:class:`~repro.backends.waitladder.WaitLadder` (spin, then escalating
sleep, then :class:`~repro.errors.WaitTimeout`), so a corrupted schedule
diagnoses itself instead of hanging the pool; after a timeout the scratch
arrays are marked dirty and fully re-reset before the next run, keeping
the pool and its shared segments reusable.

Like the other real-concurrency backends the arithmetic is *exactly* the
sequential oracle's: per iteration, terms accumulate in original order as
float64 scalar operations, so outputs are bitwise equal to
:meth:`~repro.ir.loop.IrregularLoop.run_sequential` (tested by the
conformance matrix).

Observability: span times are ``time.perf_counter`` readings, which on
Linux is ``CLOCK_MONOTONIC`` — one clock domain across all processes —
so per-worker inspector/executor/postprocessor phase spans and the
compute/wait alternation inside the executor merge directly into the
session's :class:`~repro.obs.spans.SpanRecorder`, lane = worker id,
``pid`` tagged in the attrs.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
import weakref
from collections import OrderedDict

import numpy as np
from multiprocessing import shared_memory

from repro.backends.base import (
    Runner,
    note_ignored_options,
    validate_execution_order,
)
from repro.backends.cache import InspectorCache, loop_fingerprint
from repro.backends.waitladder import DEFAULT_LADDER, WaitLadder
from repro.core.results import RunResult
from repro.core.sequential import sequential_time
from repro.core.workspace import MAXINT
from repro.errors import ReproError, WaitTimeout
from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.machine.costs import CostModel
from repro.obs.spans import CAT_COMPUTE, CAT_PHASE, CAT_WAIT

__all__ = ["MultiprocRunner"]

# Shared-memory block layout: (field, dtype, which shape dimension).
_BLOCKS = (
    ("write", np.int64, "n"),
    ("ptr", np.int64, "n1"),
    ("index", np.int64, "terms"),
    ("coeff", np.float64, "terms"),
    ("init", np.float64, "n"),
    ("order", np.int64, "n"),
    ("y", np.float64, "y"),
    ("ynew", np.float64, "y"),
    ("iter", np.int64, "y"),
    ("ready", np.uint8, "y"),
)


def _block_len(dim: str, n: int, y_size: int, terms: int) -> int:
    return {"n": n, "n1": n + 1, "terms": terms, "y": y_size}[dim]


def _chunk_ranges(n: int, chunk: int, workers: int, wid: int):
    """Worker ``wid``'s chunks: contiguous ``chunk``-sized position ranges
    dealt round-robin, visited in increasing order (deadlock freedom)."""
    n_chunks = -(-n // chunk) if n else 0
    for c in range(wid, n_chunks, workers):
        lo = c * chunk
        yield lo, min(n, lo + chunk)


# ----------------------------------------------------------------------
# Worker process side.
# ----------------------------------------------------------------------


def _mute_shm_tracking() -> None:
    """Called once per worker process: stop the resource tracker from
    recording shared-memory *attachments*.

    Attaching registers the segment as if this process owned it; the main
    process is the owner and unlinks every segment itself, so worker-side
    registrations are spurious — depending on fork timing they either
    produce bogus "leaked shared_memory" warnings at worker exit (worker
    spawned its own tracker) or KeyErrors in a shared tracker when the
    owner unregisters first.  Workers never create segments, so dropping
    shared-memory registrations entirely is safe."""
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register


def _worker_attach(meta: dict) -> dict:
    """Attach one session's shared blocks and build the numpy views."""
    n, y_size, terms = meta["n"], meta["y_size"], meta["terms"]
    shms, views = [], {}
    for field, dtype, dim in _BLOCKS:
        shm = shared_memory.SharedMemory(name=meta["names"][field])
        shms.append(shm)
        count = _block_len(dim, n, y_size, terms)
        views[field] = np.ndarray((count,), dtype=dtype, buffer=shm.buf)
    return {
        "shms": shms,
        "views": views,
        "n": n,
        "y_size": y_size,
        "counts": np.diff(views["ptr"]),
        "codes": {},
    }


def _code_natural(sess: dict, lo: int, hi: int) -> np.ndarray:
    """Per-term executor classification for natural-order chunk
    ``[lo, hi)``: 0 = read old ``y`` (anti/unwritten), 1 = read ``ynew``
    written earlier in this same chunk (no flag needed — this worker wrote
    it), 2 = cross-chunk true dependence (ladder wait on ``ready``),
    3 = intra-iteration (live accumulator).  Depends only on the loop's
    structure, so callers cache it per (structure, chunking)."""
    v = sess["views"]
    ptr, index, it = v["ptr"], v["index"], v["iter"]
    k0, k1 = int(ptr[lo]), int(ptr[hi])
    writers = it[index[k0:k1]]
    readers = np.repeat(
        np.arange(lo, hi, dtype=np.int64), sess["counts"][lo:hi]
    )
    code = np.zeros(k1 - k0, dtype=np.int8)
    code[writers == readers] = 3
    true_dep = writers < readers
    code[true_dep & (writers >= lo)] = 1
    code[true_dep & (writers < lo)] = 2
    return code


def _code_ordered(
    sess: dict, lo: int, hi: int, pos: np.ndarray
) -> np.ndarray:
    """Classification for position chunk ``[lo, hi)`` under a doconsider
    order: the Figure-5 compare is still on iteration numbers, but "no
    flag needed" now means the writer's *position* falls earlier in this
    same chunk.  Terms appear in execution order (flat reads of
    ``order[lo]``, then ``order[lo+1]``, ...)."""
    v = sess["views"]
    ptr, index, it = v["ptr"], v["index"], v["iter"]
    its = v["order"][lo:hi]
    cnt = sess["counts"][its]
    total = int(cnt.sum())
    code = np.zeros(total, dtype=np.int8)
    if not total:
        return code
    shift = np.zeros(len(cnt), dtype=np.int64)
    shift[1:] = np.cumsum(cnt)[:-1]
    offs = np.repeat(ptr[its] - shift, cnt) + np.arange(
        total, dtype=np.int64
    )
    writers = it[index[offs]]
    readers_iter = np.repeat(its, cnt)
    readers_pos = np.repeat(np.arange(lo, hi, dtype=np.int64), cnt)
    code[writers == readers_iter] = 3
    true_dep = writers < readers_iter
    td = np.nonzero(true_dep)[0]
    if len(td):
        wpos = pos[writers[td]]
        in_chunk = (wpos >= lo) & (wpos < readers_pos[td])
        code[td[in_chunk]] = 1
        code[td[~in_chunk]] = 2
    return code


def _task_inspector(sess: dict, opts: dict, wid: int) -> dict:
    """Phase 1: fill this worker's slice of ``iter`` (Figure 3, left).
    ``iter[write[i]] = i`` is order-independent, so chunks fill in one
    vectorized store each regardless of any doconsider order."""
    v = sess["views"]
    it, write = v["iter"], v["write"]
    observe = opts["observe"]
    if observe:
        t0 = time.perf_counter()
    inspected = 0
    for lo, hi in _chunk_ranges(
        sess["n"], opts["chunk"], opts["workers"], wid
    ):
        it[write[lo:hi]] = np.arange(lo, hi, dtype=np.int64)
        inspected += hi - lo
    payload: dict = {
        "wid": wid,
        "metrics": {"inspector_iterations": inspected},
    }
    if observe:
        payload["spans"] = [
            (
                "inspector",
                CAT_PHASE,
                t0,
                time.perf_counter(),
                {"pid": os.getpid(), "elided": False},
            )
        ]
    return payload


def _task_executor(sess: dict, opts: dict, wid: int) -> dict:
    """Phase 2: the Figure-5 executor over this worker's chunks, with the
    per-term compare precomputed into a classification code and every
    blocking wait bounded by the ladder."""
    v = sess["views"]
    write, ptr, index = v["write"], v["ptr"], v["index"]
    coeff, init = v["coeff"], v["init"]
    y, ynew, ready = v["y"], v["ynew"], v["ready"]
    n = sess["n"]
    chunk, workers = opts["chunk"], opts["workers"]
    has_order, external = opts["has_order"], opts["external"]
    observe, ladder = opts["observe"], opts["ladder"]
    sanitize = opts.get("sanitize", False)
    events: list | None = [] if sanitize else None
    timed_out: WaitTimeout | None = None
    pid = os.getpid()

    if has_order:
        order = v["order"]
        pos = np.empty(n, dtype=np.int64)
        pos[order[:n]] = np.arange(n, dtype=np.int64)

    flag_checks = flag_sets = busy_waits = iterations = 0
    wait_escalations = 0
    wait_seconds = 0.0
    spans: list = []
    if observe:
        t_phase = time.perf_counter()
        seg_start = t_phase

    try:
        for lo, hi in _chunk_ranges(n, chunk, workers, wid):
            if has_order:
                code = _code_ordered(sess, lo, hi, pos)
            else:
                key = (chunk, workers, lo)
                code = sess["codes"].get(key)
                if code is None:
                    code = sess["codes"][key] = _code_natural(sess, lo, hi)
            cur = 0
            for p in range(lo, hi):
                i = int(order[p]) if has_order else p
                w = write[i]
                acc = init[i] if external else y[w]
                for k in range(ptr[i], ptr[i + 1]):
                    c = code[cur]
                    cur += 1
                    idx = index[k]
                    if c == 0:
                        if events is not None:
                            events.append(("r", i, int(idx), 0))
                        value = y[idx]
                    elif c == 3:
                        value = acc
                    elif c == 1:
                        # Same-chunk renamed read: this worker wrote it
                        # earlier, so program order is the hb edge.
                        if events is not None:
                            events.append(("r", i, int(idx), 1))
                        value = ynew[idx]
                    else:
                        flag_checks += 1
                        if events is not None:
                            # Log the acquire *before* blocking: the
                            # per-chunk order is unchanged on success,
                            # and a timed-out ladder leaves the
                            # unsatisfied acquire in the shadow log for
                            # the sanitizer to name.
                            events.append(("a", int(idx)))
                        if ready[idx]:
                            value = ynew[idx]
                        else:
                            busy_waits += 1
                            element = int(idx)
                            if observe:
                                # Blocking wait: close the running compute
                                # span, record the wait (threaded-backend
                                # tiling invariant, same span vocabulary).
                                w0 = time.perf_counter()
                                spans.append(
                                    ("compute", CAT_COMPUTE, seg_start, w0,
                                     {"pid": pid})
                                )
                                slept = ladder.wait(
                                    lambda: ready[idx], element=element
                                )
                                w1 = time.perf_counter()
                                spans.append(
                                    ("wait", CAT_WAIT, w0, w1,
                                     {"pid": pid, "element": element})
                                )
                                wait_seconds += w1 - w0
                                seg_start = w1
                            else:
                                slept = ladder.wait(
                                    lambda: ready[idx], element=element
                                )
                                wait_seconds += slept
                            if slept > 0:
                                # Past the spin rung: this stall was long
                                # enough to sleep on (the doctor's
                                # wait-escalation evidence).
                                wait_escalations += 1
                            value = ynew[idx]
                        if events is not None:
                            events.append(("r", i, int(idx), 1))
                    acc += coeff[k] * value
                ynew[w] = acc
                ready[w] = 1
                if events is not None:
                    events.append(("w", i, int(w)))
                    events.append(("p", int(w)))
                flag_sets += 1
            iterations += hi - lo
    except WaitTimeout as exc:
        if events is None:
            raise
        # Sanitizing: ship the partial shadow log home with the timeout
        # riding in the payload — the "err" path would discard the log,
        # and the log usually explains the hang better than the timeout.
        timed_out = exc

    payload: dict = {
        "wid": wid,
        "metrics": {
            "flag_checks": flag_checks,
            "flag_sets": flag_sets,
            "busy_waits": busy_waits,
            "wait_escalations": wait_escalations,
            "wait_seconds": wait_seconds,
            "iterations": iterations,
        },
    }
    if observe:
        t_end = time.perf_counter()
        spans.append(("compute", CAT_COMPUTE, seg_start, t_end, {"pid": pid}))
        spans.append(("executor", CAT_PHASE, t_phase, t_end, {"pid": pid}))
        payload["spans"] = spans
    if events is not None:
        payload["sanitize"] = {"pid": pid, "events": events}
        if timed_out is not None:
            payload["wait_timeout"] = timed_out
    return payload


def _task_gexec(sess: dict, opts: dict, wid: int) -> dict:
    """One *group round* of the group-synchronous executor.

    ``opts["glo"]:opts["ghi"]`` is one distance group: the DistancePass
    proved every cross-iteration true dependence reaches into a strictly
    earlier group (the group size is a chunk-aligned floor of the proven
    ``min_distance``), and the coordinator collects every worker between
    rounds, so all renamed reads here are already written — the per-term
    classification codes are reused, but code 2 (cross-chunk true
    dependence) becomes a direct ``ynew`` read with **no flag check** and
    no flag is ever set.  The coordinator's collect *is* the barrier;
    the shadow log records it as one ``("g", round)`` barrier generation
    per worker so the sanitizer can witness the same ordering.
    """
    v = sess["views"]
    write, ptr, index = v["write"], v["ptr"], v["index"]
    coeff, init = v["coeff"], v["init"]
    y, ynew = v["y"], v["ynew"]
    glo, ghi = opts["glo"], opts["ghi"]
    chunk, workers = opts["chunk"], opts["workers"]
    external, observe = opts["external"], opts["observe"]
    events: list | None = [] if opts.get("sanitize") else None
    pid = os.getpid()
    if observe:
        t0 = time.perf_counter()

    elided_waits = iterations = 0
    # The group is chunk-aligned, so the global chunk -> worker deal
    # (chunk c belongs to worker c % workers) restricts cleanly.
    for c in range(glo // chunk, -(-ghi // chunk)):
        if c % workers != wid:
            continue
        lo = c * chunk
        hi = min(ghi, lo + chunk)
        key = (chunk, workers, lo)
        code = sess["codes"].get(key)
        if code is None:
            code = sess["codes"][key] = _code_natural(sess, lo, hi)
        cur = 0
        for i in range(lo, hi):
            w = write[i]
            acc = init[i] if external else y[w]
            for k in range(ptr[i], ptr[i + 1]):
                cd = code[cur]
                cur += 1
                idx = index[k]
                if cd == 0:
                    if events is not None:
                        events.append(("r", i, int(idx), 0))
                    value = y[idx]
                elif cd == 3:
                    value = acc
                else:
                    # Renamed read: same-chunk program order (code 1) or
                    # a strictly earlier group (code 2, the elided wait).
                    if cd == 2:
                        elided_waits += 1
                    if events is not None:
                        events.append(("r", i, int(idx), 1))
                    value = ynew[idx]
                acc += coeff[k] * value
            ynew[w] = acc
            # Elided post: ready[w] is never written in group mode.
            if events is not None:
                events.append(("w", i, int(w)))
        iterations += hi - lo

    payload: dict = {
        "wid": wid,
        "metrics": {
            "flag_checks": 0,
            "flag_sets": 0,
            "busy_waits": 0,
            "wait_seconds": 0.0,
            "iterations": iterations,
            "sync_elisions": iterations + elided_waits,
        },
    }
    if observe:
        payload["spans"] = [
            (
                "executor",
                CAT_PHASE,
                t0,
                time.perf_counter(),
                {"pid": pid, "group_round": opts["round"]},
            )
        ]
    if events is not None:
        # Every worker logs the round barrier, share or no share — the
        # sanitizer's replay releases a generation only when *all* lanes
        # arrive.
        events.append(("b", ("g", opts["round"])))
        payload["sanitize"] = {"pid": pid, "events": events}
    return payload


def _task_post(sess: dict, opts: dict, wid: int) -> dict:
    """Phase 3: reset scratch for the written elements and publish
    ``ynew`` into ``y`` — the arrays are reusable immediately after."""
    v = sess["views"]
    write, it = v["write"], v["iter"]
    y, ynew, ready = v["y"], v["ynew"], v["ready"]
    observe = opts["observe"]
    if observe:
        t0 = time.perf_counter()
    for lo, hi in _chunk_ranges(
        sess["n"], opts["chunk"], opts["workers"], wid
    ):
        w = write[lo:hi]
        it[w] = MAXINT
        y[w] = ynew[w]
        ready[w] = 0
    payload: dict = {"wid": wid, "metrics": {}}
    if observe:
        payload["spans"] = [
            (
                "postprocessor",
                CAT_PHASE,
                t0,
                time.perf_counter(),
                {"pid": os.getpid()},
            )
        ]
    return payload


_TASKS = {
    "inspector": _task_inspector,
    "executor": _task_executor,
    "gexec": _task_gexec,
    "post": _task_post,
}


def _worker_detach(sess: dict) -> None:
    """Release one attached session: numpy views first (they export the
    mmap's buffer; closing underneath them raises ``BufferError``)."""
    sess["views"].clear()
    sess["codes"].clear()
    sess["counts"] = None
    for shm in sess["shms"]:
        shm.close()


def _worker_main(wid: int, task_q, result_q) -> None:
    """Worker process loop: attach sessions, run phase tasks, reply once
    per task.  Exceptions (including :class:`WaitTimeout`) are shipped
    back as replies — the worker survives them and keeps serving."""
    _mute_shm_tracking()
    sessions: dict[str, dict] = {}
    while True:
        msg = task_q.get()
        kind = msg[0]
        if kind == "exit":
            for sess in sessions.values():
                _worker_detach(sess)
            return
        try:
            if kind == "attach":
                _, key, meta = msg
                sessions[key] = _worker_attach(meta)
                result_q.put(("ok", wid, None))
            elif kind == "forget":
                _, key = msg
                sess = sessions.pop(key, None)
                if sess is not None:
                    _worker_detach(sess)
                result_q.put(("ok", wid, None))
            else:
                _, key, opts = msg
                payload = _TASKS[kind](sessions[key], opts, wid)
                result_q.put(("ok", wid, payload))
        except BaseException as exc:
            result_q.put(("err", wid, exc))


# ----------------------------------------------------------------------
# Main process side.
# ----------------------------------------------------------------------


class _Session:
    """One loop structure's shared-memory arena (owned by the main
    process; workers hold attached views)."""

    def __init__(self, key: str, loop: IrregularLoop):
        self.key = key
        self.n = loop.n
        self.y_size = loop.y_size
        self.terms = int(loop.reads.total_terms)
        self.dirty = False
        self.shms: dict[str, shared_memory.SharedMemory] = {}
        self.views: dict[str, np.ndarray] = {}
        for field, dtype, dim in _BLOCKS:
            count = _block_len(dim, self.n, self.y_size, self.terms)
            nbytes = max(1, count) * np.dtype(dtype).itemsize
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self.shms[field] = shm
            self.views[field] = np.ndarray(
                (count,), dtype=dtype, buffer=shm.buf
            )
        # Structure (shipped once per session) + clean scratch.
        self.views["write"][:] = loop.write
        self.views["ptr"][:] = loop.reads.ptr
        self.views["index"][:] = loop.reads.index
        self.views["iter"][:] = MAXINT
        self.views["ready"][:] = 0
        self.views["ynew"][:] = 0.0

    def meta(self) -> dict:
        return {
            "n": self.n,
            "y_size": self.y_size,
            "terms": self.terms,
            "names": {f: shm.name for f, shm in self.shms.items()},
        }

    def destroy(self) -> None:
        # Views hold exported buffers; drop them before closing the maps.
        self.views.clear()
        for shm in self.shms.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.shms.clear()


def _shutdown_pool(procs, task_qs, sessions) -> None:
    """Finalizer: stop workers, then release every shared segment."""
    for q in task_qs:
        try:
            q.put(("exit",))
        except Exception:  # pragma: no cover - queue already broken
            pass
    for p in procs:
        p.join(timeout=2.0)
        if p.is_alive():  # pragma: no cover - wedged worker
            p.terminate()
            p.join(timeout=2.0)
    for sess in list(sessions.values()):
        sess.destroy()
    sessions.clear()


class MultiprocRunner(Runner):
    """Runs the preprocessed doacross on a persistent process pool over
    shared memory (see the module docstring for the protocol).

    Parameters
    ----------
    workers:
        Pool size; also the reported processor count.
    chunk:
        Default strip-mine chunk size (§2.3); ``None`` picks
        ``ceil(n / (4 * workers))`` per run, and the per-run ``chunk``
        option overrides both.
    cache:
        Optional :class:`~repro.backends.cache.InspectorCache`; on a hit
        the cached ``iter`` array is copied straight into shared memory
        and the workers' inspector phase is skipped (Figure-3
        amortization across loop instances).
    analyze:
        ``"symbolic"``: when the symbolic engine proves the write
        subscript injective, ``iter`` is prefilled in closed form and the
        inspector phase is skipped; ``"symbolic+check"`` additionally
        cross-checks the verdict against the runtime inspector
        (:class:`~repro.errors.ProofError` on divergence).
    ladder:
        The :class:`~repro.backends.waitladder.WaitLadder` bounding every
        cross-chunk busy-wait.
    max_sessions:
        Shared-memory arenas kept alive (LRU per loop structure).

    The pool and its shared segments are released by :meth:`close` (also
    hooked to garbage collection), after which the runner may be used
    again — a fresh pool starts on demand.
    """

    name = "multiproc"

    def __init__(
        self,
        workers: int = 4,
        *,
        chunk: int | None = None,
        cache: InspectorCache | None = None,
        analyze: str | None = None,
        ladder: WaitLadder | None = None,
        max_sessions: int = 8,
    ):
        from repro.backends.vectorized import ANALYZE_MODES

        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if analyze not in ANALYZE_MODES:
            raise ValueError(
                f"unknown analyze mode {analyze!r}; expected one of "
                f"{ANALYZE_MODES}"
            )
        if max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        self.workers = workers
        self.chunk = chunk
        self.cache = cache
        self.analyze = analyze
        self.ladder = ladder if ladder is not None else DEFAULT_LADDER
        self.max_sessions = max_sessions
        methods = mp.get_all_start_methods()
        self.start_method = "fork" if "fork" in methods else methods[0]
        self._procs: list = []
        self._task_qs: list = []
        self._result_q = None
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        self._finalizer = None

    # -- pool lifecycle ------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    def _ensure_pool(self) -> None:
        if self._procs:
            return
        ctx = mp.get_context(self.start_method)
        self._result_q = ctx.Queue()
        for wid in range(self.workers):
            q = ctx.Queue()
            p = ctx.Process(
                target=_worker_main,
                args=(wid, q, self._result_q),
                name=f"repro-multiproc-{wid}",
                daemon=True,
            )
            p.start()
            self._task_qs.append(q)
            self._procs.append(p)
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._procs, self._task_qs, self._sessions
        )

    def close(self) -> None:
        """Stop the worker pool and unlink every shared segment.  Safe to
        call repeatedly; the next :meth:`run` starts a fresh pool."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._procs = []
        self._task_qs = []
        self._result_q = None
        self._sessions = OrderedDict()

    def _broadcast(self, msg: tuple) -> None:
        for q in self._task_qs:
            q.put(msg)

    def _collect(self, phase: str) -> list:
        payloads: list = [None] * self.workers
        first_err: BaseException | None = None
        timeout = self.ladder.timeout + 60.0
        for _ in range(self.workers):
            try:
                kind, wid, payload = self._result_q.get(timeout=timeout)
            except queue_mod.Empty:  # pragma: no cover - dead worker
                self.close()
                raise ReproError(
                    f"multiproc worker pool unresponsive during {phase} "
                    f"phase; pool shut down"
                ) from None
            if kind == "err":
                if first_err is None:
                    first_err = payload
            else:
                payloads[wid] = payload
        if first_err is not None:
            raise first_err
        return payloads

    # -- sessions ------------------------------------------------------
    def _session_for(self, loop: IrregularLoop) -> _Session:
        key = loop_fingerprint(loop)
        sess = self._sessions.get(key)
        if sess is not None:
            self._sessions.move_to_end(key)
            return sess
        while len(self._sessions) >= self.max_sessions:
            _, old = self._sessions.popitem(last=False)
            self._broadcast(("forget", old.key))
            self._collect("forget")
            old.destroy()
        sess = _Session(key, loop)
        self._broadcast(("attach", key, sess.meta()))
        self._collect("attach")
        self._sessions[key] = sess
        return sess

    # -- the run -------------------------------------------------------
    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Execute ``loop`` on the process pool; see the module docstring.

        ``chunk`` sets the strip-mine chunk size.  ``schedule`` is ignored
        (iteration assignment is always chunked round-robin — the
        deadlock-freedom precondition); ``trace`` is ignored (no simulated
        timeline; use ``observe=True`` for wall-clock spans).  Both are
        recorded in ``result.extras["ignored_options"]`` when passed.
        """
        if order is not None:
            order = np.asarray(order, dtype=np.int64)
            validate_execution_order(loop, order)

        t0 = time.perf_counter()
        verdict = None
        elide = False
        if self.analyze is not None:
            from repro.analysis import analyze_loop

            verdict = analyze_loop(loop)
            elide = verdict.write_injective
            if self.analyze == "symbolic+check":
                from repro.analysis import cross_check

                cross_check(loop, verdict, strict=True)
        record, hit = None, False
        if self.cache is not None:
            record, hit = self.cache.get_or_build(loop)

        self._ensure_pool()
        sess = self._session_for(loop)
        rec = self._obs_recorder
        met = self._obs_metrics
        observe = rec is not None

        n = loop.n
        c_size = chunk if chunk is not None else self.chunk
        if c_size is None:
            c_size = max(1, -(-n // (4 * self.workers)))
        c_size = int(c_size)

        if sess.dirty:
            # A previous run died mid-protocol (WaitTimeout): the normal
            # postprocess reset never ran, so scrub the scratch wholesale.
            sess.views["iter"][:] = MAXINT
            sess.views["ready"][:] = 0
        sess.dirty = True

        # Per-run values into shared memory (structure is already there).
        sess.views["y"][:] = loop.y0
        if sess.terms:
            sess.views["coeff"][:] = loop.reads.coeff
        external = loop.init_kind == INIT_EXTERNAL
        if external:
            sess.views["init"][:] = loop.init_values
        if order is not None:
            sess.views["order"][:] = order

        san = self._san_capture
        opts = {
            "chunk": c_size,
            "workers": self.workers,
            "has_order": order is not None,
            "external": external,
            "observe": observe,
            "ladder": self.ladder,
            "sanitize": san is not None,
        }

        # Phase 1: inspector — prefilled from the cache or the symbolic
        # proof (both yield the canonical iter contents), else parallel.
        prefilled = record is not None or elide
        if prefilled:
            t_ins = time.perf_counter()
            if record is not None:
                sess.views["iter"][:] = record.iter_array
            else:
                sess.views["iter"][loop.write] = np.arange(
                    n, dtype=np.int64
                )
            if rec is not None:
                rec.record(
                    "inspector", CAT_PHASE, t_ins, rec.now(), lane=0,
                    cache_hit=bool(hit), elided=elide,
                )
        else:
            self._broadcast(("inspector", sess.key, opts))
            self._apply(self._collect("inspector"), rec, met)

        # Group-synchronous elision (DistancePass): natural order only,
        # and the group must be a chunk-aligned multiple so the global
        # chunk -> worker deal restricts cleanly to each group window.
        group = self._group_sync if order is None else None
        if group is not None and (group < c_size or group % c_size):
            group = None

        if group is not None:
            # Phase 2 (group mode): one round per distance group; the
            # collect between rounds is the group barrier.  No flags.
            n_groups = -(-n // group) if n else 0
            for gk in range(n_groups):
                gopts = dict(
                    opts,
                    glo=gk * group,
                    ghi=min(n, (gk + 1) * group),
                    round=gk,
                )
                self._broadcast(("gexec", sess.key, gopts))
                payloads = self._collect("gexec")
                self._apply(payloads, rec, met)
                if san is not None:
                    for payload in payloads:
                        if payload is None:
                            continue
                        blob = payload.get("sanitize")
                        if blob is not None:
                            san.ingest(
                                payload["wid"], blob["events"],
                                pid=blob["pid"],
                            )
            if met is not None:
                met.count("group_barriers", n_groups)
        else:
            # Phase 2: executor.  On WaitTimeout the session stays dirty
            # and is scrubbed on the next run; the pool itself survives.
            self._broadcast(("executor", sess.key, opts))
            payloads = self._collect("executor")
            self._apply(payloads, rec, met)
            if san is not None:
                timeout_exc: WaitTimeout | None = None
                for payload in payloads:
                    if payload is None:
                        continue
                    blob = payload.get("sanitize")
                    if blob is not None:
                        san.ingest(
                            payload["wid"], blob["events"], pid=blob["pid"]
                        )
                    if timeout_exc is None:
                        timeout_exc = payload.get("wait_timeout")
                if timeout_exc is not None:
                    # Same contract as the unsanitized "err" path: the
                    # post phase never runs, the session stays dirty and
                    # is scrubbed wholesale by the next run.
                    raise timeout_exc

        # Phase 3: postprocess/reset — scratch reusable afterwards.
        self._broadcast(("post", sess.key, opts))
        self._apply(self._collect("post"), rec, met)
        sess.dirty = False

        y = sess.views["y"].copy()
        wall = time.perf_counter() - t0

        cm = CostModel()
        result = RunResult(
            loop_name=loop.name,
            strategy="multiproc-doacross",
            processors=self.workers,
            y=y,
            total_cycles=0,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            schedule=f"chunked({c_size} x {self.workers} workers)",
            wall_seconds=wall,
        )
        result.extras["chunk"] = c_size
        result.extras["workers"] = self.workers
        result.extras["start_method"] = self.start_method
        if group is not None:
            result.extras["distance_group"] = int(group)
        if self.cache is not None:
            stats = self.cache.stats()
            result.extras["cache_hit"] = hit
            result.extras["cache_hits_total"] = stats["hits"]
            result.extras["cache_misses_total"] = stats["misses"]
        if self.analyze is not None:
            result.extras["analyze"] = self.analyze
            result.extras["inspector_elided"] = elide
            if verdict is not None:
                result.extras["verdict"] = verdict.kind
                if verdict.distance is not None:
                    result.extras["verdict_distance"] = int(verdict.distance)
        if met is not None:
            met.gauge("workers", self.workers)
            met.gauge("chunk", c_size)
            if prefilled:
                met.count("inspector_iterations", 0)
            if self.cache is not None:
                met.count("inspector_cache_hits", 1 if hit else 0)
                met.count("inspector_cache_misses", 0 if hit else 1)
            if self.analyze is not None:
                met.count("inspector_elisions", 1 if elide else 0)

        ignored = {}
        if schedule is not None:
            ignored["schedule"] = (
                schedule,
                "the multiproc backend always assigns contiguous chunks "
                "round-robin (deadlock-freedom precondition, DESIGN.md "
                "§6); use chunk= to size the strips",
            )
        if trace:
            ignored["trace"] = (
                True,
                "no simulated timeline exists on real processes; use "
                "observe=True for wall-clock spans",
            )
        note_ignored_options(result, self.name, **ignored)
        return result

    @staticmethod
    def _apply(payloads: list, rec, met) -> None:
        """Merge worker phase payloads into the session telemetry."""
        for payload in payloads:
            if payload is None:
                continue
            if met is not None:
                for name, value in payload["metrics"].items():
                    met.count(name, value)
            if rec is not None:
                for name, cat, s0, s1, attrs in payload.get("spans", ()):
                    rec.record(
                        name, cat, s0, s1, lane=payload["wid"], **attrs
                    )
