"""Shared backend infrastructure: the :class:`Runner` protocol and order
validation helpers.

Every execution backend — simulated, threaded, vectorized — implements the
same small surface::

    runner.run(loop, *, order=None, schedule=None, chunk=None, trace=False)
        -> RunResult

so strategy-level code (:class:`~repro.core.doacross.PreprocessedDoacross`,
:func:`~repro.core.doacross.parallelize`, the benchmarks) can swap backends
without caring whether time is simulated cycles or measured wall clock.
Options a backend cannot honor (e.g. ``schedule`` on the vectorized
backend, which has no per-processor schedules) are documented as ignored by
that backend rather than rejected, so callers can sweep backends with one
option set.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ScheduleError
from repro.ir.analysis import dependence_pairs
from repro.ir.loop import IrregularLoop

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.results import RunResult
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanRecorder
    from repro.sanitize.shadow import ShadowCapture

__all__ = [
    "Runner",
    "validate_execution_order",
    "inverse_permutation",
    "note_ignored_options",
]


class Runner(abc.ABC):
    """Uniform execution interface over all backends.

    Subclasses execute an :class:`~repro.ir.loop.IrregularLoop` with exact
    sequential semantics (the library's central contract) and return a
    :class:`~repro.core.results.RunResult`.  All options are keyword-only:

    - ``order`` — optional doconsider execution order; must be validated
      against the loop's true dependencies (illegal orders raise
      :class:`~repro.errors.ScheduleError` before anything runs).
    - ``schedule`` / ``chunk`` — executor iteration schedule, where the
      backend has one (``None`` means the backend default).
    - ``trace`` — request an execution timeline where supported.
    """

    #: Short identifier used by the ``backend=`` selector and in reports.
    name: str = "runner"

    #: Telemetry hooks: an :class:`~repro.obs.instrument.InstrumentedRunner`
    #: attaches a span recorder and a metrics registry here for the
    #: duration of one ``run``; backends emit phase/level/wait spans and
    #: unified metrics when (and only when) these are set.  ``None`` means
    #: unobserved — the hot paths stay hook-free.
    _obs_recorder: "SpanRecorder | None" = None
    _obs_metrics: "MetricsRegistry | None" = None

    #: Sanitizer hook: a :class:`~repro.sanitize.runner.SanitizingRunner`
    #: attaches a :class:`~repro.sanitize.shadow.ShadowCapture` here for
    #: the duration of one ``run``; backends append shadow-access and
    #: synchronization events to per-lane logs when (and only when) this
    #: is set.  ``None`` means unsanitized — again, hook-free hot paths.
    _san_capture: "ShadowCapture | None" = None

    #: Distance-elision hook: :func:`~repro.passes.execute.execute_plan`
    #: attaches the proven synchronization group size here when the
    #: :class:`~repro.passes.distance.DistancePass` certified that every
    #: cross-iteration true dependence reaches back at least this many
    #: iterations.  Backends that understand it run group-synchronously
    #: (one barrier per group instead of per-element post/wait flags);
    #: ``None`` means the standard protocol.
    _group_sync: "int | None" = None

    @abc.abstractmethod
    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Execute ``loop`` and return its :class:`RunResult`."""
        raise NotImplementedError


def note_ignored_options(
    result: RunResult, backend: str, **ignored: tuple
) -> None:
    """Record run options a backend received but cannot honor.

    The module contract (see the module docstring) is that unsupported
    options are *documented as ignored* rather than rejected, so callers
    can sweep one option set across backends.  That must not mean the drop
    is invisible: each ``option=(value, reason)`` pair lands as a
    structured note in ``result.extras["ignored_options"]``, which
    :func:`~repro.core.serialize.result_to_dict` surfaces in ``--json``
    output — the caller can always find out what was silently discarded.

    Callers pass only options that were actually set to a non-default
    value; this helper never second-guesses defaults.
    """
    if not ignored:
        return
    notes = result.extras.setdefault("ignored_options", [])
    for option, (value, reason) in ignored.items():
        safe = (
            value
            if value is None or isinstance(value, (bool, int, float, str))
            else repr(value)
        )
        notes.append(
            {
                "backend": backend,
                "option": option,
                "value": safe,
                "reason": reason,
            }
        )


def inverse_permutation(order: np.ndarray) -> np.ndarray:
    """Positions: ``pos[order[p]] = p``.  Validates that ``order`` is a
    permutation of ``0..n-1``."""
    order = np.asarray(order, dtype=np.int64)
    n = len(order)
    pos = np.full(n, -1, dtype=np.int64)
    in_range = (order >= 0) & (order < n)
    if not in_range.all():
        raise ScheduleError("execution order contains out-of-range entries")
    pos[order] = np.arange(n, dtype=np.int64)
    if np.any(pos < 0):
        raise ScheduleError("execution order is not a permutation")
    return pos


def validate_execution_order(
    loop: IrregularLoop, order: np.ndarray
) -> np.ndarray:
    """Check that ``order`` is a legal doacross execution order for ``loop``.

    Legality (DESIGN.md §6): every *true* dependence edge must point backward
    in execution order — the writer's position precedes the reader's.
    Antidependencies impose no constraint (the ``ynew`` renaming removed
    them), which is precisely why doconsider reordering is allowed to ignore
    them.

    Returns the inverse permutation (position of each original iteration).
    Raises :class:`~repro.errors.ScheduleError` on violation — running such
    an order would deadlock the busy-wait executor.
    """
    pos = inverse_permutation(order)
    pairs = dependence_pairs(loop)
    if len(pairs):
        bad = pos[pairs[:, 0]] >= pos[pairs[:, 1]]
        if bad.any():
            k = int(np.nonzero(bad)[0][0])
            w, r = int(pairs[k, 0]), int(pairs[k, 1])
            raise ScheduleError(
                f"execution order violates true dependence {w} → {r}: "
                f"writer at position {int(pos[w])}, reader at position "
                f"{int(pos[r])}; the busy-wait executor would deadlock"
            )
    return pos
