"""A :class:`Runner` decorator that statically validates before running.

``ValidatingRunner`` wraps any backend and, on every :meth:`run`, first
feeds the loop through the lint driver and the happens-before race
checker for the wrapped backend's schedule.  A race — a true dependence
edge the schedule does not order — aborts the run with
:class:`~repro.errors.RaceConditionError` *before* any value is computed;
otherwise the run proceeds and the findings ride along in
``result.extras["lint"]`` / ``result.extras["race_check"]``.

This is the ``validate="static"`` path of
:func:`~repro.backends.make_runner` and
:func:`~repro.core.doacross.parallelize`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.base import Runner
from repro.errors import RaceConditionError
from repro.ir.loop import IrregularLoop

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.results import RunResult

__all__ = ["ValidatingRunner"]

#: Backends the race checker has a happens-before model for; anything
#: else (custom Runner subclasses) is checked against the level model,
#: which is the weakest order every wavefront-respecting backend refines.
_MODELED = ("vectorized", "threaded", "multiproc", "simulated")


def _innermost(runner: Runner) -> Runner:
    """Unwrap decorator runners (instrumented, validating) to the backend
    that actually executes.  Validation must target *that* backend's
    schedule even when the wrappers are composed in either order —
    ``ValidatingRunner(InstrumentedRunner(x))`` works the same as
    ``InstrumentedRunner(ValidatingRunner(x))``."""
    seen: set[int] = set()
    while hasattr(runner, "inner") and id(runner) not in seen:
        seen.add(id(runner))
        runner = runner.inner  # type: ignore[attr-defined]
    return runner


class ValidatingRunner(Runner):
    """Run ``inner`` only after the static checks pass."""

    def __init__(self, inner: Runner):
        self.inner = inner
        self.name = f"validating({inner.name})"

    def _processors(self) -> int:
        inner = _innermost(self.inner)
        if hasattr(inner, "threads"):
            return int(inner.threads)
        if hasattr(inner, "workers"):
            return int(inner.workers)
        if hasattr(inner, "machine"):
            return int(inner.machine.processors)
        return 16

    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        from repro.lint.driver import run_lints
        from repro.lint.hb import check_backend_schedule

        target = _innermost(self.inner)
        backend = target.name if target.name in _MODELED else "vectorized"
        kind = schedule if isinstance(schedule, str) else None
        diagnostics = run_lints(
            loop,
            schedule=kind,
            chunk=1 if chunk is None else chunk,
            processors=self._processors(),
        )
        report = check_backend_schedule(
            loop,
            backend,
            processors=self._processors(),
            schedule=schedule,
            chunk=1 if chunk is None else chunk,
            order=order,
        )
        if not report.passed:
            raise RaceConditionError(report)
        result = self.inner.run(
            loop, order=order, schedule=schedule, chunk=chunk, trace=trace
        )
        result.extras["lint"] = [d.as_dict() for d in diagnostics]
        result.extras["race_check"] = report.as_dict()
        return result
