"""The simulated backend: phases of the preprocessed doacross on the
discrete-event machine.

This module is where the paper's Figure 3 (pre/postprocessing) and Figure 5
(transformed executor) become executable.  Each run produces *both* the
correct values (the executor really reads ``iter``, really resolves each
term against the old/new arrays) and the simulated timing (every action is
charged to the issuing processor's clock; busy-waits park the processor).

Phase structure of a full preprocessed doacross (barriers between phases and
after the last one, since the construct must complete before code after the
loop runs)::

    inspector  | barrier | executor | barrier | postprocessor | barrier

The strip-mined variant (§2.3) repeats that pipeline per block; the linear
variant (§2.3) drops the inspector phase entirely.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Runner, validate_execution_order
from repro.core.results import PhaseBreakdown, RunResult
from repro.core.sequential import sequential_time
from repro.core.workspace import MAXINT, DoacrossWorkspace
from repro.errors import InvalidLoopError
from repro.ir.analysis import (
    CAT_ANTI,
    CAT_TRUE,
    classify_reads,
    uniform_distance,
)
from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.ir.subscript import AffineSubscript
from repro.machine.engine import RES_BUS, RES_DISPATCH, Machine
from repro.machine.flags import FlagStore
from repro.machine.ops import Compute, SetFlag, UseResource, WaitFlag
from repro.machine.scheduler import (
    IterationSchedule,
    StaticBlockSchedule,
    make_schedule,
)
from repro.machine.stats import PhaseStats

__all__ = ["SimulatedRunner"]


class SimulatedRunner(Runner):
    """Runs transformed loops on a :class:`~repro.machine.engine.Machine`.

    Parameters
    ----------
    machine:
        The simulated multiprocessor.
    workspace:
        Optional shared :class:`DoacrossWorkspace`; passing one across runs
        exercises the paper's scratch-array reuse (postprocessing must leave
        it pristine — tested).
    """

    name = "simulated"

    def __init__(
        self, machine: Machine, workspace: DoacrossWorkspace | None = None
    ):
        self.machine = machine
        self.workspace = workspace if workspace is not None else DoacrossWorkspace()

    # ------------------------------------------------------------------
    # The uniform Runner entry point
    # ------------------------------------------------------------------
    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
        linear: bool = False,
        order_label: str = "natural",
    ) -> RunResult:
        """The :class:`~repro.backends.base.Runner` interface: the full
        preprocessed pipeline (or the §2.3 ``linear`` variant) on the
        simulated machine.  Equivalent to :meth:`run_preprocessed` with
        backend-default schedule/chunk where ``None``."""
        return self.run_preprocessed(
            loop,
            schedule=schedule,
            chunk=1 if chunk is None else chunk,
            order=order,
            linear=linear,
            order_label=order_label,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _checkout_workspace(self, loop: IrregularLoop) -> DoacrossWorkspace:
        """Size the shared workspace for ``loop`` and verify it is clean.

        The executor trusts ``iter[off] == MAXINT`` to mean "never
        written"; a stale entry from a run whose postprocessing was skipped
        would silently misclassify reads.  Failing loudly here turns that
        corruption into a diagnosable error.
        """
        ws = self.workspace
        ws.ensure_size(loop.y_size)
        if not ws.is_clean():
            dirty = ws.dirty_indices()
            raise InvalidLoopError(
                f"workspace is dirty at {len(dirty)} element(s) (first: "
                f"{int(dirty[0])}); a previous doacross was not "
                f"postprocessed — scratch reuse requires the Figure-3 "
                f"reset discipline"
            )
        ws.invocations += 1
        return ws

    def _resolve_schedule(
        self, spec, n: int, chunk: int = 1
    ) -> IterationSchedule:
        if isinstance(spec, IterationSchedule):
            if spec.n != n:
                raise InvalidLoopError(
                    f"schedule covers {spec.n} iterations, loop has {n}"
                )
            spec.reset()
            return spec
        kind = "cyclic" if spec is None else spec
        return make_schedule(kind, n, self.machine.processors, chunk=chunk)

    def _uniform_phase(
        self, name: str, n: int, per_iter_cost: int, accesses_per_iter: int
    ) -> PhaseStats:
        """Simulate a regular ``parallel do`` (Figure 3's pre/post loops):
        static block partition, cost charged per chunk."""
        machine = self.machine
        schedule = StaticBlockSchedule(n, machine.processors)
        bus = machine.bus
        bus_per_access = machine.cost_model.bus_per_access

        def factory_for(proc: int):
            chunks = schedule.chunks_for(proc)

            def task(st):
                for lo, hi in chunks:
                    count = hi - lo
                    st.iterations += count
                    if bus:
                        yield UseResource(
                            RES_BUS, count * accesses_per_iter * bus_per_access
                        )
                    yield Compute(count * per_iter_cost)

            return task

        engine = machine.new_engine()
        return engine.run(name, [factory_for(p) for p in range(machine.processors)])

    def _weighted_phase(
        self, name: str, costs: np.ndarray, accesses: np.ndarray | None = None
    ) -> PhaseStats:
        """Simulate a ``parallel do`` whose iterations have *varying* costs
        (static block partition; per-chunk aggregation)."""
        machine = self.machine
        n = len(costs)
        schedule = StaticBlockSchedule(n, machine.processors)
        bus = machine.bus
        bus_per_access = machine.cost_model.bus_per_access

        def factory_for(proc: int):
            chunks = schedule.chunks_for(proc)

            def task(st):
                for lo, hi in chunks:
                    st.iterations += hi - lo
                    if bus and accesses is not None:
                        yield UseResource(
                            RES_BUS,
                            int(accesses[lo:hi].sum()) * bus_per_access,
                        )
                    yield Compute(int(costs[lo:hi].sum()))

            return task

        engine = machine.new_engine()
        return engine.run(name, [factory_for(p) for p in range(machine.processors)])

    def run_wavefront_preprocessing(
        self, loop: IrregularLoop, graph, level_schedule
    ) -> tuple[int, list[PhaseStats]]:
        """Simulate the doconsider wavefront computation as machine phases.

        The parallel frontier-peeling algorithm (reference [4]): an
        in-degree initialization pass (touch every iteration and its
        incoming edges), then one round per level — each round's processors
        emit the current frontier and decrement its out-edges, with a
        barrier per round.  Load *imbalance within rounds* is captured
        (unlike the closed-form estimate in
        :func:`repro.core.doconsider.modeled_reorder_cycles`, which
        divides work evenly).

        Returns ``(total_cycles, phases)``; total includes per-round
        barriers.
        """
        cm = self.machine.cost_model
        phases: list[PhaseStats] = []
        barrier = cm.barrier(self.machine.processors)

        in_deg = graph.in_degrees()
        init_costs = cm.pre_iter * (1 + in_deg)
        init = self._weighted_phase("wf-init", init_costs, 1 + in_deg)
        phases.append(init)
        total = init.span + barrier

        out_deg = graph.out_degrees()
        for k in range(level_schedule.n_levels):
            members = level_schedule.order[
                level_schedule.level_ptr[k] : level_schedule.level_ptr[k + 1]
            ]
            costs = cm.pre_iter * (1 + out_deg[members])
            round_phase = self._weighted_phase(
                f"wf-round-{k}", costs, 1 + out_deg[members]
            )
            phases.append(round_phase)
            total += round_phase.span + barrier
        return total, phases

    # ------------------------------------------------------------------
    # Executor phase
    # ------------------------------------------------------------------
    def _executor_phase(
        self,
        loop: IrregularLoop,
        schedule: IterationSchedule,
        order: np.ndarray | None,
        writers_flat: np.ndarray | None,
        y: np.ndarray,
        ynew: np.ndarray,
        iter_arr: np.ndarray,
        flags: FlagStore,
        positions: tuple[int, int] | None = None,
        tracer=None,
    ) -> PhaseStats:
        """Run the Figure-5 executor.

        ``writers_flat`` (linear variant): precomputed closed-form writer per
        flat read term, with :data:`MAXINT` for "never written" — the inlined
        ``(off − d) mod c`` test of §2.3.  When ``None``, the executor reads
        the ``iter`` array the inspector filled (the general mechanism).

        ``positions`` restricts execution to a slice of positions (used by
        the strip-mined variant); the schedule must already cover exactly
        that many positions.
        """
        machine = self.machine
        cm = machine.cost_model
        write = loop.write
        ptr, r_idx, r_coeff = loop.reads.ptr, loop.reads.index, loop.reads.coeff
        external = loop.init_kind == INIT_EXTERNAL
        init_values = loop.init_values
        base = 0 if positions is None else positions[0]

        work = cm.effective_work(loop.work)
        iter_overhead = cm.exec_iter_overhead + work.overhead
        dep_check_setup = cm.dep_check + work.term_setup
        term_consume = work.term_consume
        dispatch_cost = cm.dispatch
        bus = machine.bus
        bus_per_access = cm.bus_per_access
        dynamic = schedule.is_dynamic
        use_linear = writers_flat is not None
        coherence = machine.coherence
        coherence_miss = cm.coherence_miss
        # Write-invalidate ownership: which processor's cache holds each
        # renamed element (-1 = none yet).
        owner = (
            np.full(loop.y_size, -1, dtype=np.int32) if coherence else None
        )

        san = self._san_capture

        def run_body(st, lo: int, hi: int):
            """Execute positions ``lo..hi`` (generator; yields engine ops)."""
            events = None if san is None else san.lane(st.proc)
            pending = 0
            for p in range(lo, hi):
                i = p if order is None else order[p]
                w = write[i]
                pending += iter_overhead
                acc = init_values[i] if external else y[w]
                if bus:
                    n_terms = ptr[i + 1] - ptr[i]
                    yield UseResource(
                        RES_BUS, int(2 + n_terms) * bus_per_access
                    )
                for k in range(ptr[i], ptr[i + 1]):
                    idx = r_idx[k]
                    # Offset computation, iter load, compare — all done
                    # before (or while) any wait.
                    pending += dep_check_setup
                    writer = writers_flat[k] if use_linear else iter_arr[idx]
                    if writer == i:
                        value = acc  # intra-iteration: the live accumulator
                    elif writer < i:
                        # True dependence: busy-wait for the writer, then
                        # read the renamed (new) value.
                        if pending:
                            yield Compute(pending)
                            pending = 0
                        yield WaitFlag(int(idx))
                        if events is not None:
                            events.append(("a", int(idx)))
                            events.append(("r", int(i), int(idx), 1))
                        value = ynew[idx]
                        if coherence and owner[idx] != st.proc:
                            # Invalidation miss: the line is dirty in the
                            # writer's cache; pay the transfer.
                            pending += coherence_miss
                            st.coherence_misses += 1
                            owner[idx] = st.proc
                    else:
                        # Antidependence or never written: old value, no wait.
                        if events is not None:
                            events.append(("r", int(i), int(idx), 0))
                        value = y[idx]
                    acc += r_coeff[k] * value
                    pending += term_consume
                ynew[w] = acc
                if coherence:
                    owner[w] = st.proc
                if pending:
                    yield Compute(pending)
                    pending = 0
                if events is not None:
                    events.append(("w", int(i), int(w)))
                    events.append(("p", int(w)))
                yield SetFlag(int(w))
                st.iterations += 1

        def factory_for(proc: int):
            if dynamic:

                def task(st):
                    while True:
                        yield UseResource(RES_DISPATCH, dispatch_cost)
                        st.dispatches += 1
                        claim = schedule.claim()
                        if claim is None:
                            return
                        yield from run_body(st, base + claim[0], base + claim[1])

            else:
                chunks = schedule.chunks_for(proc)

                def task(st):
                    for lo, hi in chunks:
                        yield from run_body(st, base + lo, base + hi)

            return task

        engine = machine.new_engine(flags=flags, tracer=tracer)
        return engine.run(
            "executor", [factory_for(p) for p in range(machine.processors)]
        )

    # ------------------------------------------------------------------
    # Full preprocessed doacross (paper §2.1–§2.2, plus §2.3 linear variant)
    # ------------------------------------------------------------------
    def run_preprocessed(
        self,
        loop: IrregularLoop,
        schedule=None,
        chunk: int = 1,
        order: np.ndarray | None = None,
        linear: bool = False,
        order_label: str = "natural",
        trace: bool = False,
    ) -> RunResult:
        """Inspector + executor + postprocessor on the simulated machine.

        Parameters
        ----------
        schedule:
            Executor schedule: an :class:`IterationSchedule`, a kind string
            (``"block"``/``"cyclic"``/``"dynamic"``/``"guided"``), or
            ``None`` for the default cyclic chunk-1 schedule.
        order:
            Optional execution order (doconsider); validated against the
            loop's true dependencies.
        linear:
            Use the §2.3 linear-subscript variant: requires an affine write
            subscript; skips the inspector phase and the ``iter`` array.
        trace:
            Record a per-processor timeline of the *executor* phase; the
            :class:`~repro.machine.trace.Tracer` lands in
            ``result.extras["trace"]`` (render with ``.gantt()``).
        """
        machine = self.machine
        cm = machine.cost_model
        n = loop.n

        if order is not None:
            order = np.asarray(order, dtype=np.int64)
            validate_execution_order(loop, order)

        writers_flat = None
        if linear:
            sub = loop.write_subscript
            if not isinstance(sub, AffineSubscript):
                raise InvalidLoopError(
                    "linear variant requires a statically affine write "
                    f"subscript, got {type(sub).__name__}"
                )
            writers = sub.writer_of_many(loop.reads.index, n)
            writers_flat = np.where(writers < 0, MAXINT, writers)

        ws = self._checkout_workspace(loop)
        iter_arr = ws.iter_arr
        ynew = ws.ynew
        y = loop.y0.copy()
        flags = FlagStore(loop.y_size)
        exec_schedule = self._resolve_schedule(schedule, n, chunk=chunk)

        phases: list[PhaseStats] = []
        breakdown = PhaseBreakdown()

        # --- inspector: parallel do i: iter(a(i)) = i (Figure 3, left) ---
        if not linear:
            pre = self._uniform_phase("inspector", n, cm.pre_iter, 1)
            iter_arr[loop.write] = np.arange(n, dtype=np.int64)
            phases.append(pre)
            breakdown.inspector = pre.span

        # --- executor (Figure 5) ---
        tracer = None
        if trace:
            from repro.machine.trace import Tracer

            tracer = Tracer()
        exec_phase = self._executor_phase(
            loop,
            exec_schedule,
            order,
            writers_flat,
            y,
            ynew,
            iter_arr,
            flags,
            tracer=tracer,
        )
        phases.append(exec_phase)
        breakdown.executor = exec_phase.span

        # --- postprocessor: reset iter/ready, copy ynew back (Figure 3) ---
        post = self._uniform_phase("postprocessor", n, cm.post_iter, 3)
        iter_arr[loop.write] = MAXINT
        y[loop.write] = ynew[loop.write]
        phases.append(post)
        breakdown.postprocessor = post.span

        barrier = cm.barrier(machine.processors)
        breakdown.barriers = barrier * len(phases)

        result = RunResult(
            loop_name=loop.name,
            strategy="linear-doacross" if linear else "preprocessed-doacross",
            processors=machine.processors,
            y=y,
            total_cycles=breakdown.total,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            phases=phases,
            breakdown=breakdown,
            wait_cycles=exec_phase.total_wait,
            schedule=_describe_schedule(exec_schedule),
            order_label=order_label,
        )
        if tracer is not None:
            result.extras["trace"] = tracer
        return result

    # ------------------------------------------------------------------
    # Amortized-inspector variant (repeated loop instances)
    # ------------------------------------------------------------------
    def run_amortized(
        self,
        loop: IrregularLoop,
        instances: int,
        schedule=None,
        chunk: int = 1,
        order: np.ndarray | None = None,
        order_label: str = "natural",
        rhs_sequence=None,
    ) -> RunResult:
        """Run ``instances`` successive executions of ``loop`` with the
        inspector amortized across all of them.

        The classic inspector/executor optimization for the paper's own
        workload: a triangular solve re-executes every Krylov iteration
        with *unchanged subscripts*, so ``iter`` stays valid — only the
        executor and a reduced postprocessor (reset ``ready``, copy
        ``ynew → y``; one store fewer than Figure 3's) run per instance.
        The final instance runs the full postprocessor so the workspace is
        returned pristine.

        Each instance reads the previous instance's output in ``y`` —
        semantically a sequential composition of ``instances`` runs of the
        loop (tested against iterating the oracle).

        Parameters
        ----------
        rhs_sequence:
            For external-init loops, an optional sequence of per-instance
            ``init_values`` arrays (length ``instances``); ``None`` reuses
            the loop's own values every time.
        """
        if instances < 1:
            raise InvalidLoopError(
                f"need at least one instance, got {instances}"
            )
        if rhs_sequence is not None:
            if loop.init_kind != INIT_EXTERNAL:
                raise InvalidLoopError(
                    "rhs_sequence requires an external-init loop"
                )
            rhs_sequence = [
                np.ascontiguousarray(r, dtype=np.float64)
                for r in rhs_sequence
            ]
            if len(rhs_sequence) != instances:
                raise InvalidLoopError(
                    f"rhs_sequence has {len(rhs_sequence)} entries for "
                    f"{instances} instances"
                )
            for k, r in enumerate(rhs_sequence):
                if r.shape != (loop.n,):
                    raise InvalidLoopError(
                        f"rhs_sequence[{k}] has shape {r.shape}, expected "
                        f"({loop.n},)"
                    )

        machine = self.machine
        cm = machine.cost_model
        n = loop.n
        if order is not None:
            order = np.asarray(order, dtype=np.int64)
            validate_execution_order(loop, order)

        ws = self._checkout_workspace(loop)
        iter_arr = ws.iter_arr
        ynew = ws.ynew
        y = loop.y0.copy()
        exec_schedule = self._resolve_schedule(schedule, n, chunk=chunk)

        phases_acc: dict[str, PhaseStats] = {}
        breakdown = PhaseBreakdown()
        total_wait = 0

        # Inspector: once for all instances.
        pre = self._uniform_phase("inspector", n, cm.pre_iter, 1)
        iter_arr[loop.write] = np.arange(n, dtype=np.int64)
        breakdown.inspector = pre.span
        _merge_phase(phases_acc, pre)
        barriers = 1

        working = loop
        for k in range(instances):
            if rhs_sequence is not None:
                working = loop.with_name(loop.name)
                working.init_values = rhs_sequence[k]
            exec_schedule.reset()
            flags = FlagStore(loop.y_size)
            exec_phase = self._executor_phase(
                working,
                exec_schedule,
                order,
                None,
                y,
                ynew,
                iter_arr,
                flags,
            )
            breakdown.executor += exec_phase.span
            total_wait += exec_phase.total_wait
            _merge_phase(phases_acc, exec_phase)
            barriers += 1

            last = k == instances - 1
            post_cost = cm.post_iter if last else cm.post_iter_amortized
            post = self._uniform_phase(
                "postprocessor", n, post_cost, 3 if last else 2
            )
            y[loop.write] = ynew[loop.write]
            if last:
                iter_arr[loop.write] = MAXINT
            breakdown.postprocessor += post.span
            _merge_phase(phases_acc, post)
            barriers += 1

        breakdown.barriers = barriers * cm.barrier(machine.processors)

        return RunResult(
            loop_name=loop.name,
            strategy="amortized-doacross",
            processors=machine.processors,
            y=y,
            total_cycles=breakdown.total,
            sequential_cycles=instances * sequential_time(loop, cm),
            cost_model=cm,
            phases=list(phases_acc.values()),
            breakdown=breakdown,
            wait_cycles=total_wait,
            schedule=_describe_schedule(exec_schedule),
            order_label=order_label,
            extras={
                "instances": instances,
                "inspector_runs": 1,
            },
        )

    # ------------------------------------------------------------------
    # Strip-mined variant (paper §2.3)
    # ------------------------------------------------------------------
    def run_stripmined(
        self,
        loop: IrregularLoop,
        block: int,
        schedule_kind: str = "cyclic",
        chunk: int = 1,
    ) -> RunResult:
        """Sequential outer loop over blocks of ``block`` iterations, each
        block a preprocessed doacross; scratch arrays reused per block.

        Reads whose writer lies in an earlier block find ``iter`` already
        reset (the earlier block's postprocessor copied its results into
        ``y``), so they take the no-wait old-value path and still see the
        *updated* value — the §2.3 design makes cross-block dependencies
        free of synchronization by construction.
        """
        if block < 1:
            raise InvalidLoopError(f"strip-mine block must be >= 1, got {block}")
        machine = self.machine
        cm = machine.cost_model
        n = loop.n

        ws = self._checkout_workspace(loop)
        iter_arr = ws.iter_arr
        ynew = ws.ynew
        y = loop.y0.copy()

        phases_acc: dict[str, PhaseStats] = {}
        breakdown = PhaseBreakdown()
        total_wait = 0
        n_blocks = 0
        max_write_span = 0

        for lo in range(0, n, block):
            hi = min(lo + block, n)
            count = hi - lo
            n_blocks += 1
            block_write = loop.write[lo:hi]
            if count:
                span = int(block_write.max()) - int(block_write.min()) + 1
                max_write_span = max(max_write_span, span)

            # Inspector over the block only.
            pre = self._uniform_phase("inspector", count, cm.pre_iter, 1)
            iter_arr[block_write] = np.arange(lo, hi, dtype=np.int64)
            breakdown.inspector += pre.span
            _merge_phase(phases_acc, pre)

            # Executor over the block's positions.
            flags = FlagStore(loop.y_size)
            sched = make_schedule(
                schedule_kind, count, machine.processors, chunk=chunk
            )
            exec_phase = self._executor_phase(
                loop,
                sched,
                None,
                None,
                y,
                ynew,
                iter_arr,
                flags,
                positions=(lo, hi),
            )
            breakdown.executor += exec_phase.span
            total_wait += exec_phase.total_wait
            _merge_phase(phases_acc, exec_phase)

            # Postprocessor over the block: reset + copy back.
            post = self._uniform_phase("postprocessor", count, cm.post_iter, 3)
            iter_arr[block_write] = MAXINT
            y[block_write] = ynew[block_write]
            breakdown.postprocessor += post.span
            _merge_phase(phases_acc, post)

            breakdown.barriers += 3 * cm.barrier(machine.processors)

        return RunResult(
            loop_name=loop.name,
            strategy="stripmined-doacross",
            processors=machine.processors,
            y=y,
            total_cycles=breakdown.total,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            phases=list(phases_acc.values()),
            breakdown=breakdown,
            wait_cycles=total_wait,
            schedule=f"{schedule_kind}(chunk={chunk})",
            extras={
                "block": block,
                "blocks": n_blocks,
                "modeled_scratch_elements": max_write_span,
                "full_scratch_elements": loop.y_size,
            },
        )

    # ------------------------------------------------------------------
    # Classic doacross baseline (a-priori uniform distance)
    # ------------------------------------------------------------------
    def run_classic(
        self,
        loop: IrregularLoop,
        distance: int,
        schedule=None,
        chunk: int = 1,
    ) -> RunResult:
        """Classic doacross: iteration ``i`` waits for iteration ``i − d``.

        Eligibility is verified: every true dependence must have distance
        exactly ``d`` and there must be no antidependencies (the classic
        form writes in place, with no renaming to protect old values).
        """
        if distance < 1:
            raise InvalidLoopError(f"distance must be >= 1, got {distance}")
        actual = uniform_distance(loop)
        if actual != distance:
            raise InvalidLoopError(
                f"classic doacross with distance {distance} is unsound: the "
                f"loop's actual uniform distance is {actual}"
            )
        _, _, categories = classify_reads(loop)
        if np.any(categories == CAT_ANTI):
            raise InvalidLoopError(
                "classic doacross cannot run a loop with antidependencies "
                "(no write renaming); use the preprocessed doacross"
            )

        machine = self.machine
        cm = machine.cost_model
        n = loop.n
        work = cm.effective_work(loop.work)
        term_counts = loop.reads.term_counts()
        flags = FlagStore(n)  # one flag per *iteration* here
        sched = self._resolve_schedule(schedule, n, chunk=chunk)
        dispatch_cost = cm.dispatch
        iter_cost_base = cm.exec_iter_overhead + work.overhead
        term_cost = work.term
        dynamic = sched.is_dynamic

        def run_body(st, lo: int, hi: int):
            for i in range(lo, hi):
                if i >= distance:
                    yield WaitFlag(i - distance)
                yield Compute(
                    iter_cost_base + int(term_counts[i]) * term_cost
                )
                yield SetFlag(i)
                st.iterations += 1

        def factory_for(proc: int):
            if dynamic:

                def task(st):
                    while True:
                        yield UseResource(RES_DISPATCH, dispatch_cost)
                        st.dispatches += 1
                        claim = sched.claim()
                        if claim is None:
                            return
                        yield from run_body(st, claim[0], claim[1])

            else:
                chunks = sched.chunks_for(proc)

                def task(st):
                    for lo, hi in chunks:
                        yield from run_body(st, lo, hi)

            return task

        engine = machine.new_engine(flags=flags)
        exec_phase = engine.run(
            "executor", [factory_for(p) for p in range(machine.processors)]
        )
        breakdown = PhaseBreakdown(
            executor=exec_phase.span, barriers=cm.barrier(machine.processors)
        )
        return RunResult(
            loop_name=loop.name,
            strategy="classic-doacross",
            processors=machine.processors,
            # In-place execution with a verified uniform distance is
            # sequentially equivalent, so the oracle's values are exact.
            y=loop.run_sequential(),
            total_cycles=breakdown.total,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            phases=[exec_phase],
            breakdown=breakdown,
            wait_cycles=exec_phase.total_wait,
            schedule=_describe_schedule(sched),
            extras={"distance": distance},
        )

    # ------------------------------------------------------------------
    # Doall baseline (asserted independence)
    # ------------------------------------------------------------------
    def run_doall(
        self,
        loop: IrregularLoop,
        schedule=None,
        chunk: int = 1,
        validate: bool = True,
    ) -> RunResult:
        """Doall: no synchronization, writes in place.

        ``validate=True`` re-checks at run time that the loop really has no
        cross-iteration true or anti dependencies — the check the paper's
        compiler *cannot* do statically, offered here as a debug net.
        """
        if validate:
            _, _, categories = classify_reads(loop)
            if np.any(categories == CAT_TRUE) or np.any(categories == CAT_ANTI):
                raise InvalidLoopError(
                    "doall on a loop with cross-iteration dependencies: "
                    "asserted independence does not hold"
                )

        machine = self.machine
        cm = machine.cost_model
        n = loop.n
        write = loop.write
        ptr, r_idx, r_coeff = loop.reads.ptr, loop.reads.index, loop.reads.coeff
        external = loop.init_kind == INIT_EXTERNAL
        init_values = loop.init_values
        y = loop.y0.copy()
        work = cm.effective_work(loop.work)
        sched = self._resolve_schedule(schedule, n, chunk=chunk)
        dispatch_cost = cm.dispatch
        iter_cost_base = cm.exec_iter_overhead + work.overhead
        term_cost = work.term
        dynamic = sched.is_dynamic

        def run_body(st, lo: int, hi: int):
            for i in range(lo, hi):
                w = write[i]
                acc = init_values[i] if external else y[w]
                cost = iter_cost_base
                for k in range(ptr[i], ptr[i + 1]):
                    idx = r_idx[k]
                    value = acc if idx == w else y[idx]
                    acc += r_coeff[k] * value
                    cost += term_cost
                y[w] = acc
                yield Compute(cost)
                st.iterations += 1

        def factory_for(proc: int):
            if dynamic:

                def task(st):
                    while True:
                        yield UseResource(RES_DISPATCH, dispatch_cost)
                        st.dispatches += 1
                        claim = sched.claim()
                        if claim is None:
                            return
                        yield from run_body(st, claim[0], claim[1])

            else:
                chunks = sched.chunks_for(proc)

                def task(st):
                    for lo, hi in chunks:
                        yield from run_body(st, lo, hi)

            return task

        engine = machine.new_engine()
        exec_phase = engine.run(
            "executor", [factory_for(p) for p in range(machine.processors)]
        )
        breakdown = PhaseBreakdown(
            executor=exec_phase.span, barriers=cm.barrier(machine.processors)
        )
        return RunResult(
            loop_name=loop.name,
            strategy="doall",
            processors=machine.processors,
            y=y,
            total_cycles=breakdown.total,
            sequential_cycles=sequential_time(loop, cm),
            cost_model=cm,
            phases=[exec_phase],
            breakdown=breakdown,
            wait_cycles=0,
            schedule=_describe_schedule(sched),
        )


# ----------------------------------------------------------------------
def _describe_schedule(schedule: IterationSchedule) -> str:
    name = type(schedule).__name__
    chunk = getattr(schedule, "chunk", getattr(schedule, "min_chunk", None))
    return f"{name}(chunk={chunk})" if chunk is not None else name


def _merge_phase(acc: dict[str, PhaseStats], phase: PhaseStats) -> None:
    """Accumulate same-named phases across strip-mine blocks."""
    if phase.name not in acc:
        acc[phase.name] = phase
        return
    existing = acc[phase.name]
    merged = [
        a.merge(b) for a, b in zip(existing.processors, phase.processors)
    ]
    acc[phase.name] = PhaseStats(name=phase.name, processors=merged)
