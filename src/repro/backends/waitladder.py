"""Bounded busy-waiting: the spin/sleep/timeout ladder.

The paper's executor (Figure 5) busy-waits on per-element ``ready`` flags.
On the simulated machine a wait that can never be satisfied is detected by
the event engine (:class:`~repro.errors.SimulationDeadlockError`); on real
concurrency an unbounded spin would simply hang the process.  The
:class:`WaitLadder` is the real-concurrency analogue of that detector: a
three-rung waiting strategy that keeps the common case cheap and turns the
impossible case into a diagnosable :class:`~repro.errors.WaitTimeout`.

The rungs, in order:

1. **spin** — ``spin`` polls with no clock reads and no syscalls.  Flags
   set by a producer that is only an iteration or two ahead are almost
   always caught here, at nanosecond cost.
2. **sleep** — exponentially escalating ``time.sleep`` from
   ``sleep_initial`` up to ``sleep_max``.  This is what makes the ladder
   viable on *oversubscribed* machines (more workers than cores): a
   spinning reader would burn the very timeslice its writer needs, so the
   ladder yields the CPU instead, with a bounded worst-case latency of
   ``sleep_max`` per poll.
3. **timeout** — after ``timeout`` seconds of sleeping the wait is
   declared dead and :class:`~repro.errors.WaitTimeout` is raised.  A
   correct schedule sets every flag the executor waits on (deadlock
   freedom, DESIGN.md §6), so reaching this rung means the schedule or the
   ``iter`` array behind it is corrupted — the ladder converts a silent
   hang into an exception naming the element.

The ladder is a frozen value object: construct once, share freely across
threads and ship it to worker processes (it is trivially picklable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import WaitTimeout

__all__ = ["WaitLadder", "DEFAULT_LADDER"]


@dataclass(frozen=True)
class WaitLadder:
    """Spin/sleep/timeout parameters for one bounded busy-wait.

    Parameters
    ----------
    spin:
        Number of syscall-free polls before the first sleep (rung 1).
    sleep_initial:
        First sleep duration in seconds; doubled per poll (rung 2).
    sleep_max:
        Ceiling on the escalating sleep.
    timeout:
        Total time budget in seconds for the sleep rung; exceeding it
        raises :class:`~repro.errors.WaitTimeout` (rung 3).
    """

    spin: int = 100
    sleep_initial: float = 5e-5
    sleep_max: float = 1e-3
    timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.spin < 0:
            raise ValueError(f"spin must be >= 0, got {self.spin}")
        if self.sleep_initial <= 0:
            raise ValueError(
                f"sleep_initial must be > 0, got {self.sleep_initial}"
            )
        if self.sleep_max < self.sleep_initial:
            raise ValueError(
                f"sleep_max ({self.sleep_max}) must be >= sleep_initial "
                f"({self.sleep_initial})"
            )
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def wait(
        self,
        is_ready: Callable[[], bool],
        element: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> float:
        """Wait until ``is_ready()`` is truthy; return seconds spent asleep.

        ``clock`` and ``sleep`` are injectable for deterministic unit
        tests.  The spin rung performs no clock reads, so an immediately
        satisfied wait costs one predicate call and nothing else.
        Raises :class:`~repro.errors.WaitTimeout` (with ``element`` and the
        waited duration attached) when the timeout rung is reached.
        """
        for _ in range(self.spin + 1):
            if is_ready():
                return 0.0
        start = clock()
        deadline = start + self.timeout
        delay = self.sleep_initial
        while True:
            sleep(delay)
            if is_ready():
                return clock() - start
            now = clock()
            if now >= deadline:
                waited = now - start
                where = "" if element is None else f" on element {element}"
                raise WaitTimeout(
                    f"busy-wait{where} exceeded {self.timeout:g}s; the "
                    f"schedule (or its iter array) is corrupted — a correct "
                    f"doacross schedule sets every awaited ready flag",
                    element=element,
                    waited_seconds=waited,
                )
            delay = min(delay * 2, self.sleep_max)


#: Shared default instance (the ladder is immutable).
DEFAULT_LADDER = WaitLadder()
