"""The :class:`InstrumentedRunner` wrapper: telemetry for any backend.

Wrap any :class:`~repro.backends.base.Runner` and every ``run`` comes back
with ``result.telemetry`` — a :class:`~repro.obs.telemetry.Telemetry` blob
of phase spans, per-lane activity spans, and unified metrics:

- **threaded / vectorized** (wall clock): the wrapper attaches a
  :class:`~repro.obs.spans.SpanRecorder` and a
  :class:`~repro.obs.metrics.MetricsRegistry` to the innermost backend
  before running; the backends emit spans at their phase/level boundaries
  (the hooks live in ``backends/threaded.py`` / ``backends/vectorized.py``).
- **simulated** (cycle clock): the machine already accounts every cycle in
  :class:`~repro.machine.stats.PhaseStats` and (with ``trace``) the
  :class:`~repro.machine.trace.Tracer`; :func:`telemetry_from_result`
  re-expresses that accounting as the same span/metric schema, so the two
  time axes can be read side by side.

Selection: ``make_runner(..., observe=True)`` or
``parallelize(..., observe=True)`` — or wrap a runner directly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import Runner
from repro.core.results import RunResult
from repro.ir.loop import IrregularLoop
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (
    CAT_BARRIER,
    CAT_PHASE,
    CAT_RUN,
    WHOLE_RUN_LANE,
    Span,
    SpanRecorder,
)
from repro.obs.telemetry import CLOCK_CYCLES, CLOCK_WALL, PHASE_NAMES, Telemetry

__all__ = [
    "InstrumentedRunner",
    "telemetry_from_result",
    "attach_simulated_telemetry",
]


def _innermost(runner: Runner) -> Runner:
    """Unwrap decorator runners (validating, instrumented) to the backend
    that actually executes — the one the span hooks live on."""
    seen = set()
    while hasattr(runner, "inner") and id(runner) not in seen:
        seen.add(id(runner))
        runner = runner.inner  # type: ignore[attr-defined]
    return runner


# ----------------------------------------------------------------------
def telemetry_from_result(
    result: RunResult, metrics: MetricsRegistry | None = None
) -> Telemetry:
    """Cycle-clock telemetry synthesized from a simulated backend's
    :class:`RunResult`.

    The phase spans are laid out sequentially from the
    :class:`~repro.core.results.PhaseBreakdown` (inspector → executor →
    postprocessor, with the barrier budget split evenly between phase
    boundaries, ending exactly at ``total_cycles``); per-processor
    compute/wait/queue spans come from the executor
    :class:`~repro.machine.trace.Tracer` when the run recorded one; the
    metrics registry is filled from every phase's
    :class:`~repro.machine.stats.ProcessorStats`.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    spans: list[Span] = []
    b = result.breakdown
    present = [
        (name, float(getattr(b, name)))
        for name in PHASE_NAMES
        if getattr(b, name) > 0
    ]
    barrier_each = float(b.barriers) / len(present) if present else 0.0
    cursor = 0.0
    executor_start = 0.0
    for name, length in present:
        if name == "executor":
            executor_start = cursor
        spans.append(
            Span(name=name, cat=CAT_PHASE, start=cursor, end=cursor + length)
        )
        cursor += length
        if barrier_each > 0:
            spans.append(
                Span(
                    name="barrier",
                    cat=CAT_BARRIER,
                    start=cursor,
                    end=cursor + barrier_each,
                )
            )
            cursor += barrier_each
    total = max(float(result.total_cycles), cursor)
    spans.append(
        Span(
            name="run",
            cat=CAT_RUN,
            start=0.0,
            end=total,
            lane=WHOLE_RUN_LANE,
            attrs={"strategy": result.strategy},
        )
    )

    tracer = result.extras.get("trace")
    if tracer is not None and hasattr(tracer, "to_spans"):
        spans.extend(tracer.to_spans(offset=int(executor_start)))

    for phase in result.phases:
        for proc in phase.processors:
            for name, value in proc.as_metrics().items():
                if value:
                    metrics.count(name, value)
    if b.barriers:
        metrics.count("barrier_cycles", b.barriers)
    metrics.gauge("processors", result.processors)
    metrics.gauge("total_cycles", result.total_cycles)

    spans.sort(key=lambda s: (s.start, s.lane))
    return Telemetry(
        backend="simulated", clock=CLOCK_CYCLES, spans=spans, metrics=metrics
    )


def attach_simulated_telemetry(result: RunResult) -> RunResult:
    """Set ``result.telemetry`` from the simulated run's own accounting
    (used by ``parallelize(..., observe=True)`` on the strategy-dispatch
    path, where no wrapper runner is in the loop)."""
    result.telemetry = telemetry_from_result(result)
    return result


# ----------------------------------------------------------------------
class InstrumentedRunner(Runner):
    """Decorator runner producing ``result.telemetry`` on every run.

    Composes with :class:`~repro.backends.validating.ValidatingRunner`
    (wrap the validator; the recorder is attached to the innermost
    backend either way).  For the simulated backend, an executor trace is
    always collected — observation *is* the request for a timeline — but
    ``extras["trace"]`` is only left behind when the caller asked for
    ``trace=True`` themselves.
    """

    def __init__(self, inner: Runner):
        self.inner = inner
        self.name = f"instrumented({inner.name})"

    def run(
        self,
        loop: IrregularLoop,
        *,
        order: np.ndarray | None = None,
        schedule=None,
        chunk: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        target = _innermost(self.inner)
        if target.name == "simulated":
            return self._run_simulated(
                loop, order=order, schedule=schedule, chunk=chunk, trace=trace
            )

        recorder = SpanRecorder()
        metrics = MetricsRegistry()
        target._obs_recorder = recorder
        target._obs_metrics = metrics
        t0 = time.perf_counter()
        try:
            result = self.inner.run(
                loop, order=order, schedule=schedule, chunk=chunk, trace=trace
            )
        finally:
            target._obs_recorder = None
            target._obs_metrics = None
        wall = time.perf_counter() - t0
        recorder.record(
            "run",
            CAT_RUN,
            t0,
            t0 + wall,
            lane=WHOLE_RUN_LANE,
            backend=target.name,
        )
        metrics.gauge("processors", result.processors)
        metrics.count("runs", 1)
        result.telemetry = Telemetry(
            backend=target.name,
            clock=CLOCK_WALL,
            spans=recorder.normalized(),
            metrics=metrics,
        )
        return result

    def _run_simulated(
        self,
        loop: IrregularLoop,
        *,
        order,
        schedule,
        chunk,
        trace: bool,
    ) -> RunResult:
        result = self.inner.run(
            loop, order=order, schedule=schedule, chunk=chunk, trace=True
        )
        result.telemetry = telemetry_from_result(result)
        if not trace:
            result.extras.pop("trace", None)
        return result
