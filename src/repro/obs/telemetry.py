"""The telemetry blob: one schema for every backend's run accounting.

A :class:`Telemetry` bundles the spans and metrics of one run together
with the clock they are expressed in.  The schema is deliberately
backend-agnostic — the simulated backend fills it from
:class:`~repro.machine.stats.PhaseStats` cycles, the threaded and
vectorized backends from measured wall clock — so a single consumer (the
exporters, the ``profile`` CLI, the benchmark artifacts) reads all three.
The shared-schema contract is pinned by ``tests/test_obs_schema.py`` and
enforced at runtime by :func:`validate_telemetry`.

Serialized form (``as_dict``)::

    {
      "schema_version": 1,
      "backend": "threaded",
      "clock": "wall_seconds",          # or "cycles"
      "spans":   [{"name", "cat", "start", "end", "lane", "attrs"}, ...],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TelemetryError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import CAT_PHASE, CAT_RUN, SPAN_CATEGORIES, Span

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "CLOCK_WALL",
    "CLOCK_CYCLES",
    "PHASE_NAMES",
    "Telemetry",
    "telemetry_from_dict",
    "validate_telemetry",
]

TELEMETRY_SCHEMA_VERSION = 1

#: Clock identifiers: what one unit of ``start``/``end`` means.
CLOCK_WALL = "wall_seconds"
CLOCK_CYCLES = "cycles"

#: The Figure-3 pipeline stages every backend reports as phase spans.
PHASE_NAMES = ("inspector", "executor", "postprocessor")


@dataclass
class Telemetry:
    """Spans + metrics of one run, in one clock.

    Attributes
    ----------
    backend:
        The innermost runner's ``name`` (``simulated``/``threaded``/
        ``vectorized``).
    clock:
        :data:`CLOCK_WALL` or :data:`CLOCK_CYCLES`.
    spans:
        Normalized (earliest start at 0), start-sorted span list.
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    backend: str
    clock: str
    spans: list[Span] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    schema_version: int = TELEMETRY_SCHEMA_VERSION

    # ------------------------------------------------------------------
    def span_total(self) -> float:
        """End of the latest span (the telemetry-visible makespan)."""
        return max((s.end for s in self.spans), default=0.0)

    def phase_totals(self) -> dict[str, float]:
        """Wall-to-wall extent of each named phase: earliest start to
        latest end across lanes (per-lane phase spans overlap in time, so
        summing durations would double-count)."""
        bounds: dict[str, tuple[float, float]] = {}
        for s in self.spans:
            if s.cat != CAT_PHASE:
                continue
            lo, hi = bounds.get(s.name, (s.start, s.end))
            bounds[s.name] = (min(lo, s.start), max(hi, s.end))
        return {name: hi - lo for name, (lo, hi) in bounds.items()}

    def lanes(self) -> list[int]:
        """Distinct non-whole-run lanes, ascending."""
        return sorted({s.lane for s in self.spans if s.lane >= 0})

    def category_totals_by_lane(self, cat: str) -> dict[int, float]:
        """Summed span duration of category ``cat`` per non-whole-run
        lane (the doctor's raw material: per-lane wait and compute
        totals feed the §3 amortization and load-imbalance checks)."""
        totals: dict[int, float] = {}
        for s in self.spans:
            if s.cat == cat and s.lane >= 0:
                totals[s.lane] = totals.get(s.lane, 0.0) + s.duration
        return totals

    def wait_fractions(self) -> dict[int, float]:
        """Per-lane ``wait / (wait + compute)`` ratio — the measured form
        of the paper's busy-wait share.  Lanes with no compute or wait
        spans are omitted."""
        wait = self.category_totals_by_lane("wait")
        compute = self.category_totals_by_lane("compute")
        out: dict[int, float] = {}
        for lane in sorted(set(wait) | set(compute)):
            busy = wait.get(lane, 0.0) + compute.get(lane, 0.0)
            if busy > 0:
                out[lane] = wait.get(lane, 0.0) / busy
        return out

    def one_line(self) -> str:
        phases = self.phase_totals()
        unit = "s" if self.clock == CLOCK_WALL else "cyc"
        parts = ", ".join(
            f"{name}={phases[name]:.6g}{unit}"
            for name in PHASE_NAMES
            if name in phases
        )
        return (
            f"{len(self.spans)} spans ({self.clock}); {parts}"
            if parts
            else f"{len(self.spans)} spans ({self.clock})"
        )

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "backend": self.backend,
            "clock": self.clock,
            "spans": [s.as_dict() for s in self.spans],
            "metrics": self.metrics.as_dict(),
        }


def telemetry_from_dict(blob: dict) -> Telemetry:
    """Rebuild a :class:`Telemetry` from its :meth:`Telemetry.as_dict`
    form (validated first) — the read side of the benchmark-artifact and
    JSONL serialization, used by ``repro doctor`` to diagnose saved runs."""
    validate_telemetry(blob)
    return Telemetry(
        backend=blob["backend"],
        clock=blob["clock"],
        spans=[
            Span(
                name=s["name"],
                cat=s["cat"],
                start=float(s["start"]),
                end=float(s["end"]),
                lane=int(s["lane"]),
                attrs=dict(s["attrs"]),
            )
            for s in blob["spans"]
        ],
        metrics=MetricsRegistry.from_dict(blob["metrics"]),
        schema_version=int(blob["schema_version"]),
    )


# ----------------------------------------------------------------------
_SPAN_KEYS = {"name", "cat", "start", "end", "lane", "attrs"}
_METRIC_KEYS = {"counters", "gauges", "histograms"}
_HISTOGRAM_KEYS = {"count", "sum", "min", "max"}
#: Optional per-histogram summary quantiles (present when the producing
#: registry retained raw samples).
_HISTOGRAM_OPTIONAL_KEYS = {"p50", "p95", "p99"}


def _fail(message: str) -> None:
    raise TelemetryError(f"invalid telemetry blob: {message}")


def validate_telemetry(blob: object) -> dict:
    """Check ``blob`` against the serialized telemetry schema.

    Returns the blob (for chaining) or raises
    :class:`~repro.errors.TelemetryError` naming the first violation.
    This is the gate the CI benchmark artifacts and the shared
    cross-backend schema test both go through, so "same schema" is one
    definition, not three conventions.
    """
    if not isinstance(blob, dict):
        _fail(f"expected a dict, got {type(blob).__name__}")
    if blob.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        _fail(
            f"schema_version is {blob.get('schema_version')!r}, "
            f"expected {TELEMETRY_SCHEMA_VERSION}"
        )
    if not isinstance(blob.get("backend"), str) or not blob["backend"]:
        _fail("backend must be a non-empty string")
    if blob.get("clock") not in (CLOCK_WALL, CLOCK_CYCLES):
        _fail(
            f"clock is {blob.get('clock')!r}, expected "
            f"{CLOCK_WALL!r} or {CLOCK_CYCLES!r}"
        )

    spans = blob.get("spans")
    if not isinstance(spans, list):
        _fail("spans must be a list")
    run_spans = 0
    for pos, span in enumerate(spans):
        if not isinstance(span, dict):
            _fail(f"spans[{pos}] is not a dict")
        missing = _SPAN_KEYS - span.keys()
        if missing:
            _fail(f"spans[{pos}] missing key(s) {sorted(missing)}")
        if span["cat"] not in SPAN_CATEGORIES:
            _fail(f"spans[{pos}] has unknown category {span['cat']!r}")
        if not isinstance(span["name"], str) or not span["name"]:
            _fail(f"spans[{pos}] name must be a non-empty string")
        start, end = span["start"], span["end"]
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
            _fail(f"spans[{pos}] start/end must be numbers")
        if end < start or start < 0:
            _fail(
                f"spans[{pos}] interval [{start}, {end}] is negative "
                f"or starts before t=0"
            )
        if not isinstance(span["lane"], int):
            _fail(f"spans[{pos}] lane must be an int")
        if not isinstance(span["attrs"], dict):
            _fail(f"spans[{pos}] attrs must be a dict")
        if span["cat"] == CAT_RUN:
            run_spans += 1
    if spans and run_spans == 0:
        _fail("no run-category span brackets the construct")

    metrics = blob.get("metrics")
    if not isinstance(metrics, dict) or set(metrics.keys()) != _METRIC_KEYS:
        _fail(f"metrics must be a dict with keys {sorted(_METRIC_KEYS)}")
    for kind in ("counters", "gauges"):
        for name, value in metrics[kind].items():
            if not isinstance(name, str) or not isinstance(value, (int, float)):
                _fail(f"metrics.{kind}[{name!r}] must map str -> number")
    for name, h in metrics["histograms"].items():
        if (
            not isinstance(h, dict)
            or _HISTOGRAM_KEYS - h.keys()
            or h.keys() - _HISTOGRAM_KEYS - _HISTOGRAM_OPTIONAL_KEYS
        ):
            _fail(
                f"metrics.histograms[{name!r}] must have keys "
                f"{sorted(_HISTOGRAM_KEYS)} (optionally "
                f"{sorted(_HISTOGRAM_OPTIONAL_KEYS)})"
            )
        if any(not isinstance(v, (int, float)) for v in h.values()):
            _fail(f"metrics.histograms[{name!r}] values must be numbers")
    return blob  # type: ignore[return-value]
