"""``python -m repro profile``: run one workload observed, report/export.

The command is the human front door to the telemetry layer: pick a builtin
loop spec and a backend, run it with ``observe=True``, and get the phase
breakdown, the unified metrics, and any ignored-option notes — plus the
machine-readable exports (Chrome trace-event JSON for ``chrome://tracing``
/ Perfetto, JSONL spans for ad-hoc scripting) and the ASCII Gantt chart.

Usage::

    python -m repro profile [--backend=NAME|auto] [--loop=SPEC]
        [--processors=P] [--schedule=KIND] [--chunk=K]
        [--export=chrome|jsonl OUT] [--gantt] [--json]

``SPEC`` uses the same builtin grammar as ``python -m repro lint``
(``figure4:n=2000,l=8``, ``chain:n=500,d=1``, ``random:seed=3``).

Runs are planned through the schedule-pass pipeline where the options
allow it, and the chosen plan — pass list, resolved backend, tuner
decision for ``--backend=auto`` — is printed with the tables and
embedded under ``"plan"`` in ``--json`` output, so tuner choices are
auditable from the CLI.
"""

from __future__ import annotations

import sys

from repro.bench.reporting import format_table
from repro.obs.export import (
    gantt,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.telemetry import CLOCK_WALL, PHASE_NAMES

__all__ = ["main"]

DEFAULT_LOOP = "figure4:n=2000,m=2,l=8"


def _parse(argv: list[str]) -> dict:
    opts = {
        "backend": "simulated",
        "loop": DEFAULT_LOOP,
        "processors": 8,
        "schedule": None,
        "chunk": None,
        "export": None,  # (kind, path)
        "gantt": False,
        "json": False,
    }
    positional: list[str] = []
    pending_export: str | None = None
    for a in argv:
        if pending_export is not None:
            opts["export"] = (pending_export, a)
            pending_export = None
        elif a.startswith("--backend="):
            opts["backend"] = a.split("=", 1)[1]
        elif a.startswith("--loop="):
            opts["loop"] = a.split("=", 1)[1]
        elif a.startswith("--processors="):
            opts["processors"] = int(a.split("=", 1)[1])
        elif a.startswith("--schedule="):
            opts["schedule"] = a.split("=", 1)[1]
        elif a.startswith("--chunk="):
            opts["chunk"] = int(a.split("=", 1)[1])
        elif a.startswith("--export="):
            kind = a.split("=", 1)[1]
            if kind not in ("chrome", "jsonl"):
                raise ValueError(
                    f"unknown export kind {kind!r}; expected chrome or jsonl"
                )
            pending_export = kind
        elif a == "--gantt":
            opts["gantt"] = True
        elif a == "--json":
            opts["json"] = True
        elif a.startswith("--"):
            raise ValueError(f"unknown profile option {a!r}")
        else:
            positional.append(a)
    if pending_export is not None:
        raise ValueError(
            f"--export={pending_export} needs an output path argument"
        )
    if positional:
        raise ValueError(f"unexpected argument(s) {positional}")
    return opts


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    try:
        opts = _parse(args)
    except ValueError as exc:
        print(exc)
        return 2

    import json as json_module

    from repro.backends import BACKENDS, _build_runner
    from repro.core.serialize import result_to_dict
    from repro.errors import ScheduleError
    from repro.lint.cli import builtin_loops
    from repro.passes import (
        PlanSpec,
        UnsupportedPlanOption,
        execute_plan,
        plan_loop,
    )
    from repro.passes.spec import AUTO_BACKEND

    known = BACKENDS + (AUTO_BACKEND,)
    if opts["backend"] not in known:
        print(
            f"unknown backend {opts['backend']!r}; "
            f"expected one of {', '.join(known)}"
        )
        return 2
    try:
        loop = next(iter(builtin_loops(opts["loop"]).values()))
    except ValueError as exc:
        print(exc)
        return 2

    # Preferred path: plan through the schedule-pass pipeline, so the
    # printed/exported result carries the auditable plan (pass list +
    # tuner decision).  Option combinations the pipeline rejects fall
    # back to the legacy runner path, which documents what it ignores.
    plan_audit = None
    try:
        spec = PlanSpec(
            backend=opts["backend"],
            processors=opts["processors"],
            schedule=opts["schedule"],
            chunk=opts["chunk"],
            observe=True,
        )
        plan = plan_loop(loop, spec)
        result = execute_plan(loop, plan)
        plan_audit = plan.describe()
    except UnsupportedPlanOption as exc:
        if opts["backend"] == AUTO_BACKEND:
            print(f"cannot plan: {exc}")
            return 2
        runner = _build_runner(
            opts["backend"], processors=opts["processors"], observe=True
        )
        run_kwargs = {}
        if opts["schedule"] is not None:
            run_kwargs["schedule"] = opts["schedule"]
        if opts["chunk"] is not None:
            run_kwargs["chunk"] = opts["chunk"]
        result = runner.run(loop, **run_kwargs)
    except ScheduleError as exc:
        print(exc)
        return 2
    telemetry = result.telemetry
    assert telemetry is not None  # observe=True guarantees it

    if opts["json"]:
        payload = result_to_dict(result)
        payload["plan"] = plan_audit
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        unit = "s" if telemetry.clock == CLOCK_WALL else "cycles"
        phases = telemetry.phase_totals()
        total = telemetry.span_total()
        rows = [
            (name, phases[name], 100.0 * phases[name] / total if total else 0.0)
            for name in PHASE_NAMES
            if name in phases
        ]
        print(
            format_table(
                ["phase", f"extent ({unit})", "% of span"],
                rows,
                title=(
                    f"profile — {loop.name} on {telemetry.backend} "
                    f"(clock: {telemetry.clock})"
                ),
            )
        )
        metrics = telemetry.metrics.as_dict()
        metric_rows = [
            (kind[:-1], name, value)
            for kind in ("counters", "gauges")
            for name, value in metrics[kind].items()
        ] + [
            (
                "histogram",
                name,
                f"n={h['count']} sum={h['sum']:g} "
                f"min={h['min']:g} max={h['max']:g}"
                + (
                    f" p50={h['p50']:g} p95={h['p95']:g} p99={h['p99']:g}"
                    if "p50" in h
                    else ""
                ),
            )
            for name, h in metrics["histograms"].items()
        ]
        if metric_rows:
            print()
            print(format_table(["kind", "metric", "value"], metric_rows))
        if plan_audit is not None:
            print(
                f"plan: {' -> '.join(plan_audit['passes'])} "
                f"(backend={plan_audit['backend']})"
            )
            tuner = plan_audit.get("tuner")
            if tuner is not None:
                print(f"tuner: {tuner['source']} — {tuner['reason']}")
        for note in result.extras.get("ignored_options", []):
            print(
                f"note: {note['backend']} ignored "
                f"{note['option']}={note['value']!r} — {note['reason']}"
            )
        if opts["gantt"]:
            print()
            print(gantt(telemetry))

    if opts["export"] is not None:
        kind, path = opts["export"]
        if kind == "chrome":
            written = write_chrome_trace(telemetry, path)
        else:
            written = write_spans_jsonl(telemetry, path)
        print(f"wrote {kind} export: {written}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
