"""Telemetry exporters: Chrome trace-event JSON, JSONL spans, ASCII Gantt.

Three consumers of the one span model:

- :func:`chrome_trace` / :func:`write_chrome_trace` emit the Chrome
  trace-event format (the ``traceEvents`` array of complete ``"X"``
  events), loadable in ``chrome://tracing`` / Perfetto.  Wall-clock spans
  are converted to microseconds; cycle-clock spans map one cycle to one
  microsecond (recorded in ``otherData.time_unit`` so the axis is never
  ambiguous).
- :func:`spans_jsonl` / :func:`write_spans_jsonl` emit one JSON object per
  span — the grep/jq-friendly sink for ad-hoc analysis; and
  :func:`read_spans_jsonl` loads one back into a
  :class:`~repro.obs.telemetry.Telemetry` (the ``repro doctor`` input
  path), so the JSONL format round-trips.
- :func:`gantt` renders the wall-clock analogue of the simulated
  :meth:`~repro.machine.trace.Tracer.gantt` chart: one row per lane,
  ``#`` compute, ``.`` busy-wait, ``~`` queued — so a threaded run and a
  simulated run of the same loop can be compared glyph for glyph.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import (
    CAT_COMPUTE,
    CAT_LEVEL,
    CAT_QUEUE,
    CAT_WAIT,
    WHOLE_RUN_LANE,
    Span,
)
from repro.obs.telemetry import CLOCK_WALL, Telemetry, telemetry_from_dict

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "gantt",
]


def chrome_trace(telemetry: Telemetry) -> dict:
    """The Chrome trace-event representation of ``telemetry``.

    Lanes become ``tid`` values (whole-run spans land on tid 0, lane ``k``
    on tid ``k + 1``); metadata events name the threads so the viewer
    shows ``construct`` / ``lane 0`` / ``lane 1`` ... instead of bare
    numbers.  Metrics ride along in ``otherData``.
    """
    scale = 1e6 if telemetry.clock == CLOCK_WALL else 1.0
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro[{telemetry.backend}]"},
        },
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "construct"},
        },
    ]
    for lane in telemetry.lanes():
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": lane + 1,
                "name": "thread_name",
                "args": {"name": f"lane {lane}"},
            }
        )
    for span in telemetry.spans:
        tid = 0 if span.lane == WHOLE_RUN_LANE else span.lane + 1
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "name": span.name,
                "cat": span.cat,
                "ts": span.start * scale,
                "dur": span.duration * scale,
                "args": dict(span.attrs),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "backend": telemetry.backend,
            "clock": telemetry.clock,
            "schema_version": telemetry.schema_version,
            "time_unit": (
                "microseconds" if telemetry.clock == CLOCK_WALL else "cycles-as-us"
            ),
            "metrics": telemetry.metrics.as_dict(),
        },
    }


def write_chrome_trace(telemetry: Telemetry, path: str | Path) -> Path:
    """Write the Chrome trace to ``path`` and return it."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(telemetry), indent=2) + "\n", encoding="utf-8"
    )
    return path


# ----------------------------------------------------------------------
def spans_jsonl(telemetry: Telemetry) -> str:
    """One JSON object per line: a header record, then every span."""
    lines = [
        json.dumps(
            {
                "record": "telemetry",
                "schema_version": telemetry.schema_version,
                "backend": telemetry.backend,
                "clock": telemetry.clock,
                "metrics": telemetry.metrics.as_dict(),
            }
        )
    ]
    for span in telemetry.spans:
        lines.append(json.dumps({"record": "span", **span.as_dict()}))
    return "\n".join(lines) + "\n"


def write_spans_jsonl(telemetry: Telemetry, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(spans_jsonl(telemetry), encoding="utf-8")
    return path


def read_spans_jsonl(source: str | Path) -> Telemetry:
    """Load a :func:`spans_jsonl` export back into a validated
    :class:`Telemetry` — the write format's inverse, and the path by which
    ``repro doctor`` diagnoses a previously saved run.

    ``source`` is a path or raw JSONL text.  Raises ``ValueError`` on a
    missing/duplicate header record or unknown record kinds, and
    :class:`~repro.errors.TelemetryError` if the reassembled blob fails
    schema validation.
    """
    text = source if isinstance(source, str) and "\n" in source else None
    if text is None:
        text = Path(source).read_text(encoding="utf-8")
    header: dict | None = None
    spans: list[dict] = []
    for pos, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        obj = json.loads(line)
        kind = obj.get("record")
        if kind == "telemetry":
            if header is not None:
                raise ValueError(
                    f"line {pos + 1}: duplicate telemetry header record"
                )
            header = obj
        elif kind == "span":
            spans.append({k: v for k, v in obj.items() if k != "record"})
        else:
            raise ValueError(
                f"line {pos + 1}: unknown record kind {kind!r}"
            )
    if header is None:
        raise ValueError("no telemetry header record in JSONL input")
    return telemetry_from_dict(
        {
            "schema_version": header.get("schema_version"),
            "backend": header.get("backend"),
            "clock": header.get("clock"),
            "metrics": header.get("metrics"),
            "spans": spans,
        }
    )


# ----------------------------------------------------------------------
_GANTT_GLYPH = {CAT_COMPUTE: "#", CAT_WAIT: ".", CAT_QUEUE: "~", CAT_LEVEL: "#"}

#: Overwrite precedence when spans share a column at chart resolution:
#: compute wins over wait wins over queue (mirrors ``Tracer.gantt``).
_GANTT_RANK = {" ": 0, "~": 1, ".": 2, "#": 3}


def _format_extent(telemetry: Telemetry, extent: float) -> str:
    if telemetry.clock == CLOCK_WALL:
        return f"{extent * 1e3:.3f} ms"
    return f"{extent:.0f} cycles"


def gantt(telemetry: Telemetry, width: int = 72) -> str:
    """ASCII Gantt chart over per-lane activity spans.

    Renders compute/wait/queue (and vectorized per-level) spans; phase and
    run spans are accounting envelopes, not activity, and are skipped.
    The glyph vocabulary is identical to the simulated
    :meth:`~repro.machine.trace.Tracer.gantt`, so side-by-side comparison
    of a threaded wall-clock run and a simulated cycle run reads the same
    way: staircases of ``.`` are serialized busy-waits, dense ``#`` is a
    pipelined schedule.
    """
    drawable: list[Span] = [
        s
        for s in telemetry.spans
        if s.cat in _GANTT_GLYPH and (s.lane >= 0 or s.cat == CAT_LEVEL)
    ]
    if not drawable:
        return "(no activity spans to draw)"
    span_end = max(s.end for s in drawable)
    if span_end <= 0:
        return "(no activity spans to draw)"
    lanes = sorted({max(s.lane, 0) for s in drawable})
    rows = {lane: [" "] * width for lane in lanes}
    for s in drawable:
        row = rows[max(s.lane, 0)]
        c0 = int(s.start / span_end * width)
        c1 = max(c0 + 1, int(s.end / span_end * width))
        glyph = _GANTT_GLYPH[s.cat]
        for c in range(c0, min(c1, width)):
            if _GANTT_RANK[glyph] > _GANTT_RANK[row[c]]:
                row[c] = glyph
    lines = [
        f"t = 0 .. {_format_extent(telemetry, span_end)}   "
        f"('#' compute, '.' busy-wait, '~' queued, ' ' idle)"
    ]
    for lane in lanes:
        lines.append(f"p{lane:<3d}|{''.join(rows[lane])}|")
    return "\n".join(lines)
