"""The metrics registry: named counters, gauges, and histograms.

One registry per observed run unifies the counts that previously lived in
backend-specific corners — the simulated machine's
:class:`~repro.machine.stats.ProcessorStats` (flag checks, busy-wait
cycles, dispatches), the :class:`~repro.backends.cache.InspectorCache`
hit/miss counters, the vectorized backend's wavefront widths — under one
serializable namespace, so the paper's overhead quantities (§3.1's
busy-wait analysis, Figure 3's amortization) can be compared across
backends by name.

Three instrument kinds, matching how each quantity behaves:

- **counter** — monotonically accumulated totals (``flag_checks``,
  ``wait_cycles``, ``busy_waits``); ``count()`` adds.
- **gauge** — point-in-time values (``processors``, ``levels``,
  ``inspector_cache_entries``); ``gauge()`` overwrites.
- **histogram** — distributions summarized as count/sum/min/max
  (``level_width``); ``observe()`` folds one sample in.

Thread-safe: the threaded backend reports from worker threads.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Collects named counters, gauges, and histogram summaries."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram ``name``."""
        with self._lock:
            h = self.histograms.get(name)
            if h is None:
                self.histograms[name] = {
                    "count": 1,
                    "sum": value,
                    "min": value,
                    "max": value,
                }
            else:
                h["count"] += 1
                h["sum"] += value
                h["min"] = min(h["min"], value)
                h["max"] = max(h["max"], value)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one (counters
        add, gauges overwrite, histograms combine)."""
        with other._lock:
            counters = dict(other.counters)
            gauges = dict(other.gauges)
            histograms = {k: dict(v) for k, v in other.histograms.items()}
        for name, value in counters.items():
            self.count(name, value)
        for name, value in gauges.items():
            self.gauge(name, value)
        with self._lock:
            for name, h in histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = dict(h)
                else:
                    mine["count"] += h["count"]
                    mine["sum"] += h["sum"]
                    mine["min"] = min(mine["min"], h["min"])
                    mine["max"] = max(mine["max"], h["max"])

    def as_dict(self) -> dict:
        """JSON-safe snapshot: numbers only, plain dicts."""

        def num(v: float) -> float | int:
            return int(v) if isinstance(v, bool) or v == int(v) else float(v)

        with self._lock:
            return {
                "counters": {k: num(v) for k, v in sorted(self.counters.items())},
                "gauges": {k: num(v) for k, v in sorted(self.gauges.items())},
                "histograms": {
                    k: {kk: num(vv) for kk, vv in v.items()}
                    for k, v in sorted(self.histograms.items())
                },
            }
