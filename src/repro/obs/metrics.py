"""The metrics registry: named counters, gauges, and histograms.

One registry per observed run unifies the counts that previously lived in
backend-specific corners — the simulated machine's
:class:`~repro.machine.stats.ProcessorStats` (flag checks, busy-wait
cycles, dispatches), the :class:`~repro.backends.cache.InspectorCache`
hit/miss counters, the vectorized backend's wavefront widths — under one
serializable namespace, so the paper's overhead quantities (§3.1's
busy-wait analysis, Figure 3's amortization) can be compared across
backends by name.

Three instrument kinds, matching how each quantity behaves:

- **counter** — monotonically accumulated totals (``flag_checks``,
  ``wait_cycles``, ``busy_waits``); ``count()`` adds.
- **gauge** — point-in-time values (``processors``, ``levels``,
  ``inspector_cache_entries``); ``gauge()`` overwrites.
- **histogram** — distributions summarized as count/sum/min/max plus
  p50/p95/p99 (``level_width``); ``observe()`` folds one sample in and
  retains it so :meth:`MetricsRegistry.percentiles` can answer arbitrary
  quantile queries.

Thread-safe: the threaded backend reports from worker threads.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry", "PERCENTILE_KEYS"]

#: The quantiles serialized into every histogram summary (as ``"p50"`` ...).
PERCENTILE_KEYS = (50.0, 95.0, 99.0)


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile ``q`` (percent) of pre-sorted samples."""
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """Collects named counters, gauges, and histogram summaries."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}
        # Raw histogram samples, kept so percentiles() can answer any
        # quantile; one float per observe() call (histograms here count
        # wavefronts/phases, not per-iteration events, so retention is
        # O(levels), not O(n)).
        self._samples: dict[str, list[float]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram ``name``."""
        self.observe_many(name, (value,))

    def observe_many(self, name: str, values) -> None:
        """Fold many samples into histogram ``name`` in one lock acquire
        (the vectorized backend reports all its wavefront widths at once)."""
        values = [float(v) for v in values]
        if not values:
            return
        with self._lock:
            self._samples.setdefault(name, []).extend(values)
            h = self.histograms.get(name)
            if h is None:
                h = self.histograms[name] = {
                    "count": 0,
                    "sum": 0.0,
                    "min": values[0],
                    "max": values[0],
                }
            h["count"] += len(values)
            h["sum"] += sum(values)
            h["min"] = min(h["min"], min(values))
            h["max"] = max(h["max"], max(values))

    def percentiles(
        self, name: str, q: tuple[float, ...] = PERCENTILE_KEYS
    ) -> dict[str, float]:
        """Quantiles of histogram ``name``'s retained samples as
        ``{"p50": ..., ...}`` (linear interpolation).  Empty dict when the
        histogram has no retained samples — e.g. one deserialized from a
        summary blob."""
        with self._lock:
            samples = sorted(self._samples.get(name, ()))
        if not samples:
            return {}
        return {f"p{g:g}": _quantile(samples, g) for g in q}

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one (counters
        add, gauges overwrite, histograms combine)."""
        with other._lock:
            counters = dict(other.counters)
            gauges = dict(other.gauges)
            histograms = {k: dict(v) for k, v in other.histograms.items()}
            samples = {k: list(v) for k, v in other._samples.items()}
        for name, value in counters.items():
            self.count(name, value)
        for name, value in gauges.items():
            self.gauge(name, value)
        with self._lock:
            for name, h in histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = dict(h)
                else:
                    mine["count"] += h["count"]
                    mine["sum"] += h["sum"]
                    mine["min"] = min(mine["min"], h["min"])
                    mine["max"] = max(mine["max"], h["max"])
            for name, vals in samples.items():
                self._samples.setdefault(name, []).extend(vals)

    def as_dict(self) -> dict:
        """JSON-safe snapshot: numbers only, plain dicts.

        Histograms with retained samples additionally carry p50/p95/p99
        summary quantiles; histograms restored from a serialized summary
        (no samples) keep whatever summary keys they arrived with."""

        def num(v: float) -> float | int:
            return int(v) if isinstance(v, bool) or v == int(v) else float(v)

        hist_names = list(self.histograms)
        quantiles = {name: self.percentiles(name) for name in hist_names}
        with self._lock:
            return {
                "counters": {k: num(v) for k, v in sorted(self.counters.items())},
                "gauges": {k: num(v) for k, v in sorted(self.gauges.items())},
                "histograms": {
                    k: {
                        kk: num(vv)
                        for kk, vv in {**v, **quantiles.get(k, {})}.items()
                    }
                    for k, v in sorted(self.histograms.items())
                },
            }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot.

        Counters, gauges, and histogram *summaries* round-trip exactly;
        raw samples are not serialized, so :meth:`percentiles` on the
        restored registry returns the empty dict (the serialized p50/p95/
        p99 keys inside each histogram are preserved verbatim instead)."""
        reg = cls()
        reg.counters = {k: v for k, v in data.get("counters", {}).items()}
        reg.gauges = {k: v for k, v in data.get("gauges", {}).items()}
        reg.histograms = {
            k: dict(v) for k, v in data.get("histograms", {}).items()
        }
        return reg
