"""Observability: cross-backend telemetry for the doacross pipeline.

The paper's whole argument is an accounting argument — preprocessing cost
amortized against executor busy-wait savings (§2.2–§3, Figure 6, Table 1).
The simulated backend always had that accounting
(:class:`~repro.machine.stats.PhaseStats`,
:class:`~repro.machine.trace.Tracer`); this package extends it to the
backends that run on real hardware, under one schema:

- :mod:`repro.obs.spans` — structured :class:`Span` intervals
  (phase / wavefront-level / compute / wait / queue) and the thread-safe
  :class:`SpanRecorder` backends emit into.
- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of named
  counters/gauges/histograms unifying what used to live piecemeal in
  ``ProcessorStats``, the :class:`~repro.backends.cache.InspectorCache`
  counters, and the vectorized level widths.
- :mod:`repro.obs.telemetry` — the serializable :class:`Telemetry` blob
  attached to :class:`~repro.core.results.RunResult` and its schema
  validator :func:`validate_telemetry`.
- :mod:`repro.obs.export` — Chrome trace-event JSON
  (``chrome://tracing``-loadable), JSONL span sink, and the ASCII
  :func:`~repro.obs.export.gantt` mirroring the simulated Gantt chart.
- :mod:`repro.obs.instrument` — the :class:`InstrumentedRunner` wrapper,
  selectable as ``make_runner(..., observe=True)`` /
  ``parallelize(..., observe=True)``.
- :mod:`repro.obs.cli` — ``python -m repro profile``: run any builtin
  workload on any backend and print/export its phase breakdown.
"""

from repro.obs.export import (
    chrome_trace,
    gantt,
    read_spans_jsonl,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.instrument import (
    InstrumentedRunner,
    attach_simulated_telemetry,
    telemetry_from_result,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (
    CAT_BARRIER,
    CAT_COMPUTE,
    CAT_LEVEL,
    CAT_PHASE,
    CAT_QUEUE,
    CAT_RUN,
    CAT_WAIT,
    SPAN_CATEGORIES,
    WHOLE_RUN_LANE,
    Span,
    SpanRecorder,
)
from repro.obs.telemetry import (
    CLOCK_CYCLES,
    CLOCK_WALL,
    PHASE_NAMES,
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    telemetry_from_dict,
    validate_telemetry,
)

__all__ = [
    # spans
    "Span",
    "SpanRecorder",
    "SPAN_CATEGORIES",
    "WHOLE_RUN_LANE",
    "CAT_RUN",
    "CAT_PHASE",
    "CAT_LEVEL",
    "CAT_COMPUTE",
    "CAT_WAIT",
    "CAT_QUEUE",
    "CAT_BARRIER",
    # metrics
    "MetricsRegistry",
    # telemetry
    "Telemetry",
    "telemetry_from_dict",
    "validate_telemetry",
    "TELEMETRY_SCHEMA_VERSION",
    "CLOCK_WALL",
    "CLOCK_CYCLES",
    "PHASE_NAMES",
    # instrumentation
    "InstrumentedRunner",
    "telemetry_from_result",
    "attach_simulated_telemetry",
    # exporters
    "chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "gantt",
]
