"""Structured spans: the unit of the cross-backend telemetry model.

A :class:`Span` is one named, categorized time interval on one *lane*
(processor, thread, or the whole construct).  Every backend emits the same
span vocabulary so the paper's accounting argument — preprocessing cost
amortized over executor busy-wait savings (§2.2–§3) — can be read off any
backend, not just the simulated one:

- category ``"phase"`` spans named ``inspector`` / ``executor`` /
  ``postprocessor`` mirror Figure 3's pipeline stages;
- category ``"wait"`` spans are the busy-waits of Figure 2/5 (simulated:
  :data:`~repro.machine.trace.SEG_WAIT` segments; threaded: blocked
  ``threading.Event.wait`` calls);
- category ``"compute"`` / ``"queue"`` spans match the simulated
  :class:`~repro.machine.trace.Tracer` segment kinds;
- category ``"level"`` spans are the vectorized backend's per-wavefront
  batches (§3.2 doconsider decomposition);
- one category ``"run"`` span brackets the whole construct.

Span times are floats in the clock of the enclosing
:class:`~repro.obs.telemetry.Telemetry` blob — wall-clock seconds for the
threaded/vectorized backends, simulated cycles for the simulated backend.

:class:`SpanRecorder` is the collection point backends write into.  It is
thread-safe (the threaded backend records from worker threads) and
deliberately tiny: recording a span is one lock acquire and one list
append, cheap enough to leave enabled for whole benchmark runs.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CAT_RUN",
    "CAT_PHASE",
    "CAT_LEVEL",
    "CAT_COMPUTE",
    "CAT_WAIT",
    "CAT_QUEUE",
    "CAT_BARRIER",
    "SPAN_CATEGORIES",
    "WHOLE_RUN_LANE",
    "Span",
    "SpanRecorder",
]

CAT_RUN = "run"
CAT_PHASE = "phase"
CAT_LEVEL = "level"
CAT_COMPUTE = "compute"
CAT_WAIT = "wait"
CAT_QUEUE = "queue"
CAT_BARRIER = "barrier"

#: Every category a conforming telemetry blob may use.
SPAN_CATEGORIES = (
    CAT_RUN,
    CAT_PHASE,
    CAT_LEVEL,
    CAT_COMPUTE,
    CAT_WAIT,
    CAT_QUEUE,
    CAT_BARRIER,
)

#: Lane value for spans that belong to the construct as a whole rather
#: than to one processor/thread.
WHOLE_RUN_LANE = -1


@dataclass(frozen=True)
class Span:
    """One contiguous interval of categorized activity on one lane.

    Attributes
    ----------
    name:
        What happened (``"inspector"``, ``"level[3]"``, ``"wait"`` ...).
    cat:
        One of :data:`SPAN_CATEGORIES`.
    start, end:
        Interval bounds in the telemetry clock (``end >= start``).
    lane:
        Processor/thread index, or :data:`WHOLE_RUN_LANE` for
        construct-wide spans.
    attrs:
        Small JSON-safe payload (cache hit flag, wavefront width, ...).
    """

    name: str
    cat: str
    start: float
    end: float
    lane: int = WHOLE_RUN_LANE
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, offset: float) -> "Span":
        """The same span translated by ``offset`` along the time axis."""
        return Span(
            name=self.name,
            cat=self.cat,
            start=self.start + offset,
            end=self.end + offset,
            lane=self.lane,
            attrs=self.attrs,
        )

    def as_dict(self) -> dict:
        """JSON-safe flat form (the schema the exporters consume)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "start": float(self.start),
            "end": float(self.end),
            "lane": int(self.lane),
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Thread-safe span sink the instrumented backends write into.

    ``now()`` reads the wall clock (``time.perf_counter``); backends whose
    time axis is simulated cycles construct spans from their own clocks and
    feed them through :meth:`record` / :meth:`extend` directly.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    @staticmethod
    def now() -> float:
        return time.perf_counter()

    def record(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        lane: int = WHOLE_RUN_LANE,
        **attrs,
    ) -> None:
        """Append one span; zero/negative-length spans are dropped (they
        carry no accounting weight and only clutter exports)."""
        if end <= start:
            return
        span = Span(name=name, cat=cat, start=start, end=end, lane=lane, attrs=attrs)
        with self._lock:
            self.spans.append(span)

    def extend(self, spans: list[Span]) -> None:
        with self._lock:
            self.spans.extend(spans)

    @contextmanager
    def span(
        self, name: str, cat: str = CAT_PHASE, lane: int = WHOLE_RUN_LANE, **attrs
    ) -> Iterator[None]:
        """Context manager recording the enclosed wall-clock interval."""
        start = self.now()
        try:
            yield
        finally:
            self.record(name, cat, start, self.now(), lane=lane, **attrs)

    def normalized(self) -> list[Span]:
        """All spans shifted so the earliest start sits at t=0, sorted by
        start time (the form :class:`~repro.obs.telemetry.Telemetry`
        stores)."""
        with self._lock:
            spans = list(self.spans)
        if not spans:
            return []
        t0 = min(s.start for s in spans)
        return sorted(
            (s.shifted(-t0) for s in spans), key=lambda s: (s.start, s.lane)
        )
