"""Structured spans: the unit of the cross-backend telemetry model.

A :class:`Span` is one named, categorized time interval on one *lane*
(processor, thread, or the whole construct).  Every backend emits the same
span vocabulary so the paper's accounting argument — preprocessing cost
amortized over executor busy-wait savings (§2.2–§3) — can be read off any
backend, not just the simulated one:

- category ``"phase"`` spans named ``inspector`` / ``executor`` /
  ``postprocessor`` mirror Figure 3's pipeline stages;
- category ``"wait"`` spans are the busy-waits of Figure 2/5 (simulated:
  :data:`~repro.machine.trace.SEG_WAIT` segments; threaded: blocked
  ``threading.Event.wait`` calls);
- category ``"compute"`` / ``"queue"`` spans match the simulated
  :class:`~repro.machine.trace.Tracer` segment kinds;
- category ``"level"`` spans are the vectorized backend's per-wavefront
  batches (§3.2 doconsider decomposition);
- one category ``"run"`` span brackets the whole construct.

Span times are floats in the clock of the enclosing
:class:`~repro.obs.telemetry.Telemetry` blob — wall-clock seconds for the
threaded/vectorized backends, simulated cycles for the simulated backend.

:class:`SpanRecorder` is the collection point backends write into.  It is
thread-safe (the threaded backend records from worker threads) and
deliberately tiny: recording a span is one lock acquire and one list
append, cheap enough to leave enabled for whole benchmark runs.  Hot
loops that would otherwise record tens of thousands of spans (the
threaded executor's per-blocking-wait compute/wait splits) buffer raw
rows locally and hand them over in one :meth:`record_batch` call;
``Span`` objects are materialized lazily, outside the timed region.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CAT_RUN",
    "CAT_PHASE",
    "CAT_LEVEL",
    "CAT_COMPUTE",
    "CAT_WAIT",
    "CAT_QUEUE",
    "CAT_BARRIER",
    "SPAN_CATEGORIES",
    "WHOLE_RUN_LANE",
    "Span",
    "SpanRecorder",
]

CAT_RUN = "run"
CAT_PHASE = "phase"
CAT_LEVEL = "level"
CAT_COMPUTE = "compute"
CAT_WAIT = "wait"
CAT_QUEUE = "queue"
CAT_BARRIER = "barrier"

#: Every category a conforming telemetry blob may use.
SPAN_CATEGORIES = (
    CAT_RUN,
    CAT_PHASE,
    CAT_LEVEL,
    CAT_COMPUTE,
    CAT_WAIT,
    CAT_QUEUE,
    CAT_BARRIER,
)

#: Lane value for spans that belong to the construct as a whole rather
#: than to one processor/thread.
WHOLE_RUN_LANE = -1


@dataclass(frozen=True)
class Span:
    """One contiguous interval of categorized activity on one lane.

    Attributes
    ----------
    name:
        What happened (``"inspector"``, ``"level[3]"``, ``"wait"`` ...).
    cat:
        One of :data:`SPAN_CATEGORIES`.
    start, end:
        Interval bounds in the telemetry clock (``end >= start``).
    lane:
        Processor/thread index, or :data:`WHOLE_RUN_LANE` for
        construct-wide spans.
    attrs:
        Small JSON-safe payload (cache hit flag, wavefront width, ...).
    """

    name: str
    cat: str
    start: float
    end: float
    lane: int = WHOLE_RUN_LANE
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, offset: float) -> "Span":
        """The same span translated by ``offset`` along the time axis."""
        return Span(
            name=self.name,
            cat=self.cat,
            start=self.start + offset,
            end=self.end + offset,
            lane=self.lane,
            attrs=self.attrs,
        )

    def as_dict(self) -> dict:
        """JSON-safe flat form (the schema the exporters consume)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "start": float(self.start),
            "end": float(self.end),
            "lane": int(self.lane),
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Thread-safe span sink the instrumented backends write into.

    ``now()`` reads the wall clock (``time.perf_counter``); backends whose
    time axis is simulated cycles construct spans from their own clocks and
    feed them through :meth:`record` / :meth:`extend` directly.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        # Raw (name, cat, start, end, lane, attrs|None) rows from
        # record_batch(), materialized into Span objects on first read —
        # keeps Span construction out of the workers' timed region.
        self._pending: list[tuple] = []
        # (lane, start, end, waits) tiles from record_wait_segments().
        self._pending_segments: list[tuple] = []

    @staticmethod
    def now() -> float:
        return time.perf_counter()

    def record(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        lane: int = WHOLE_RUN_LANE,
        **attrs,
    ) -> None:
        """Append one span; zero/negative-length spans are dropped (they
        carry no accounting weight and only clutter exports)."""
        if end <= start:
            return
        span = Span(name=name, cat=cat, start=start, end=end, lane=lane, attrs=attrs)
        with self._lock:
            self.spans.append(span)

    def extend(self, spans: list[Span]) -> None:
        with self._lock:
            self.spans.extend(spans)

    def record_batch(self, rows: list[tuple]) -> None:
        """Hand over many spans as raw ``(name, cat, start, end, lane,
        attrs_or_None)`` rows in one lock acquire.

        The hot-loop contract: callers append plain tuples to a thread-local
        list (no locking, no object construction) and flush once per worker.
        Rows become :class:`Span` objects lazily — the first
        :meth:`normalized` (or :meth:`drain_pending`) call pays the
        construction cost, which the instrumented wrapper only issues after
        the wall clock has been read.  Zero/negative-length rows are dropped
        at materialization, matching :meth:`record`."""
        with self._lock:
            self._pending.extend(rows)

    def record_wait_segments(
        self,
        lane: int,
        start: float,
        end: float,
        waits: list[tuple],
    ) -> None:
        """Compact form of the executor's alternating compute/wait tiling.

        ``waits`` is a list of ``(w0, w1, element)`` blocking-wait triples
        inside ``[start, end)``, in time order.  Materialization expands
        them into the usual alternating ``compute``/``wait`` spans that
        exactly tile ``[start, end)`` — the backend's hot loop only pays
        one 3-tuple append per blocking wait, and the expansion (two Span
        constructions per wait) runs outside the timed region."""
        with self._lock:
            self._pending_segments.append((lane, start, end, waits))

    def drain_pending(self) -> None:
        """Materialize buffered :meth:`record_batch` rows and
        :meth:`record_wait_segments` tiles into ``spans``."""
        with self._lock:
            pending, self._pending = self._pending, []
            segments, self._pending_segments = self._pending_segments, []
            out = self.spans.append
            for name, cat, start, end, lane, attrs in pending:
                if end <= start:
                    continue
                out(
                    Span(
                        name=name,
                        cat=cat,
                        start=start,
                        end=end,
                        lane=lane,
                        attrs={} if attrs is None else attrs,
                    )
                )
            for lane, start, end, waits in segments:
                seg = start
                for w0, w1, elem in waits:
                    if w0 > seg:
                        out(Span("compute", CAT_COMPUTE, seg, w0, lane, {}))
                    if w1 > w0:
                        out(
                            Span(
                                "wait", CAT_WAIT, w0, w1, lane,
                                {"element": int(elem)},
                            )
                        )
                    seg = w1
                if end > seg:
                    out(Span("compute", CAT_COMPUTE, seg, end, lane, {}))

    @contextmanager
    def span(
        self, name: str, cat: str = CAT_PHASE, lane: int = WHOLE_RUN_LANE, **attrs
    ) -> Iterator[None]:
        """Context manager recording the enclosed wall-clock interval."""
        start = self.now()
        try:
            yield
        finally:
            self.record(name, cat, start, self.now(), lane=lane, **attrs)

    def normalized(self) -> list[Span]:
        """All spans shifted so the earliest start sits at t=0, sorted by
        start time (the form :class:`~repro.obs.telemetry.Telemetry`
        stores)."""
        self.drain_pending()
        with self._lock:
            spans = list(self.spans)
        if not spans:
            return []
        t0 = min(s.start for s in spans)
        return sorted(
            (s.shifted(-t0) for s in spans), key=lambda s: (s.start, s.lane)
        )
