"""``python -m repro analyze`` — symbolic dependence verdicts from the shell.

Targets resolve exactly like ``python -m repro lint`` targets (see
:mod:`repro.lint.cli`): ``.py`` files exposing loops through the
``build_loops()`` / ``LOOPS`` / ``build_loop()`` hooks, directories of
such files, or builtin specs (``figure4[:n=..,m=..,l=..]``,
``chain[:n=..,d=..]``, ``random[:n=..,seed=..]``).

Options
-------
``--json``         machine-readable verdicts, proof objects included
``--cross-check``  additionally validate every verdict against the
                   runtime inspector (:func:`repro.analysis.cross_check`)

Exit status: 0 when every verdict's proof checks out (and, with
``--cross-check``, matches the runtime inspector), 1 on any problem,
2 on usage errors.
"""

from __future__ import annotations

import json
import sys

from repro.analysis.checker import check_proof, cross_check
from repro.analysis.engine import analyze_loop

__all__ = ["main"]


def main(argv: list[str]) -> int:
    from repro.lint.cli import collect_loops

    as_json = False
    do_cross = False
    targets: list[str] = []
    try:
        for arg in argv:
            if arg == "--json":
                as_json = True
            elif arg == "--cross-check":
                do_cross = True
            elif arg.startswith("-"):
                raise ValueError(f"unknown analyze option {arg!r}")
            else:
                targets.append(arg)
        if not targets:
            raise ValueError(
                "no targets; give a .py file, a directory, or a builtin "
                "spec (figure4/chain/random)"
            )
        loops = collect_loops(targets)
    except ValueError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    records: list[dict] = []
    failed = 0
    for source, name, loop in loops:
        verdict = analyze_loop(loop)
        if do_cross:
            report = cross_check(loop, verdict)
            problems = list(report.problems)
            checked_terms = report.checked_terms
        else:
            problems = check_proof(loop, verdict)
            checked_terms = None
        if problems:
            failed += 1
        record = {
            "source": source,
            "loop": name,
            "verdict": verdict.as_dict(),
            "elidable": verdict.elidable,
            "problems": problems,
        }
        if checked_terms is not None:
            record["checked_terms"] = checked_terms
        records.append(record)
        if not as_json:
            print(f"== {name} ({source}) ==")
            print(verdict.describe())
            if do_cross:
                status = "OK" if not problems else "MISMATCH"
                print(
                    f"cross-check {status} ({checked_terms} term(s) "
                    f"validated against the runtime inspector)"
                )
            for problem in problems:
                print("  ! " + problem)
            print()

    if as_json:
        print(json.dumps({"targets": records, "failed": failed}, indent=2))
    else:
        print(
            f"analyzed {len(loops)} loop(s) from {len(targets)} "
            f"target(s); {failed} with problems"
        )
    return 1 if failed else 0
