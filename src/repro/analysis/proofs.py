"""Machine-checkable proof objects.

A :class:`Proof` is a sequence of :class:`ProofStep`\\ s, one per derived
conclusion (write injectivity, one per read slot, one composition step).
Each step cites the rule it applied and a list of :class:`Check` side
conditions over *concrete integers* — ``divides(2, 6)``,
``incongruent(1, 0, 2)`` — which :func:`evaluate_check` can re-evaluate
without re-running the analysis.  That is what makes a shipped verdict
auditable: the checker recomputes the facts, re-evaluates every side
condition, and re-derives the composition, all independently of the
engine instance that produced the proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Tuple

__all__ = [
    "Check",
    "ProofStep",
    "Proof",
    "evaluate_check",
    "RULE_SINGLE_ITERATION",
    "RULE_AFFINE_INJECTIVE",
    "RULE_MONOTONE_INJECTIVE",
    "RULE_INACTIVE_SLOT",
    "RULE_IDENTICAL_SUBSCRIPT",
    "RULE_SAME_STRIDE",
    "RULE_CONGRUENCE_DISJOINT",
    "RULE_INTERVAL_DISJOINT",
    "RULE_MONOTONE_NO_TRUE",
    "RULE_NO_READS",
    "RULE_COMPOSE",
]

# Rule identifiers (cited by proof steps and surfaced in lint messages).
RULE_SINGLE_ITERATION = "single-iteration"
RULE_AFFINE_INJECTIVE = "affine-injective"
RULE_MONOTONE_INJECTIVE = "monotone-injective"
RULE_INACTIVE_SLOT = "inactive-slot"
RULE_IDENTICAL_SUBSCRIPT = "identical-subscript"
RULE_SAME_STRIDE = "same-stride-distance"
RULE_CONGRUENCE_DISJOINT = "congruence-disjoint"
RULE_INTERVAL_DISJOINT = "interval-disjoint"
RULE_MONOTONE_NO_TRUE = "monotone-no-true"
RULE_NO_READS = "no-read-terms"
RULE_COMPOSE = "compose-verdict"


@dataclass(frozen=True)
class Check:
    """One concrete side condition: ``kind`` applied to integer ``args``."""

    kind: str
    args: Tuple[int, ...]

    def describe(self) -> str:
        a = self.args
        templates = {
            "eq": "{0} == {1}",
            "ne": "{0} != {1}",
            "lt": "{0} < {1}",
            "le": "{0} <= {1}",
            "gt": "{0} > {1}",
            "ge": "{0} >= {1}",
            "divides": "{0} | {1}",
            "not-divides": "{0} ∤ {1}",
            "disjoint-intervals": "[{0},{1}] ∩ [{2},{3}] = ∅",
            "incongruent": "{0} ≢ {1} (mod {2})",
            "empty-range": "[{0},{1}) = ∅",
        }
        template = templates.get(self.kind, self.kind + str(a))
        return template.format(*a)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "args": list(self.args)}


def evaluate_check(check: Check) -> bool:
    """Re-evaluate a side condition from its concrete arguments."""
    kind, a = check.kind, check.args
    if kind == "eq":
        return a[0] == a[1]
    if kind == "ne":
        return a[0] != a[1]
    if kind == "lt":
        return a[0] < a[1]
    if kind == "le":
        return a[0] <= a[1]
    if kind == "gt":
        return a[0] > a[1]
    if kind == "ge":
        return a[0] >= a[1]
    if kind == "divides":
        return a[0] != 0 and a[1] % a[0] == 0
    if kind == "not-divides":
        return a[0] != 0 and a[1] % a[0] != 0
    if kind == "disjoint-intervals":
        lo1, hi1, lo2, hi2 = a
        return hi1 < lo2 or hi2 < lo1
    if kind == "incongruent":
        r1, r2, m = a
        if m == 0:
            return r1 != r2
        return (r1 - r2) % m != 0
    if kind == "empty-range":
        return a[1] <= a[0]
    raise ValueError(f"unknown check kind {kind!r}")


@dataclass(frozen=True)
class ProofStep:
    """One derivation: ``rule`` applied to ``target`` under ``checks``."""

    rule: str
    target: str
    conclusion: str
    checks: Tuple[Check, ...] = ()
    facts: Tuple[Tuple[str, tuple], ...] = ()

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "target": self.target,
            "conclusion": self.conclusion,
            "checks": [c.as_dict() for c in self.checks],
            "facts": {name: list(value) for name, value in self.facts},
        }

    def describe(self) -> str:
        conds = "; ".join(c.describe() for c in self.checks)
        suffix = f"  [{conds}]" if conds else ""
        return f"{self.target}: {self.conclusion} ({self.rule}){suffix}"


@dataclass(frozen=True)
class Proof:
    """An auditable derivation of a dependence verdict."""

    steps: Tuple[ProofStep, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict:
        return {"steps": [s.as_dict() for s in self.steps]}

    def describe(self) -> str:
        return "\n".join(s.describe() for s in self.steps)

    def failed_checks(self) -> list[tuple[ProofStep, Check]]:
        """Every side condition that does not re-evaluate to true."""
        bad = []
        for step in self.steps:
            for check in step.checks:
                if not evaluate_check(check):
                    bad.append((step, check))
        return bad


def congruence_meet_modulus(m1: int, m2: int) -> int:
    """Modulus under which two congruence classes must agree to alias."""
    return gcd(m1, m2)
