"""Proof checking and runtime cross-validation.

Two independent layers of defense for shipped verdicts:

- :func:`check_proof` audits the proof object itself: every concrete side
  condition must re-evaluate true (:func:`~repro.analysis.proofs
  .evaluate_check`) and an independent re-derivation must reach the same
  verdict.
- :func:`cross_check` compares the verdict against the *runtime
  inspector's* value-level answer (:mod:`repro.ir.analysis`) on this loop
  instance: a DOALL-proven loop must show no true dependence, a
  constant-distance verdict must match every observed distance, and each
  slot's claimed classification must match the observed category of every
  one of its terms.  This is the debug mode behind
  ``make_runner(..., analyze="symbolic+check")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.engine import analyze_loop, slot_term_map
from repro.analysis.verdicts import (
    SLOT_ANTI,
    SLOT_INTRA,
    SLOT_NO_TRUE,
    SLOT_NONE,
    SLOT_TRUE,
    SLOT_UNKNOWN,
    VERDICT_CONSTANT_DISTANCE,
    VERDICT_DOALL,
    DependenceVerdict,
    SlotDependence,
)
from repro.errors import ProofError
from repro.ir.loop import IrregularLoop
from repro.ir.analysis import (
    CAT_ANTI,
    CAT_INTRA,
    CAT_NONE,
    CAT_TRUE,
    classify_reads,
    observed_distances,
)

__all__ = ["check_proof", "cross_check", "CrossCheckReport"]


def check_proof(
    loop: IrregularLoop, verdict: DependenceVerdict | None = None
) -> list[str]:
    """Audit a verdict's proof object; returns a list of problems."""
    if verdict is None:
        verdict = analyze_loop(loop)
    problems: list[str] = []
    for step, check in verdict.proof.failed_checks():
        problems.append(
            f"{step.target}: side condition {check.describe()} of rule "
            f"{step.rule!r} does not hold"
        )
    rederived = analyze_loop(loop, use_cache=False)
    if rederived.signature() != verdict.signature():
        problems.append(
            f"re-derivation reached {rederived.kind!r} "
            f"(d={rederived.distance}), shipped verdict is "
            f"{verdict.kind!r} (d={verdict.distance})"
        )
    return problems


@dataclass
class CrossCheckReport:
    """Outcome of validating a verdict against the runtime inspector."""

    loop_name: str
    verdict_kind: str
    checked_terms: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        status = "OK" if self.ok else "MISMATCH"
        head = (
            f"{self.loop_name}: {self.verdict_kind} cross-check {status} "
            f"({self.checked_terms} terms)"
        )
        return "\n".join([head] + ["  " + p for p in self.problems])


def _check_slot_terms(
    dep: SlotDependence,
    categories: np.ndarray,
    readers: np.ndarray,
    writers: np.ndarray,
    problems: list[str],
) -> None:
    """Validate one slot's claimed classification against the observed
    per-term categories (``categories`` etc. already filtered to the
    slot's terms)."""
    tag = f"slot {dep.slot}"
    if dep.kind == SLOT_UNKNOWN:
        return
    if dep.kind == SLOT_NONE:
        bad = categories != CAT_NONE
        if bad.any():
            k = int(np.nonzero(bad)[0][0])
            problems.append(
                f"{tag}: claimed no-reference but iteration "
                f"{int(readers[k])} observes category {int(categories[k])}"
            )
        return
    if dep.kind == SLOT_INTRA:
        bad = categories != CAT_INTRA
        if bad.any():
            k = int(np.nonzero(bad)[0][0])
            problems.append(
                f"{tag}: claimed intra but iteration {int(readers[k])} "
                f"observes category {int(categories[k])}"
            )
        return
    if dep.kind == SLOT_NO_TRUE:
        bad = (categories == CAT_TRUE) | (categories == CAT_INTRA)
        if bad.any():
            k = int(np.nonzero(bad)[0][0])
            problems.append(
                f"{tag}: claimed anti-or-none but iteration "
                f"{int(readers[k])} observes category {int(categories[k])}"
            )
        return
    # TRUE / ANTI: exact category and writer inside dep_range, NONE outside.
    a, b = dep.dep_range
    inside = (readers >= a) & (readers < b)
    want = CAT_TRUE if dep.kind == SLOT_TRUE else CAT_ANTI
    bad_in = inside & (categories != want)
    if bad_in.any():
        k = int(np.nonzero(bad_in)[0][0])
        problems.append(
            f"{tag}: claimed {dep.kind} on [{a}, {b}) but iteration "
            f"{int(readers[k])} observes category {int(categories[k])}"
        )
    wrong_writer = inside & (writers != readers - dep.distance)
    if wrong_writer.any():
        k = int(np.nonzero(wrong_writer)[0][0])
        problems.append(
            f"{tag}: claimed distance {dep.distance} but iteration "
            f"{int(readers[k])} depends on writer {int(writers[k])}"
        )
    bad_out = ~inside & (categories != CAT_NONE)
    if bad_out.any():
        k = int(np.nonzero(bad_out)[0][0])
        problems.append(
            f"{tag}: claimed no-reference outside [{a}, {b}) but "
            f"iteration {int(readers[k])} observes category "
            f"{int(categories[k])}"
        )


def cross_check(
    loop: IrregularLoop,
    verdict: DependenceVerdict | None = None,
    strict: bool = False,
) -> CrossCheckReport:
    """Validate ``verdict`` against the runtime inspector on ``loop``.

    With ``strict=True`` a mismatch raises :class:`ProofError` instead of
    being reported — the behavior of the debug elision mode.
    """
    if verdict is None:
        verdict = analyze_loop(loop)
    report = CrossCheckReport(
        loop_name=loop.name, verdict_kind=verdict.kind
    )
    report.problems.extend(check_proof(loop, verdict))

    readers, writers, categories = classify_reads(loop)
    report.checked_terms = len(categories)

    if verdict.slots and loop.read_slots is not None:
        try:
            sids = slot_term_map(loop)
        except ProofError as exc:
            report.problems.append(str(exc))
            sids = None
        if sids is not None:
            # Declared subscripts must produce the materialized indices.
            for dep, slot in zip(verdict.slots, loop.read_slots):
                mask = sids == dep.slot
                if not mask.any():
                    continue
                lo, hi = slot.active_range(loop.n)
                expected = slot.subscript.materialize(hi)[readers[mask]]
                actual = loop.reads.index[np.nonzero(mask)[0]]
                if not np.array_equal(expected, actual):
                    k = int(np.nonzero(expected != actual)[0][0])
                    i = int(readers[mask][k])
                    report.problems.append(
                        f"slot {dep.slot}: declared subscript gives "
                        f"{int(expected[k])} at iteration {i}, read "
                        f"table has {int(actual[k])}"
                    )
                    continue
                _check_slot_terms(
                    dep,
                    categories[mask],
                    readers[mask],
                    writers[mask],
                    report.problems,
                )

    if verdict.kind == VERDICT_DOALL:
        if np.any(categories == CAT_TRUE):
            k = int(np.nonzero(categories == CAT_TRUE)[0][0])
            report.problems.append(
                f"DOALL-proven, but the inspector observes a true "
                f"dependence at iteration {int(readers[k])} "
                f"(writer {int(writers[k])})"
            )
    elif verdict.kind == VERDICT_CONSTANT_DISTANCE:
        observed = observed_distances(loop)
        if len(observed) != 1 or int(observed[0]) != verdict.distance:
            report.problems.append(
                f"constant-distance d={verdict.distance} claimed, "
                f"inspector observes distances "
                f"{observed.tolist() or 'none'}"
            )
    if verdict.min_distance is not None:
        observed = observed_distances(loop)
        if len(observed) and int(observed[0]) < verdict.min_distance:
            report.problems.append(
                f"battery claims every true dependence has distance "
                f">= {verdict.min_distance}, inspector observes "
                f"distance {int(observed[0])}"
            )
    if verdict.write_injective:
        if len(np.unique(loop.write)) != loop.n:
            report.problems.append(
                "write claimed injective but materialized values collide"
            )

    if strict and not report.ok:
        raise ProofError(
            f"symbolic verdict failed runtime cross-check:\n"
            f"{report.describe()}"
        )
    return report
