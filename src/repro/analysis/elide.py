"""Inspector elision: the §2.3 payoff, generalized.

When a loop's verdict is fully classified (write proven injective, every
read slot's dependence known in closed form), the runtime inspector has
nothing left to discover: :func:`build_symbolic_record` constructs the
exact :class:`~repro.backends.cache.InspectorRecord` the inspector would
have produced — ``iter`` array from the write's closed form, per-term
true/intra flags from the slot proofs, wavefront levels from the proven
distances — without classifying a single read term against memory.  The
record feeds the same executor, so results are bitwise identical to the
full-inspector path (asserted by the debug mode and the test suite).

A fully proven loop is also content-free for caching purposes: its record
is determined by structure alone, so :func:`symbolic_fingerprint` keys the
InspectorCache without hashing the index arrays — loops with identical
proofs share one entry.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.analysis.engine import analyze_loop
from repro.analysis.verdicts import (
    SLOT_INTRA,
    SLOT_TRUE,
    DependenceVerdict,
)
from repro.backends.cache import InspectorRecord, assemble_record
from repro.core.workspace import MAXINT
from repro.errors import ProofError
from repro.graph.levels import LevelSchedule
from repro.ir.loop import IrregularLoop
from repro.ir.transform import plan_transform, structural_signature

__all__ = [
    "build_symbolic_record",
    "build_distance_record",
    "symbolic_fingerprint",
    "distance_fingerprint",
    "records_equal",
    "record_mismatches",
]


def symbolic_fingerprint(loop: IrregularLoop) -> str:
    """Structure-only cache key for a fully proven loop.

    Unlike :func:`repro.backends.cache.loop_fingerprint` this hashes no
    array contents — for an elidable loop the structural signature (which
    embeds the slot closed forms and the verdict) already determines the
    whole inspector record.
    """
    h = hashlib.sha256()
    h.update(b"symbolic|")
    h.update(repr(structural_signature(loop)).encode())
    return h.hexdigest()


def _slot_term_layout(loop: IrregularLoop) -> tuple[np.ndarray, np.ndarray]:
    """Per-flat-term ``(iteration, slot)`` in read-table order, with the
    per-iteration counts validated against the table."""
    n = loop.n
    ranges = [slot.active_range(n) for slot in loop.read_slots]
    counts = np.zeros(n, dtype=np.int64)
    for lo, hi in ranges:
        counts[lo:hi] += 1
    if not np.array_equal(counts, loop.reads.term_counts()):
        bad = int(np.nonzero(counts != loop.reads.term_counts())[0][0])
        raise ProofError(
            f"{loop.name}: declared slots give {int(counts[bad])} term(s) "
            f"at iteration {bad}, read table has "
            f"{int(loop.reads.term_count(bad))}"
        )
    if not ranges:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    iters = np.concatenate(
        [np.arange(lo, hi, dtype=np.int64) for lo, hi in ranges]
    )
    sids = np.concatenate(
        [
            np.full(hi - lo, j, dtype=np.int64)
            for j, (lo, hi) in enumerate(ranges)
        ]
    )
    order = np.lexsort((sids, iters))
    return iters[order], sids[order]


def _chain_levels(has_pred: np.ndarray, delta: int) -> np.ndarray:
    """Wavefront levels for a single constant distance ``delta``:
    ``level[i] = level[i − delta] + 1`` where a predecessor exists, else 0.

    Along each residue chain ``r, r+δ, r+2δ, …`` the level is the run
    length of consecutive predecessors, computed by one
    ``maximum.accumulate`` over a ``(rows, δ)`` reshape.
    """
    n = len(has_pred)
    rows = -(-n // delta)
    padded = np.zeros(rows * delta, dtype=bool)
    padded[:n] = has_pred
    grid = padded.reshape(rows, delta)
    row_idx = np.arange(rows, dtype=np.int64)[:, None]
    # Latest row at or before q with no predecessor; row 0 never has one
    # (i < δ cannot reach back), so the accumulate is always grounded.
    last_clear = np.maximum.accumulate(
        np.where(~grid, row_idx, -1), axis=0
    )
    levels = (row_idx - last_clear).reshape(-1)[:n]
    return levels.astype(np.int64)


def _schedule_from_levels(levels: np.ndarray) -> LevelSchedule:
    """The deterministic LevelSchedule layout for given levels (identical
    to the tail of :func:`repro.graph.levels.compute_levels`)."""
    n = len(levels)
    order = np.lexsort(
        (np.arange(n, dtype=np.int64), levels)
    ).astype(np.int64)
    n_levels = int(levels.max()) + 1 if n else 0
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    if n:
        level_ptr[1:] = np.cumsum(np.bincount(levels, minlength=n_levels))
    return LevelSchedule(levels=levels, order=order, level_ptr=level_ptr)


def build_symbolic_record(
    loop: IrregularLoop,
    verdict: DependenceVerdict | None = None,
) -> InspectorRecord:
    """Construct the inspector's output from the symbolic verdict alone.

    Raises :class:`ProofError` when the verdict is not elidable or the
    declared slots do not tile the loop's read table.  The produced
    record is array-for-array identical to
    :func:`repro.backends.cache.build_inspector_record` — the claim the
    ``analyze="symbolic+check"`` debug mode re-verifies on every run.
    """
    if verdict is None:
        verdict = analyze_loop(loop)
    if not verdict.elidable:
        raise ProofError(
            f"{loop.name}: verdict {verdict.kind!r} is not elidable "
            f"(write_injective={verdict.write_injective}, "
            f"fully_classified={verdict.fully_classified})"
        )
    n, y_size = loop.n, loop.y_size

    # The paper's iter array, from the write's closed form — no inspection.
    iter_array = np.full(y_size, MAXINT, dtype=np.int64)
    iter_array[loop.write] = np.arange(n, dtype=np.int64)

    # Per-term classification from the slot proofs.
    total = loop.reads.total_terms
    true_flat = np.zeros(total, dtype=bool)
    intra_flat = np.zeros(total, dtype=bool)
    true_slots = []
    if loop.read_slots is not None and len(loop.read_slots):
        iters, sids = _slot_term_layout(loop)
        for dep in verdict.slots:
            mask = sids == dep.slot
            if dep.kind == SLOT_INTRA:
                intra_flat[mask] = True
            elif dep.kind == SLOT_TRUE:
                a, b = dep.dep_range
                true_flat[mask & (iters >= a) & (iters < b)] = True
                true_slots.append(dep)
    elif total:
        raise ProofError(
            f"{loop.name}: read terms exist but no slots are declared"
        )

    # Wavefront levels from the proven distances.
    if not true_slots:
        levels = np.zeros(n, dtype=np.int64)
        schedule = _schedule_from_levels(levels)
    else:
        distances = {dep.distance for dep in true_slots}
        has_pred = np.zeros(n, dtype=bool)
        for dep in true_slots:
            a, b = dep.dep_range
            has_pred[a:b] = True
        if len(distances) == 1:
            levels = _chain_levels(has_pred, true_slots[0].distance)
            schedule = _schedule_from_levels(levels)
        else:
            # Mixed constant distances: emit the dependence pairs in
            # closed form (still no memory inspection) and reuse the
            # standard level computation.
            from repro.graph.depgraph import DependenceGraph
            from repro.graph.levels import compute_levels

            pair_list = [
                np.stack(
                    [
                        np.arange(a, b, dtype=np.int64) - dep.distance,
                        np.arange(a, b, dtype=np.int64),
                    ],
                    axis=1,
                )
                for dep in true_slots
                for a, b in [dep.dep_range]
            ]
            pairs = np.unique(np.concatenate(pair_list, axis=0), axis=0)
            schedule = compute_levels(DependenceGraph(n, pairs))

    return assemble_record(
        loop,
        iter_array=iter_array,
        schedule=schedule,
        true_flat=true_flat,
        intra_flat=intra_flat,
        plan=plan_transform(loop, verdict=verdict),
        fingerprint=symbolic_fingerprint(loop),
    )


def distance_fingerprint(loop: IrregularLoop, group: int) -> str:
    """Cache key for a group-synchronous record.

    Unlike :func:`symbolic_fingerprint` this is *content*-addressed (via
    :func:`~repro.backends.cache.loop_fingerprint`): the record's per-term
    flags come from materialized subscripts, so loops that share a proof
    but not index contents must not share an entry.
    """
    from repro.backends.cache import loop_fingerprint

    h = hashlib.sha256()
    h.update(f"distance|{int(group)}|".encode())
    h.update(loop_fingerprint(loop).encode())
    return h.hexdigest()


def build_distance_record(
    loop: IrregularLoop,
    group: int,
    verdict: DependenceVerdict | None = None,
) -> InspectorRecord:
    """Inspector record whose wavefronts are distance groups ``i // group``.

    The dependence-test battery's bound ``min_distance >= group`` proves
    every cross-iteration true dependence reaches back into a strictly
    earlier group, so the groups are legal wavefront levels — usually far
    wider (and far fewer) than the exact DAG levels.  Unlike
    :func:`build_symbolic_record` this does **not** elide the inspector:
    per-term flags still come from the materialized subscripts (the
    verdict need not be fully classified — a ``min-distance-k`` bound on
    an unclassifiable read side is enough).  Raises
    :class:`~repro.errors.ProofError` when the bound does not hold
    statically, or when the inspector's observed distances contradict it
    (the runtime rendering of the lint rule ``DISTANCE-MISMATCH``).
    """
    from repro.ir.analysis import CAT_INTRA, CAT_TRUE, classify_reads

    if group < 1:
        raise ProofError(f"{loop.name}: group size must be >= 1, got {group}")
    if verdict is None:
        verdict = analyze_loop(loop)
    m = verdict.min_distance
    if m is None or m < group:
        raise ProofError(
            f"{loop.name}: no proven dependence-distance bound >= {group} "
            f"(battery bound: {m})"
        )
    n, y_size = loop.n, loop.y_size

    iter_array = np.full(y_size, MAXINT, dtype=np.int64)
    iter_array[loop.write] = np.arange(n, dtype=np.int64)

    readers, writers, categories = classify_reads(loop)
    true_flat = categories == CAT_TRUE
    intra_flat = categories == CAT_INTRA
    observed = (readers - writers)[true_flat]
    if len(observed) and int(observed.min()) < group:
        raise ProofError(
            f"{loop.name}: inspector observes a true dependence of "
            f"distance {int(observed.min())}, contradicting the proven "
            f"bound >= {group} (distance mismatch)"
        )

    levels = np.arange(n, dtype=np.int64) // int(group)
    return assemble_record(
        loop,
        iter_array=iter_array,
        schedule=_schedule_from_levels(levels),
        true_flat=true_flat,
        intra_flat=intra_flat,
        plan=plan_transform(loop, verdict=verdict),
        fingerprint=distance_fingerprint(loop, group),
    )


_RECORD_ARRAYS = (
    "iter_array",
    "exec_order",
    "exec_counts",
    "exec_ptr",
    "exec_write",
    "term_source",
    "env_index",
    "intra",
    "slot_active",
    "slot_ptr",
)


def record_mismatches(
    symbolic: InspectorRecord, runtime: InspectorRecord
) -> list[str]:
    """Field-by-field comparison of two records (ignoring fingerprints
    and plans, which legitimately differ between the paths)."""
    problems = []
    for name in _RECORD_ARRAYS:
        a, b = getattr(symbolic, name), getattr(runtime, name)
        if not np.array_equal(a, b):
            problems.append(f"record field {name!r} differs")
    for name in ("levels", "order", "level_ptr"):
        a = getattr(symbolic.schedule, name)
        b = getattr(runtime.schedule, name)
        if not np.array_equal(a, b):
            problems.append(f"schedule field {name!r} differs")
    return problems


def records_equal(
    symbolic: InspectorRecord, runtime: InspectorRecord
) -> bool:
    return not record_mismatches(symbolic, runtime)
