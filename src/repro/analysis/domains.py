"""Abstract domains for symbolic subscript analysis.

Four cheap, composable domains over integer expressions of the loop index:

- **Affine** — the exact form ``c·i + d`` when one exists (the paper's §2.3
  linear subscript), or TOP.
- **Congruence** — ``value ≡ residue (mod modulus)``.  ``modulus == 0``
  means the value is exactly the constant ``residue``; ``modulus == 1``
  carries no information.  Separates, e.g., an odd affine write from an
  even ``(i // 2) * 2`` read.
- **Interval** — inclusive bounds ``[lo, hi]`` over the iteration range
  being analyzed.
- **Monotonicity** — direction (+1 / −1 / 0) and strictness as a function
  of the loop index.  Strict monotonicity proves injectivity for
  non-affine closed forms.

Every fact is a small frozen dataclass so proofs can embed them verbatim
and the checker can recompute and compare them structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Optional

__all__ = [
    "AffineFact",
    "CongruenceFact",
    "IntervalFact",
    "MonotonicityFact",
    "DomainFacts",
    "AFFINE_TOP",
    "CONGRUENCE_TOP",
    "MONOTONICITY_UNKNOWN",
]


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AffineFact:
    """``i ↦ c·i + d`` exactly, or TOP (no affine form known)."""

    c: int = 0
    d: int = 0
    is_top: bool = False

    def __repr__(self) -> str:
        if self.is_top:
            return "affine:⊤"
        return f"affine:{self.c}·i+{self.d}"

    def as_tuple(self) -> tuple:
        return ("top",) if self.is_top else (self.c, self.d)

    # -- transfer functions -------------------------------------------
    def add(self, other: "AffineFact") -> "AffineFact":
        if self.is_top or other.is_top:
            return AFFINE_TOP
        return AffineFact(self.c + other.c, self.d + other.d)

    def mul(self, other: "AffineFact") -> "AffineFact":
        if self.is_top or other.is_top:
            return AFFINE_TOP
        # Exact only when at least one side is constant.
        if other.c == 0:
            return AffineFact(self.c * other.d, self.d * other.d)
        if self.c == 0:
            return AffineFact(other.c * self.d, other.d * self.d)
        return AFFINE_TOP

    def mod(self, k: int) -> "AffineFact":
        if not self.is_top and self.c == 0:
            return AffineFact(0, self.d % k)
        return AFFINE_TOP

    def floordiv(self, k: int) -> "AffineFact":
        # (c·i + d) // k == (c/k)·i + d//k exactly when k | c (floor
        # semantics: the divisible part splits off for any sign of i).
        if not self.is_top and self.c % k == 0:
            return AffineFact(self.c // k, self.d // k)
        return AFFINE_TOP


AFFINE_TOP = AffineFact(is_top=True)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CongruenceFact:
    """``value ≡ residue (mod modulus)``; modulus 0 = exact constant."""

    modulus: int
    residue: int

    @staticmethod
    def make(modulus: int, residue: int) -> "CongruenceFact":
        modulus = abs(int(modulus))
        residue = int(residue)
        if modulus > 0:
            residue %= modulus
        return CongruenceFact(modulus, residue)

    def __repr__(self) -> str:
        if self.modulus == 0:
            return f"cong:={self.residue}"
        if self.modulus == 1:
            return "cong:⊤"
        return f"cong:≡{self.residue} (mod {self.modulus})"

    def as_tuple(self) -> tuple:
        return (self.modulus, self.residue)

    @property
    def is_constant(self) -> bool:
        return self.modulus == 0

    # -- transfer functions -------------------------------------------
    def add(self, other: "CongruenceFact") -> "CongruenceFact":
        if self.is_constant and other.is_constant:
            return CongruenceFact.make(0, self.residue + other.residue)
        m = gcd(self.modulus, other.modulus)  # gcd(0, x) == x
        return CongruenceFact.make(m, self.residue + other.residue)

    def mul(self, other: "CongruenceFact") -> "CongruenceFact":
        if self.is_constant and other.is_constant:
            return CongruenceFact.make(0, self.residue * other.residue)
        if self.is_constant or other.is_constant:
            const, var = (
                (self, other) if self.is_constant else (other, self)
            )
            if const.residue == 0:
                return CongruenceFact.make(0, 0)
            return CongruenceFact.make(
                const.residue * var.modulus, const.residue * var.residue
            )
        # (r1 + m1·a)(r2 + m2·b) ≡ r1·r2 modulo gcd of the cross terms.
        m = gcd(
            self.modulus * other.modulus,
            gcd(self.modulus * other.residue, other.modulus * self.residue),
        )
        return CongruenceFact.make(m, self.residue * other.residue)

    def mod(self, k: int) -> "CongruenceFact":
        if self.is_constant:
            return CongruenceFact.make(0, self.residue % k)
        g = gcd(self.modulus, k)
        if g == k:
            # k divides the modulus: the value mod k is a fixed constant.
            return CongruenceFact.make(0, self.residue % k)
        return CongruenceFact.make(g, self.residue)

    def floordiv(self, k: int) -> "CongruenceFact":
        if self.is_constant:
            return CongruenceFact.make(0, self.residue // k)
        if self.modulus % k == 0 and self.residue % k == 0:
            return CongruenceFact.make(self.modulus // k, self.residue // k)
        return CONGRUENCE_TOP


CONGRUENCE_TOP = CongruenceFact(1, 0)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IntervalFact:
    """Inclusive value bounds over the iteration range under analysis."""

    lo: int
    hi: int

    def __repr__(self) -> str:
        return f"ival:[{self.lo}, {self.hi}]"

    def as_tuple(self) -> tuple:
        return (self.lo, self.hi)

    # -- transfer functions -------------------------------------------
    def add(self, other: "IntervalFact") -> "IntervalFact":
        return IntervalFact(self.lo + other.lo, self.hi + other.hi)

    def mul(self, other: "IntervalFact") -> "IntervalFact":
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return IntervalFact(min(products), max(products))

    def mod(self, k: int) -> "IntervalFact":
        if 0 <= self.lo and self.hi < k:
            return self
        return IntervalFact(0, k - 1)

    def floordiv(self, k: int) -> "IntervalFact":
        return IntervalFact(self.lo // k, self.hi // k)

    def disjoint_from(self, other: "IntervalFact") -> bool:
        return self.hi < other.lo or other.hi < self.lo


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MonotonicityFact:
    """Direction as a function of the loop index.

    ``direction`` is +1 (non-decreasing), −1 (non-increasing), 0
    (constant), or ``None`` (unknown); ``strict`` upgrades ±1 to strictly
    monotone.
    """

    direction: Optional[int]
    strict: bool = False

    def __repr__(self) -> str:
        if self.direction is None:
            return "mono:⊤"
        if self.direction == 0:
            return "mono:const"
        arrow = "↑" if self.direction > 0 else "↓"
        return f"mono:{arrow}{'strict' if self.strict else ''}"

    def as_tuple(self) -> tuple:
        return (self.direction, self.strict)

    @property
    def is_strictly_monotone(self) -> bool:
        return self.direction in (1, -1) and self.strict

    # -- transfer functions -------------------------------------------
    def add(self, other: "MonotonicityFact") -> "MonotonicityFact":
        if self.direction is None or other.direction is None:
            return MONOTONICITY_UNKNOWN
        if self.direction == 0:
            return other
        if other.direction == 0:
            return self
        if self.direction == other.direction:
            return MonotonicityFact(self.direction, self.strict or other.strict)
        return MONOTONICITY_UNKNOWN

    def scale(self, value: int) -> "MonotonicityFact":
        """Multiply by a known constant."""
        if value == 0:
            return MonotonicityFact(0)
        if self.direction is None:
            return MONOTONICITY_UNKNOWN
        direction = self.direction if value > 0 else -self.direction
        return MonotonicityFact(direction, self.strict)

    def floordiv(self, k: int) -> "MonotonicityFact":
        if self.direction is None:
            return MONOTONICITY_UNKNOWN
        # Floor division by k >= 1 preserves direction but not strictness.
        return MonotonicityFact(self.direction, strict=(k == 1 and self.strict))


MONOTONICITY_UNKNOWN = MonotonicityFact(None)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DomainFacts:
    """The product of all four domains for one expression."""

    affine: AffineFact
    congruence: CongruenceFact
    interval: IntervalFact
    monotonicity: MonotonicityFact

    def __repr__(self) -> str:
        return (
            f"Facts({self.affine!r}, {self.congruence!r}, "
            f"{self.interval!r}, {self.monotonicity!r})"
        )

    def as_dict(self) -> dict:
        return {
            "affine": self.affine.as_tuple(),
            "congruence": self.congruence.as_tuple(),
            "interval": self.interval.as_tuple(),
            "monotonicity": self.monotonicity.as_tuple(),
        }
