"""The symbolic dependence engine.

:func:`analyze_loop` runs abstract interpretation over a loop's write
subscript and declared read slots and composes a
:class:`~repro.analysis.verdicts.DependenceVerdict` with an attached
machine-checkable proof.  The derivation rules, in the order tried per
slot:

1. **inactive-slot** — empty active range: no reference at all.
2. **identical-subscript** — read and write closed forms are structurally
   equal: every reference is intra-iteration (paper Figure 5's
   ``check == 0`` case).
3. **same-stride-distance** — both affine with equal stride ``c``: the
   §2.3 closed form.  ``c ∤ (d_w − d_r)`` means the read can never hit a
   written element; otherwise the dependence distance is the constant
   ``(d_w − d_r)/c`` — positive: true, zero: intra, negative: anti.
4. **congruence-disjoint** — write and read classes are incongruent
   modulo ``gcd`` of their moduli: no aliasing for any index value.
5. **interval-disjoint** — value ranges cannot overlap.
6. **monotone-no-true** — the write is strictly monotone and the read
   stays strictly on its "later" side pointwise, so any aliasing writer
   comes *after* the reader: anti or nothing, never a true dependence.

Everything the engine concludes is value-independent: it holds for every
input array, unlike the runtime inspector's per-instance answer.
"""

from __future__ import annotations

from math import gcd

import numpy as np

from repro.analysis.deptest.battery import run_battery
from repro.analysis.domains import DomainFacts
from repro.analysis.eval import facts_for_subscript
from repro.analysis.proofs import (
    RULE_AFFINE_INJECTIVE,
    RULE_COMPOSE,
    RULE_CONGRUENCE_DISJOINT,
    RULE_IDENTICAL_SUBSCRIPT,
    RULE_INACTIVE_SLOT,
    RULE_INTERVAL_DISJOINT,
    RULE_MONOTONE_INJECTIVE,
    RULE_MONOTONE_NO_TRUE,
    RULE_NO_READS,
    RULE_SAME_STRIDE,
    RULE_SINGLE_ITERATION,
    Check,
    Proof,
    ProofStep,
)
from repro.analysis.verdicts import (
    SLOT_ANTI,
    SLOT_INTRA,
    SLOT_NO_TRUE,
    SLOT_NONE,
    SLOT_TRUE,
    SLOT_UNKNOWN,
    VERDICT_CONSTANT_DISTANCE,
    VERDICT_DOALL,
    VERDICT_INJECTIVE_WRITE,
    VERDICT_RUNTIME_ONLY,
    DependenceVerdict,
    SlotDependence,
    min_distance_kind,
)
from repro.errors import ProofError
from repro.ir.accesses import ReadSlot
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import Subscript

__all__ = ["analyze_loop", "slot_term_map"]


def _write_injectivity(
    loop: IrregularLoop, wf: DomainFacts | None
) -> tuple[bool, ProofStep | None]:
    """(proven, step) for the write subscript over ``0..n-1``."""
    n = loop.n
    if n <= 1:
        return True, ProofStep(
            rule=RULE_SINGLE_ITERATION,
            target="write",
            conclusion="at most one iteration: injective trivially",
            checks=(Check("le", (n, 1)),),
        )
    if wf is None:
        return False, None
    if not wf.affine.is_top and wf.affine.c != 0:
        return True, ProofStep(
            rule=RULE_AFFINE_INJECTIVE,
            target="write",
            conclusion=(
                f"affine {wf.affine.c}·i+{wf.affine.d} with nonzero "
                f"stride is injective"
            ),
            checks=(Check("ne", (wf.affine.c, 0)),),
            facts=(("write-affine", wf.affine.as_tuple()),),
        )
    if wf.monotonicity.is_strictly_monotone:
        return True, ProofStep(
            rule=RULE_MONOTONE_INJECTIVE,
            target="write",
            conclusion="strictly monotone in i: injective",
            facts=(("write-monotonicity", wf.monotonicity.as_tuple()),),
        )
    return False, None


def _classify_slot(
    j: int,
    slot: ReadSlot,
    wf: DomainFacts | None,
    write_sub: Subscript,
    n: int,
) -> tuple[SlotDependence, ProofStep | None]:
    """(SlotDependence, ProofStep | None) for one declared read slot."""
    lo, hi = slot.active_range(n)
    target = f"slot[{j}]"
    if hi <= lo:
        dep = SlotDependence(j, SLOT_NONE, RULE_INACTIVE_SLOT, (lo, hi))
        return dep, ProofStep(
            rule=RULE_INACTIVE_SLOT,
            target=target,
            conclusion="never active",
            checks=(Check("empty-range", (lo, hi)),),
        )
    rf = facts_for_subscript(slot.subscript, lo, hi - 1)
    if rf is None or wf is None:
        return SlotDependence(j, SLOT_UNKNOWN, "", (lo, hi)), None

    wsig = write_sub.static_signature()
    rsig = slot.subscript.static_signature()
    if wsig is not None and wsig == rsig:
        dep = SlotDependence(
            j, SLOT_INTRA, RULE_IDENTICAL_SUBSCRIPT, (lo, hi),
            distance=0, dep_range=(lo, hi),
        )
        return dep, ProofStep(
            rule=RULE_IDENTICAL_SUBSCRIPT,
            target=target,
            conclusion="read subscript equals the write subscript: "
            "every reference is intra-iteration",
            facts=(("signature", ("equal",)),),
        )

    facts = (
        ("write-affine", wf.affine.as_tuple()),
        ("read-affine", rf.affine.as_tuple()),
        ("write-congruence", wf.congruence.as_tuple()),
        ("read-congruence", rf.congruence.as_tuple()),
        ("write-interval", wf.interval.as_tuple()),
        ("read-interval", rf.interval.as_tuple()),
    )

    both_affine = not wf.affine.is_top and not rf.affine.is_top
    if both_affine and wf.affine.c == rf.affine.c and wf.affine.c != 0:
        c = wf.affine.c
        diff = wf.affine.d - rf.affine.d
        if diff % c != 0:
            dep = SlotDependence(j, SLOT_NONE, RULE_SAME_STRIDE, (lo, hi))
            return dep, ProofStep(
                rule=RULE_SAME_STRIDE,
                target=target,
                conclusion=f"{c} does not divide {diff}: the read never "
                f"hits a written element",
                checks=(Check("not-divides", (c, diff)),),
                facts=facts,
            )
        delta = diff // c
        if delta == 0:
            dep = SlotDependence(
                j, SLOT_INTRA, RULE_SAME_STRIDE, (lo, hi),
                distance=0, dep_range=(lo, hi),
            )
            return dep, ProofStep(
                rule=RULE_SAME_STRIDE,
                target=target,
                conclusion="distance 0: intra-iteration reference",
                checks=(
                    Check("eq", (wf.affine.c, rf.affine.c)),
                    Check("divides", (c, diff)),
                    Check("eq", (delta, 0)),
                ),
                facts=facts,
            )
        if delta > 0:
            a, b = max(lo, delta), hi
            if b <= a:
                dep = SlotDependence(
                    j, SLOT_NONE, RULE_SAME_STRIDE, (lo, hi)
                )
                return dep, ProofStep(
                    rule=RULE_SAME_STRIDE,
                    target=target,
                    conclusion=f"distance {delta} binds no iteration in "
                    f"the active range",
                    checks=(
                        Check("divides", (c, diff)),
                        Check("empty-range", (a, b)),
                    ),
                    facts=facts,
                )
            dep = SlotDependence(
                j, SLOT_TRUE, RULE_SAME_STRIDE, (lo, hi),
                distance=delta, dep_range=(a, b),
            )
            return dep, ProofStep(
                rule=RULE_SAME_STRIDE,
                target=target,
                conclusion=f"true dependence of constant distance {delta} "
                f"for i in [{a}, {b})",
                checks=(
                    Check("eq", (wf.affine.c, rf.affine.c)),
                    Check("divides", (c, diff)),
                    Check("gt", (delta, 0)),
                ),
                facts=facts,
            )
        # delta < 0: the aliasing writer comes later (anti) while it
        # exists, i.e. while i − delta <= n − 1.
        a, b = lo, min(hi, n + delta)
        if b <= a:
            dep = SlotDependence(j, SLOT_NONE, RULE_SAME_STRIDE, (lo, hi))
            return dep, ProofStep(
                rule=RULE_SAME_STRIDE,
                target=target,
                conclusion=f"distance {delta}: the would-be writer lies "
                f"beyond the iteration range",
                checks=(
                    Check("divides", (c, diff)),
                    Check("empty-range", (a, b)),
                ),
                facts=facts,
            )
        dep = SlotDependence(
            j, SLOT_ANTI, RULE_SAME_STRIDE, (lo, hi),
            distance=delta, dep_range=(a, b),
        )
        return dep, ProofStep(
            rule=RULE_SAME_STRIDE,
            target=target,
            conclusion=f"antidependence of distance {-delta} for i in "
            f"[{a}, {b})",
            checks=(
                Check("eq", (wf.affine.c, rf.affine.c)),
                Check("divides", (c, diff)),
                Check("lt", (delta, 0)),
            ),
            facts=facts,
        )

    # Congruence disjointness (covers non-affine closed forms).
    mw, rw = wf.congruence.modulus, wf.congruence.residue
    mr, rr = rf.congruence.modulus, rf.congruence.residue
    g = gcd(mw, mr)
    if (g == 0 and rw != rr) or (g > 1 and (rw - rr) % g != 0):
        check = (
            Check("ne", (rw, rr))
            if g == 0
            else Check("incongruent", (rw, rr, g))
        )
        dep = SlotDependence(
            j, SLOT_NONE, RULE_CONGRUENCE_DISJOINT, (lo, hi)
        )
        return dep, ProofStep(
            rule=RULE_CONGRUENCE_DISJOINT,
            target=target,
            conclusion="write and read classes are incongruent: no "
            "aliasing for any i",
            checks=(check,),
            facts=facts,
        )

    # Interval disjointness.
    if wf.interval.disjoint_from(rf.interval):
        dep = SlotDependence(
            j, SLOT_NONE, RULE_INTERVAL_DISJOINT, (lo, hi)
        )
        return dep, ProofStep(
            rule=RULE_INTERVAL_DISJOINT,
            target=target,
            conclusion="write and read value ranges cannot overlap",
            checks=(
                Check(
                    "disjoint-intervals",
                    (
                        wf.interval.lo,
                        wf.interval.hi,
                        rf.interval.lo,
                        rf.interval.hi,
                    ),
                ),
            ),
            facts=facts,
        )

    # Monotone separation: write strictly monotone, read strictly on the
    # "later" side pointwise, so any aliasing writer follows the reader.
    if both_affine and wf.affine.c != 0:
        cw, dw = wf.affine.c, wf.affine.d
        cr, dr = rf.affine.c, rf.affine.d
        e_lo = (cr - cw) * lo + (dr - dw)
        e_hi = (cr - cw) * (hi - 1) + (dr - dw)
        if cw > 0 and min(e_lo, e_hi) > 0:
            dep = SlotDependence(
                j, SLOT_NO_TRUE, RULE_MONOTONE_NO_TRUE, (lo, hi)
            )
            return dep, ProofStep(
                rule=RULE_MONOTONE_NO_TRUE,
                target=target,
                conclusion="read stays strictly above the increasing "
                "write: any aliasing writer is a later iteration "
                "(anti or none, never true)",
                checks=(
                    Check("gt", (cw, 0)),
                    Check("gt", (min(e_lo, e_hi), 0)),
                ),
                facts=facts,
            )
        if cw < 0 and max(e_lo, e_hi) < 0:
            dep = SlotDependence(
                j, SLOT_NO_TRUE, RULE_MONOTONE_NO_TRUE, (lo, hi)
            )
            return dep, ProofStep(
                rule=RULE_MONOTONE_NO_TRUE,
                target=target,
                conclusion="read stays strictly below the decreasing "
                "write: any aliasing writer is a later iteration "
                "(anti or none, never true)",
                checks=(
                    Check("lt", (cw, 0)),
                    Check("lt", (max(e_lo, e_hi), 0)),
                ),
                facts=facts,
            )

    return SlotDependence(j, SLOT_UNKNOWN, "", (lo, hi)), None


def analyze_loop(
    loop: IrregularLoop, use_cache: bool = True
) -> DependenceVerdict:
    """Produce the symbolic dependence verdict for ``loop``.

    The verdict is memoized on the loop object (the analysis is pure in
    the loop's structure, which is immutable after construction).
    """
    if use_cache:
        cached = loop.__dict__.get("_symbolic_verdict")
        if cached is not None:
            assert isinstance(cached, DependenceVerdict)
            return cached

    n = loop.n
    steps: list[ProofStep] = []
    wf = facts_for_subscript(loop.write_subscript, 0, n - 1)
    injective, inj_step = _write_injectivity(loop, wf)
    if inj_step is not None:
        steps.append(inj_step)

    slots: list[SlotDependence] = []
    reads_known: bool
    if loop.read_slots is not None:
        for j, slot in enumerate(loop.read_slots):
            dep, step = _classify_slot(
                j, slot, wf, loop.write_subscript, n
            )
            slots.append(dep)
            if step is not None:
                steps.append(step)
        reads_known = all(s.classified for s in slots)
    elif loop.reads.total_terms == 0:
        reads_known = True
        steps.append(
            ProofStep(
                rule=RULE_NO_READS,
                target="reads",
                conclusion="the loop reads nothing: no dependence to "
                "carry",
                checks=(Check("eq", (loop.reads.total_terms, 0)),),
            )
        )
    else:
        reads_known = False

    fully = bool(
        injective
        and loop.write_subscript.statically_known
        and reads_known
    )
    # The classical test battery runs alongside the exact classifier:
    # its per-slot direction/distance vectors ride on the verdict, and
    # its loop-level bound both upgrades otherwise-unclassifiable loops
    # to a ``min-distance-k`` verdict and legalizes group-synchronous
    # post/wait elision (repro.passes.distance.DistancePass).
    battery = run_battery(loop)
    batt_min = battery.min_distance
    steps.extend(battery.proof_steps())
    true_slots = [s for s in slots if s.kind == SLOT_TRUE]
    distance = None
    if fully:
        if not true_slots:
            kind = VERDICT_DOALL
            compose_checks = (Check("eq", (len(true_slots), 0)),)
            conclusion = (
                "write injective and no slot carries a true dependence: "
                "DOALL for every input"
            )
        else:
            distances = {s.distance for s in true_slots}
            if len(distances) == 1:
                distance = true_slots[0].distance
                kind = VERDICT_CONSTANT_DISTANCE
                compose_checks = tuple(
                    Check("eq", (s.distance, distance)) for s in true_slots
                )
                conclusion = (
                    f"every true dependence has constant distance "
                    f"{distance}: classic-doacross shape"
                )
            else:
                kind = VERDICT_INJECTIVE_WRITE
                distance = None
                compose_checks = (Check("gt", (len(distances), 1)),)
                conclusion = (
                    "slots fully classified but true-dependence "
                    "distances differ: injective write only"
                )
    elif injective:
        if batt_min is not None and batt_min >= 2:
            kind = min_distance_kind(batt_min)
            compose_checks = (Check("ge", (batt_min, 2)),)
            conclusion = (
                f"read side not fully classifiable, but every true "
                f"dependence has proven distance >= {batt_min}"
            )
        else:
            kind = VERDICT_INJECTIVE_WRITE
            compose_checks = ()
            conclusion = (
                "write proven injective; read side not fully classifiable"
            )
    else:
        kind = VERDICT_RUNTIME_ONLY
        compose_checks = ()
        conclusion = "nothing provable statically: runtime inspection "
        conclusion += "required"
    steps.append(
        ProofStep(
            rule=RULE_COMPOSE,
            target="loop",
            conclusion=conclusion,
            checks=compose_checks,
        )
    )

    verdict = DependenceVerdict(
        kind=kind,
        loop_name=loop.name,
        n=n,
        write_injective=injective,
        fully_classified=fully,
        slots=tuple(slots),
        proof=Proof(tuple(steps)),
        distance=distance,
        min_distance=batt_min,
        vectors=battery.vectors,
    )
    loop.__dict__["_symbolic_verdict"] = verdict
    return verdict


def slot_term_map(loop: IrregularLoop) -> np.ndarray:
    """Per-flat-term slot id under the slot contract.

    Iteration ``i``'s terms are its active slots in increasing slot
    order; this returns, for each flat term of ``loop.reads``, the slot
    it corresponds to.  Raises :class:`ProofError` when the declared
    slots do not tile the read table (wrong per-iteration counts).
    """
    if loop.read_slots is None:
        raise ProofError(f"{loop.name}: loop declares no read slots")
    n = loop.n
    ranges = [slot.active_range(n) for slot in loop.read_slots]
    counts = np.zeros(n, dtype=np.int64)
    for lo, hi in ranges:
        counts[lo:hi] += 1
    if not np.array_equal(counts, loop.reads.term_counts()):
        bad = int(np.nonzero(counts != loop.reads.term_counts())[0][0])
        raise ProofError(
            f"{loop.name}: declared slots give {int(counts[bad])} term(s) "
            f"at iteration {bad}, read table has "
            f"{int(loop.reads.term_count(bad))}"
        )
    if not ranges:
        return np.empty(0, dtype=np.int64)
    iters = np.concatenate(
        [np.arange(lo, hi, dtype=np.int64) for lo, hi in ranges]
    )
    sids = np.concatenate(
        [
            np.full(hi - lo, j, dtype=np.int64)
            for j, (lo, hi) in enumerate(ranges)
        ]
    )
    order = np.lexsort((sids, iters))
    return sids[order]
