"""Abstract interpretation of subscript expressions.

:func:`abstract_eval` folds a :class:`~repro.ir.subscript.SymExpr` (or a
whole :class:`~repro.ir.subscript.Subscript`) over the four domains in
:mod:`repro.analysis.domains`, for a loop index ranging over the inclusive
interval ``[lo, hi]``.

When the affine domain stays exact it dominates the others, so the final
facts are re-derived from it — e.g. ``(2·i) // 2`` folds back to the exact
affine ``i`` and its congruence/interval/monotonicity follow from that,
not from the weaker per-domain transfer chain.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.subscript import (
    Add,
    AffineSubscript,
    Const,
    ExprSubscript,
    FloorDiv,
    Index,
    Mod,
    Mul,
    Subscript,
    SymExpr,
)

from repro.analysis.domains import (
    AFFINE_TOP,
    AffineFact,
    CongruenceFact,
    DomainFacts,
    IntervalFact,
    MonotonicityFact,
)

__all__ = ["abstract_eval", "facts_for_subscript", "affine_facts"]


def affine_facts(c: int, d: int, lo: int, hi: int) -> DomainFacts:
    """The exact product-domain facts of ``c·i + d`` over ``i ∈ [lo, hi]``."""
    endpoints = (c * lo + d, c * hi + d)
    if c > 0:
        mono = MonotonicityFact(1, strict=True)
    elif c < 0:
        mono = MonotonicityFact(-1, strict=True)
    else:
        mono = MonotonicityFact(0)
    return DomainFacts(
        affine=AffineFact(c, d),
        congruence=CongruenceFact.make(c, d),
        interval=IntervalFact(min(endpoints), max(endpoints)),
        monotonicity=mono,
    )


def _eval_expr(expr: SymExpr, lo: int, hi: int) -> DomainFacts:
    if isinstance(expr, Index):
        return affine_facts(1, 0, lo, hi)
    if isinstance(expr, Const):
        return affine_facts(0, expr.value, lo, hi)
    if isinstance(expr, Add):
        a = _eval_expr(expr.left, lo, hi)
        b = _eval_expr(expr.right, lo, hi)
        return _refine(
            DomainFacts(
                affine=a.affine.add(b.affine),
                congruence=a.congruence.add(b.congruence),
                interval=a.interval.add(b.interval),
                monotonicity=a.monotonicity.add(b.monotonicity),
            ),
            lo,
            hi,
        )
    if isinstance(expr, Mul):
        a = _eval_expr(expr.left, lo, hi)
        b = _eval_expr(expr.right, lo, hi)
        if b.congruence.is_constant:
            mono = a.monotonicity.scale(b.congruence.residue)
        elif a.congruence.is_constant:
            mono = b.monotonicity.scale(a.congruence.residue)
        else:
            mono = MonotonicityFact(None)
        return _refine(
            DomainFacts(
                affine=a.affine.mul(b.affine),
                congruence=a.congruence.mul(b.congruence),
                interval=a.interval.mul(b.interval),
                monotonicity=mono,
            ),
            lo,
            hi,
        )
    if isinstance(expr, Mod):
        a = _eval_expr(expr.operand, lo, hi)
        k = expr.divisor
        if 0 <= a.interval.lo and a.interval.hi < k:
            return a  # the mod is the identity on this range
        return _refine(
            DomainFacts(
                affine=a.affine.mod(k),
                congruence=a.congruence.mod(k),
                interval=a.interval.mod(k),
                monotonicity=MonotonicityFact(None),
            ),
            lo,
            hi,
        )
    if isinstance(expr, FloorDiv):
        a = _eval_expr(expr.operand, lo, hi)
        k = expr.divisor
        return _refine(
            DomainFacts(
                affine=a.affine.floordiv(k),
                congruence=a.congruence.floordiv(k),
                interval=a.interval.floordiv(k),
                monotonicity=a.monotonicity.floordiv(k),
            ),
            lo,
            hi,
        )
    raise TypeError(f"unknown SymExpr node {type(expr).__name__}")


def _refine(facts: DomainFacts, lo: int, hi: int) -> DomainFacts:
    """When the affine form survived, it is exact — derive the weaker
    domains from it instead of keeping the per-domain approximations."""
    if facts.affine.is_top:
        return facts
    return affine_facts(facts.affine.c, facts.affine.d, lo, hi)


def abstract_eval(expr: SymExpr, lo: int, hi: int) -> DomainFacts:
    """Facts for ``expr`` with the loop index ranging over ``[lo, hi]``."""
    if hi < lo:
        # Empty range: evaluate at a nominal point; callers skip the slot.
        hi = lo
    return _eval_expr(expr, lo, hi)


def facts_for_subscript(
    sub: Subscript, lo: int, hi: int
) -> Optional[DomainFacts]:
    """Facts for a subscript, or ``None`` when it is runtime data."""
    if isinstance(sub, AffineSubscript):
        if hi < lo:
            hi = lo
        return affine_facts(sub.c, sub.d, lo, hi)
    if isinstance(sub, ExprSubscript):
        return abstract_eval(sub.expr, lo, hi)
    return None
