"""Symbolic dependence analysis (the static half of the paper's §2.3).

An abstract-interpretation engine over the closed-form subscripts in
:mod:`repro.ir.subscript` that proves dependence properties *for every
input*, where the runtime inspector only observes them for one:

- :func:`analyze_loop` — produce a :class:`DependenceVerdict` (DOALL-
  proven / constant-distance / injective-write / runtime-only) with a
  machine-checkable :class:`~repro.analysis.proofs.Proof` attached.
- :func:`check_proof` / :func:`cross_check` — audit a proof's side
  conditions and compare the verdict against the runtime inspector.
- :func:`build_symbolic_record` — construct the inspector's output
  (``iter`` array, wavefront schedule, executor tables) in closed form,
  eliding the runtime inspector entirely (``analyze="symbolic"`` on
  :func:`repro.backends.make_runner`).
"""

from repro.analysis.checker import CrossCheckReport, check_proof, cross_check
from repro.analysis.deptest import (
    DIR_ANY,
    DIR_NONE,
    BatteryResult,
    DependenceVector,
    run_battery,
)
from repro.analysis.domains import (
    AffineFact,
    CongruenceFact,
    DomainFacts,
    IntervalFact,
    MonotonicityFact,
)
from repro.analysis.elide import (
    build_distance_record,
    build_symbolic_record,
    distance_fingerprint,
    record_mismatches,
    records_equal,
    symbolic_fingerprint,
)
from repro.analysis.engine import analyze_loop, slot_term_map
from repro.analysis.eval import abstract_eval, facts_for_subscript
from repro.analysis.proofs import Check, Proof, ProofStep, evaluate_check
from repro.analysis.verdicts import (
    SLOT_ANTI,
    SLOT_INTRA,
    SLOT_NO_TRUE,
    SLOT_NONE,
    SLOT_TRUE,
    SLOT_UNKNOWN,
    VERDICT_CONSTANT_DISTANCE,
    VERDICT_DOALL,
    VERDICT_INJECTIVE_WRITE,
    VERDICT_RUNTIME_ONLY,
    DependenceVerdict,
    SlotDependence,
    is_min_distance_kind,
    min_distance_kind,
)

__all__ = [
    "analyze_loop",
    "slot_term_map",
    "abstract_eval",
    "facts_for_subscript",
    "check_proof",
    "cross_check",
    "CrossCheckReport",
    "build_symbolic_record",
    "build_distance_record",
    "symbolic_fingerprint",
    "distance_fingerprint",
    "records_equal",
    "record_mismatches",
    "AffineFact",
    "CongruenceFact",
    "IntervalFact",
    "MonotonicityFact",
    "DomainFacts",
    "Check",
    "Proof",
    "ProofStep",
    "evaluate_check",
    "DependenceVerdict",
    "SlotDependence",
    "VERDICT_DOALL",
    "VERDICT_CONSTANT_DISTANCE",
    "VERDICT_INJECTIVE_WRITE",
    "VERDICT_RUNTIME_ONLY",
    "min_distance_kind",
    "is_min_distance_kind",
    "run_battery",
    "BatteryResult",
    "DependenceVector",
    "DIR_ANY",
    "DIR_NONE",
    "SLOT_TRUE",
    "SLOT_INTRA",
    "SLOT_ANTI",
    "SLOT_NONE",
    "SLOT_NO_TRUE",
    "SLOT_UNKNOWN",
]
