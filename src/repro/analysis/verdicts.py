"""Structured dependence verdicts.

The engine's output is a :class:`DependenceVerdict` — one of four kinds:

- :data:`VERDICT_DOALL` — no true cross-iteration dependence exists for
  *any* input data; every iteration may run concurrently.
- :data:`VERDICT_CONSTANT_DISTANCE` — every true dependence has the same
  constant distance ``d`` (the classic-doacross eligibility envelope).
- :data:`VERDICT_INJECTIVE_WRITE` — the write subscript is proven
  injective, but the read side is not (fully) summarizable as one of the
  two stronger kinds.
- :data:`VERDICT_RUNTIME_ONLY` — nothing useful is provable; the runtime
  inspector is required.

plus the parametric **min-distance-k** family (:func:`min_distance_kind`):
the read side resisted exact classification, but the dependence-test
battery (:mod:`repro.analysis.deptest`) proved every cross-iteration true
dependence reaches back at least ``k >= 2`` iterations — enough for
group-synchronous post/wait elision even without an exact distance.

Orthogonally, ``fully_classified`` records whether *every* read slot got
an exact per-iteration classification — the precondition for eliding the
runtime inspector (a mixed-distance loop can be fully classified yet not
be a constant-distance doacross) — and ``min_distance`` carries the
battery's loop-level bound regardless of kind (a constant-distance loop
has ``min_distance == distance``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.deptest.vectors import DependenceVector
from repro.analysis.proofs import Proof

__all__ = [
    "DependenceVerdict",
    "SlotDependence",
    "VERDICT_DOALL",
    "VERDICT_CONSTANT_DISTANCE",
    "VERDICT_INJECTIVE_WRITE",
    "VERDICT_RUNTIME_ONLY",
    "VERDICT_MIN_DISTANCE_PREFIX",
    "min_distance_kind",
    "is_min_distance_kind",
    "SLOT_TRUE",
    "SLOT_INTRA",
    "SLOT_ANTI",
    "SLOT_NONE",
    "SLOT_NO_TRUE",
    "SLOT_UNKNOWN",
]

VERDICT_DOALL = "doall-proven"
VERDICT_CONSTANT_DISTANCE = "constant-distance"
VERDICT_INJECTIVE_WRITE = "injective-write"
VERDICT_RUNTIME_ONLY = "runtime-only"
#: Prefix of the parametric ``min-distance-k`` verdict kinds.
VERDICT_MIN_DISTANCE_PREFIX = "min-distance-"


def min_distance_kind(k: int) -> str:
    """The verdict kind for a proven loop-level distance bound ``k``."""
    return f"{VERDICT_MIN_DISTANCE_PREFIX}{k}"


def is_min_distance_kind(kind: str) -> bool:
    """Whether ``kind`` belongs to the ``min-distance-k`` family."""
    return kind.startswith(VERDICT_MIN_DISTANCE_PREFIX)

#: Slot kinds.  ``no-true`` means "provably anti or no dependence, never
#: true and never intra" — exact enough for elision (the executor treats
#: anti and none identically), weaker than naming which of the two.
SLOT_TRUE = "true"
SLOT_INTRA = "intra"
SLOT_ANTI = "anti"
SLOT_NONE = "none"
SLOT_NO_TRUE = "no-true"
SLOT_UNKNOWN = "unknown"

#: Kinds that give an exact per-iteration classification.
_CLASSIFIED = (SLOT_TRUE, SLOT_INTRA, SLOT_ANTI, SLOT_NONE, SLOT_NO_TRUE)


@dataclass(frozen=True)
class SlotDependence:
    """Per-slot conclusion.

    ``active`` is the slot's iteration range ``[lo, hi)``; ``dep_range``
    is the subrange where the named dependence actually applies (a true
    dependence of distance ``d`` only binds iterations ``i >= d``) —
    outside it the slot reads an element no iteration writes.
    """

    slot: int
    kind: str
    rule: str
    active: Tuple[int, int]
    distance: Optional[int] = None
    dep_range: Optional[Tuple[int, int]] = None

    @property
    def classified(self) -> bool:
        return self.kind in _CLASSIFIED

    def as_dict(self) -> dict:
        return {
            "slot": self.slot,
            "kind": self.kind,
            "rule": self.rule,
            "active": list(self.active),
            "distance": self.distance,
            "dep_range": list(self.dep_range) if self.dep_range else None,
        }

    def describe(self) -> str:
        body = self.kind
        if self.kind == SLOT_TRUE:
            body = f"true distance={self.distance}"
        if self.dep_range and self.kind in (SLOT_TRUE, SLOT_ANTI):
            body += f" over [{self.dep_range[0]}, {self.dep_range[1]})"
        return f"slot {self.slot}: {body} ({self.rule})"


@dataclass(frozen=True)
class DependenceVerdict:
    """The engine's structured conclusion for one loop."""

    kind: str
    loop_name: str
    n: int
    write_injective: bool
    fully_classified: bool
    slots: Tuple[SlotDependence, ...]
    proof: Proof
    distance: Optional[int] = None
    #: The battery's proven lower bound on every cross-iteration true
    #: dependence distance (``None``: unbounded or no true dependence).
    min_distance: Optional[int] = None
    #: Per-slot direction/distance vectors from the test battery.
    vectors: Tuple[DependenceVector, ...] = ()

    @property
    def elidable(self) -> bool:
        """Whether the runtime inspector can be skipped: the write is
        proven injective and every read slot is exactly classified."""
        return self.write_injective and self.fully_classified

    def true_slots(self) -> tuple[SlotDependence, ...]:
        return tuple(s for s in self.slots if s.kind == SLOT_TRUE)

    def has_anti(self) -> bool:
        """Whether any slot may carry an antidependence."""
        return any(s.kind in (SLOT_ANTI, SLOT_NO_TRUE) for s in self.slots)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "loop": self.loop_name,
            "n": self.n,
            "distance": self.distance,
            "min_distance": self.min_distance,
            "vectors": [v.as_dict() for v in self.vectors],
            "write_injective": self.write_injective,
            "fully_classified": self.fully_classified,
            "elidable": self.elidable,
            "slots": [s.as_dict() for s in self.slots],
            "proof": self.proof.as_dict(),
        }

    def describe(self) -> str:
        head = f"{self.loop_name}: {self.kind}"
        if self.kind == VERDICT_CONSTANT_DISTANCE:
            head += f" (d={self.distance})"
        elif self.min_distance is not None:
            head += f" (d>={self.min_distance})"
        flags = []
        if self.write_injective:
            flags.append("write-injective")
        if self.elidable:
            flags.append("inspector-elidable")
        if flags:
            head += "  [" + ", ".join(flags) + "]"
        lines = [head]
        lines += ["  " + s.describe() for s in self.slots]
        return "\n".join(lines)

    def signature(self) -> tuple:
        """Hashable summary for structural signatures / cache keys."""
        return (
            self.kind,
            self.distance,
            self.min_distance,
            self.write_injective,
            self.fully_classified,
            tuple(
                (s.kind, s.distance, s.active, s.dep_range)
                for s in self.slots
            ),
            tuple(v.signature() for v in self.vectors),
        )
