"""Classical dependence-test battery over the closed-form subscript IR.

Where the symbolic engine (:mod:`repro.analysis.engine`) classifies each
read slot *exactly* or declines, this package answers the weaker — and
for synchronization planning, decisive — question: **how far** can a
cross-iteration true dependence reach?  The battery runs the classical
tests (ZIV, strong/weak SIV, GCD, Banerjee bounds, with a conservative
MIV-style fallback) over one write/read subscript pair at a time and
summarizes each slot as a :class:`DependenceVector`: direction(s), the
exact distance when there is one, and a proven ``min_distance`` lower
bound backed by :class:`~repro.analysis.proofs.ProofStep` objects the
existing ``check_proof``/``cross_check`` machinery audits.

A loop-level bound ``min_distance = k`` legalizes dropping post/wait
pairs whenever ``k`` is at least the synchronization granularity — the
group-synchronous execution of ``DistancePass``
(:mod:`repro.passes.distance`), after "Parallelization of Loops with
Variable Distance Data Dependences" (arXiv 1311.2927); carrying the
machine-checkable certificate follows the proof-carrying style of
"Verifying Parallel Loops with Separation Logic" (arXiv 1406.3484).
"""

from repro.analysis.deptest.battery import (
    RULE_BANERJEE,
    RULE_CONGRUENCE,
    RULE_GCD,
    RULE_INACTIVE,
    RULE_INTERVAL,
    RULE_MIV,
    RULE_STRONG_SIV,
    RULE_WEAK_SIV,
    RULE_ZIV,
    BatteryResult,
    run_battery,
    test_slot,
)
from repro.analysis.deptest.vectors import (
    DIR_ANY,
    DIR_NONE,
    DependenceVector,
    direction_string,
)

__all__ = [
    "DependenceVector",
    "BatteryResult",
    "run_battery",
    "test_slot",
    "direction_string",
    "DIR_ANY",
    "DIR_NONE",
    "RULE_ZIV",
    "RULE_STRONG_SIV",
    "RULE_WEAK_SIV",
    "RULE_GCD",
    "RULE_BANERJEE",
    "RULE_CONGRUENCE",
    "RULE_INTERVAL",
    "RULE_MIV",
    "RULE_INACTIVE",
]
