"""The classical dependence-test battery.

:func:`run_battery` answers, per declared read slot, the question the
symbolic engine's exact classifier cannot always settle: which
*(writer, reader)* iteration relations can alias at all, and — when a
cross-iteration true dependence is possible — **how far** it must reach.
The tests are the classical single-index battery over the closed-form
subscript IR:

- **ZIV** — both subscripts constant: alias everywhere or nowhere.
- **strong SIV** — equal strides: one exact constant distance.
- **weak SIV** — one side constant (weak-zero) or opposed strides
  (weak-crossing): a single writer / crossing point.
- **GCD** — ``gcd(c_w, c_r) ∤ (d_r − d_w)``: the diophantine aliasing
  equation has no integer solution.
- **Banerjee bounds** — the distance function ``δ(i_r) = i_r − i_w(i_r)``
  is affine; its extrema over the (relaxed) feasible region refute whole
  direction classes and yield a proven ``min_distance`` lower bound on
  every true dependence (the variable-distance case of arXiv 1311.2927).
- **MIV fallback** — closed-form but non-affine subscripts keep the
  congruence / interval refutations and otherwise decline to ``*``.

Every conclusion is backed by :class:`~repro.analysis.proofs.ProofStep`
side conditions over concrete integers, so ``check_proof`` /
``cross_check`` audit battery output exactly like engine output.

Soundness note: aliasing pairs are a superset of the executor's true
dependences (which run against the *last* writer of an element), so a
battery ``min_distance`` lower-bounds every observed distance even for
non-injective writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor, gcd
from typing import List, Optional, Tuple

from repro.analysis.deptest.vectors import (
    DIR_ANY,
    DIR_NONE,
    DependenceVector,
    direction_string,
)
from repro.analysis.domains import DomainFacts
from repro.analysis.eval import facts_for_subscript
from repro.analysis.proofs import Check, ProofStep
from repro.ir.loop import IrregularLoop

__all__ = [
    "BatteryResult",
    "run_battery",
    "test_slot",
    "RULE_ZIV",
    "RULE_STRONG_SIV",
    "RULE_WEAK_SIV",
    "RULE_GCD",
    "RULE_BANERJEE",
    "RULE_CONGRUENCE",
    "RULE_INTERVAL",
    "RULE_MIV",
    "RULE_INACTIVE",
]

# Battery rule identifiers (namespaced apart from the engine's rules).
RULE_ZIV = "deptest-ziv"
RULE_STRONG_SIV = "deptest-strong-siv"
RULE_WEAK_SIV = "deptest-weak-siv"
RULE_GCD = "deptest-gcd"
RULE_BANERJEE = "deptest-banerjee"
RULE_CONGRUENCE = "deptest-congruence"
RULE_INTERVAL = "deptest-interval"
RULE_MIV = "deptest-miv"
RULE_INACTIVE = "deptest-inactive"


def _step(
    rule: str,
    slot: int,
    conclusion: str,
    checks: Tuple[Check, ...] = (),
    facts: Tuple[Tuple[str, tuple], ...] = (),
) -> ProofStep:
    return ProofStep(
        rule=rule,
        target=f"deptest[{slot}]",
        conclusion=conclusion,
        checks=checks,
        facts=facts,
    )


def _none_vector(
    slot: int, test: str, step: ProofStep
) -> DependenceVector:
    return DependenceVector(
        slot=slot,
        test=test,
        applicable=True,
        direction=DIR_NONE,
        steps=(step,),
    )


def _inapplicable(slot: int, why: str) -> DependenceVector:
    return DependenceVector(
        slot=slot,
        test=RULE_MIV,
        applicable=False,
        direction=DIR_ANY,
        steps=(
            _step(RULE_MIV, slot, f"tests inapplicable: {why}"),
        ),
    )


def _affine_facts_pair(
    wf: DomainFacts, rf: DomainFacts
) -> Tuple[Tuple[str, tuple], ...]:
    return (
        ("write-affine", wf.affine.as_tuple()),
        ("read-affine", rf.affine.as_tuple()),
    )


def _ziv(
    slot: int,
    dw: int,
    dr: int,
    n: int,
    rlo: int,
    rhi: int,
    facts: Tuple[Tuple[str, tuple], ...],
) -> DependenceVector:
    """Both subscripts constant: alias everywhere or nowhere."""
    if dw != dr:
        return _none_vector(
            slot,
            RULE_ZIV,
            _step(
                RULE_ZIV,
                slot,
                f"constant subscripts {dw} != {dr}: no aliasing",
                checks=(Check("ne", (dw, dr)),),
                facts=facts,
            ),
        )
    # Every iteration writes the element; every active iteration reads it.
    may_lt = max(rlo, 1) <= rhi - 1
    may_eq = rhi > rlo
    may_gt = rlo < n - 1
    return DependenceVector(
        slot=slot,
        test=RULE_ZIV,
        applicable=True,
        direction=direction_string(may_lt, may_eq, may_gt),
        min_distance=1 if may_lt else None,
        steps=(
            _step(
                RULE_ZIV,
                slot,
                f"constant subscripts alias at every iteration pair "
                f"(element {dw})",
                checks=(Check("eq", (dw, dr)),),
                facts=facts,
            ),
        ),
    )


def _weak_zero_write(
    slot: int,
    dw: int,
    cr: int,
    dr: int,
    n: int,
    rlo: int,
    rhi: int,
    facts: Tuple[Tuple[str, tuple], ...],
) -> DependenceVector:
    """Constant write, strided read: one aliasing reader iteration."""
    diff = dw - dr
    if diff % cr != 0:
        return _none_vector(
            slot,
            RULE_GCD,
            _step(
                RULE_GCD,
                slot,
                f"{cr} does not divide {diff}: the read never hits the "
                f"written element",
                checks=(Check("not-divides", (cr, diff)),),
                facts=facts,
            ),
        )
    i_star = diff // cr
    if i_star < rlo or i_star > rhi - 1:
        check = (
            Check("lt", (i_star, rlo))
            if i_star < rlo
            else Check("ge", (i_star, rhi))
        )
        return _none_vector(
            slot,
            RULE_WEAK_SIV,
            _step(
                RULE_WEAK_SIV,
                slot,
                f"the only aliasing reader i={i_star} lies outside the "
                f"active range [{rlo}, {rhi})",
                checks=(check,),
                facts=facts,
            ),
        )
    may_lt = i_star >= 1
    may_gt = i_star <= n - 2
    return DependenceVector(
        slot=slot,
        test=RULE_WEAK_SIV,
        applicable=True,
        direction=direction_string(may_lt, True, may_gt),
        min_distance=1 if may_lt else None,
        steps=(
            _step(
                RULE_WEAK_SIV,
                slot,
                f"constant write element read only at i={i_star}; every "
                f"iteration writes it",
                checks=(Check("divides", (cr, diff)),),
                facts=facts,
            ),
        ),
    )


def _frac_interval_intersect(
    a: Tuple[Fraction, Fraction], b: Tuple[Fraction, Fraction]
) -> Tuple[Fraction, Fraction]:
    return max(a[0], b[0]), min(a[1], b[1])


def _solve_linear_range(
    coeff: int, const: Fraction, lo: Fraction, hi: Fraction
) -> Optional[Tuple[Fraction, Fraction]]:
    """The ``x`` interval where ``coeff·x + const ∈ [lo, hi]``, or
    ``None`` when ``coeff == 0`` and the constant misses the window
    (``coeff == 0`` with the constant inside yields an unbounded side
    encoded as very wide fractions by the caller)."""
    if coeff > 0:
        return (lo - const) / coeff, (hi - const) / coeff
    if coeff < 0:
        return (hi - const) / coeff, (lo - const) / coeff
    if lo <= const <= hi:
        return None  # unconstrained
    return Fraction(1), Fraction(0)  # empty


def _general_siv(
    slot: int,
    cw: int,
    dw: int,
    cr: int,
    dr: int,
    n: int,
    rlo: int,
    rhi: int,
    facts: Tuple[Tuple[str, tuple], ...],
) -> DependenceVector:
    """The general affine single-index pair (``c_w != 0``).

    Solves ``c_w·i_w + d_w = c_r·i_r + d_r`` for ``i_w`` as a function
    of ``i_r``, bounds the distance ``δ(i_r) = i_r − i_w(i_r)`` over the
    relaxed (real) feasible region, and reads directions and the
    ``min_distance`` bound off the extrema — GCD refutation first,
    Banerjee-style interval reasoning after.
    """
    label = RULE_BANERJEE
    if cr == cw:
        label = RULE_STRONG_SIV
    elif cr == 0 or cr == -cw:
        label = RULE_WEAK_SIV

    delta_const = dr - dw
    g = gcd(abs(cw), abs(cr)) if cr != 0 else abs(cw)
    if delta_const % g != 0:
        return _none_vector(
            slot,
            RULE_GCD,
            _step(
                RULE_GCD,
                slot,
                f"gcd({cw}, {cr}) = {g} does not divide {delta_const}: "
                f"the aliasing equation has no integer solution",
                checks=(Check("not-divides", (g, delta_const)),),
                facts=facts,
            ),
        )
    gcd_check = Check("divides", (g, delta_const))

    # Feasible i_r interval: the slot's active range intersected with
    # the readers whose aliasing writer lands inside [0, n-1].
    region: Tuple[Fraction, Fraction] = (
        Fraction(rlo), Fraction(rhi - 1)
    )
    w_lo = min(0, cw * (n - 1))
    w_hi = max(0, cw * (n - 1))
    writer_side = _solve_linear_range(
        cr, Fraction(delta_const), Fraction(w_lo), Fraction(w_hi)
    )
    if writer_side is not None:
        region = _frac_interval_intersect(region, writer_side)
    if region[0] > region[1]:
        lo_i, hi_i = ceil(region[0]), floor(region[1]) + 1
        return _none_vector(
            slot,
            label,
            _step(
                label,
                slot,
                "no reader iteration has an in-range aliasing writer",
                checks=(gcd_check, Check("empty-range", (lo_i, hi_i))),
                facts=facts,
            ),
        )

    # δ(i_r) = i_r − (c_r·i_r + Δ)/c_w, affine in i_r.
    slope = Fraction(cw - cr, cw)
    intercept = Fraction(-delta_const, cw)

    def delta_at(x: Fraction) -> Fraction:
        return slope * x + intercept

    def sub_region(
        want_lo: Optional[Fraction], want_hi: Optional[Fraction]
    ) -> Optional[Tuple[Fraction, Fraction]]:
        """Feasible sub-interval where δ lies in [want_lo, want_hi]."""
        lo, hi = region
        if slope == 0:
            d = intercept
            ok = (want_lo is None or d >= want_lo) and (
                want_hi is None or d <= want_hi
            )
            return (lo, hi) if ok else None
        bounds = []
        if want_lo is not None:
            x = (want_lo - intercept) / slope
            bounds.append((x, None) if slope > 0 else (None, x))
        if want_hi is not None:
            x = (want_hi - intercept) / slope
            bounds.append((None, x) if slope > 0 else (x, None))
        for b_lo, b_hi in bounds:
            if b_lo is not None:
                lo = max(lo, b_lo)
            if b_hi is not None:
                hi = min(hi, b_hi)
        return (lo, hi) if lo <= hi else None

    true_region = sub_region(Fraction(1), None)
    eq_region = sub_region(Fraction(0), Fraction(0))
    anti_region = sub_region(None, Fraction(-1))

    may_lt = true_region is not None
    may_eq = eq_region is not None
    may_gt = anti_region is not None
    if not (may_lt or may_eq or may_gt):
        # The relaxed δ range contains no integer at all.
        return _none_vector(
            slot,
            label,
            _step(
                label,
                slot,
                "the distance function admits no integer value over the "
                "feasible region: no aliasing pair exists",
                checks=(gcd_check,),
                facts=facts,
            ),
        )

    distance: Optional[int] = None
    min_distance: Optional[int] = None
    checks: List[Check] = [gcd_check]
    if slope == 0 and intercept.denominator == 1:
        distance = int(intercept)
    if may_lt:
        assert true_region is not None
        d_min = min(delta_at(true_region[0]), delta_at(true_region[1]))
        min_distance = max(1, ceil(d_min))
        checks.append(Check("ge", (min_distance, 1)))
        conclusion = (
            f"true dependences reach back at least {min_distance} "
            f"iteration(s)"
        )
        if distance is not None:
            conclusion = (
                f"every dependence has exact constant distance {distance}"
            )
    else:
        conclusion = (
            "the distance bounds refute any cross-iteration true "
            "dependence"
        )

    return DependenceVector(
        slot=slot,
        test=label,
        applicable=True,
        direction=direction_string(may_lt, may_eq, may_gt),
        distance=distance,
        min_distance=min_distance,
        steps=(
            _step(label, slot, conclusion, tuple(checks), facts),
        ),
    )


def _nonaffine(
    slot: int,
    wf: DomainFacts,
    rf: DomainFacts,
) -> DependenceVector:
    """Closed-form but not affine: congruence / interval refutation,
    otherwise the conservative MIV-style decline."""
    facts = (
        ("write-congruence", wf.congruence.as_tuple()),
        ("read-congruence", rf.congruence.as_tuple()),
        ("write-interval", wf.interval.as_tuple()),
        ("read-interval", rf.interval.as_tuple()),
    )
    mw, rw = wf.congruence.modulus, wf.congruence.residue
    mr, rr = rf.congruence.modulus, rf.congruence.residue
    g = gcd(mw, mr)
    if (g == 0 and rw != rr) or (g > 1 and (rw - rr) % g != 0):
        check = (
            Check("ne", (rw, rr))
            if g == 0
            else Check("incongruent", (rw, rr, g))
        )
        return _none_vector(
            slot,
            RULE_CONGRUENCE,
            _step(
                RULE_CONGRUENCE,
                slot,
                "write and read congruence classes never coincide",
                checks=(check,),
                facts=facts,
            ),
        )
    if wf.interval.disjoint_from(rf.interval):
        return _none_vector(
            slot,
            RULE_INTERVAL,
            _step(
                RULE_INTERVAL,
                slot,
                "write and read value ranges cannot overlap",
                checks=(
                    Check(
                        "disjoint-intervals",
                        (
                            wf.interval.lo,
                            wf.interval.hi,
                            rf.interval.lo,
                            rf.interval.hi,
                        ),
                    ),
                ),
                facts=facts,
            ),
        )
    return DependenceVector(
        slot=slot,
        test=RULE_MIV,
        applicable=True,
        direction=DIR_ANY,
        min_distance=1,
        steps=(
            _step(
                RULE_MIV,
                slot,
                "non-affine closed forms: conservative fallback (any "
                "direction, distance >= 1)",
                facts=facts,
            ),
        ),
    )


def test_slot(loop: IrregularLoop, slot_index: int) -> DependenceVector:
    """Run the battery for one declared read slot of ``loop``."""
    assert loop.read_slots is not None
    slot = loop.read_slots[slot_index]
    n = loop.n
    rlo, rhi = slot.active_range(n)
    if rhi <= rlo:
        return _none_vector(
            slot_index,
            RULE_INACTIVE,
            _step(
                RULE_INACTIVE,
                slot_index,
                "slot never active",
                checks=(Check("empty-range", (rlo, rhi)),),
            ),
        )
    wf = facts_for_subscript(loop.write_subscript, 0, n - 1)
    rf = facts_for_subscript(slot.subscript, rlo, rhi - 1)
    if wf is None or rf is None:
        side = "write" if wf is None else "read"
        return _inapplicable(
            slot_index, f"runtime {side} subscript (inspector required)"
        )
    both_affine = not wf.affine.is_top and not rf.affine.is_top
    if not both_affine:
        return _nonaffine(slot_index, wf, rf)
    cw, dw = wf.affine.c, wf.affine.d
    cr, dr = rf.affine.c, rf.affine.d
    facts = _affine_facts_pair(wf, rf)
    if cw == 0 and cr == 0:
        return _ziv(slot_index, dw, dr, n, rlo, rhi, facts)
    if cw == 0:
        return _weak_zero_write(
            slot_index, dw, cr, dr, n, rlo, rhi, facts
        )
    return _general_siv(slot_index, cw, dw, cr, dr, n, rlo, rhi, facts)


@dataclass(frozen=True)
class BatteryResult:
    """The battery's conclusion for a whole loop: one
    :class:`DependenceVector` per declared read slot, plus the composed
    loop-level ``min_distance`` bound :class:`~repro.passes.distance.
    DistancePass` and the lint rules consume."""

    loop_name: str
    n: int
    vectors: Tuple[DependenceVector, ...]

    @property
    def applicable(self) -> bool:
        """Whether every slot could be tested (no runtime subscripts)."""
        return all(v.applicable for v in self.vectors)

    @property
    def min_distance(self) -> Optional[int]:
        """Proven lower bound on every cross-iteration true-dependence
        distance, or ``None`` when nothing is provable (a runtime
        subscript, or no true dependence is possible at all)."""
        if not self.applicable:
            return None
        bounds: List[int] = []
        for v in self.vectors:
            if not v.may_carry_true:
                continue
            if v.distance is not None and v.distance > 0:
                bounds.append(v.distance)
            elif v.min_distance is not None:
                bounds.append(v.min_distance)
            else:
                bounds.append(1)
        if not bounds:
            return None
        return min(bounds)

    def may_carry_true(self) -> bool:
        return any(v.may_carry_true for v in self.vectors)

    def proof_steps(self) -> Tuple[ProofStep, ...]:
        steps: List[ProofStep] = []
        for v in self.vectors:
            steps.extend(v.steps)
        return tuple(steps)

    def signature(self) -> tuple:
        return (
            self.n,
            tuple(v.signature() for v in self.vectors),
        )

    def as_dict(self) -> dict:
        return {
            "loop": self.loop_name,
            "n": self.n,
            "applicable": self.applicable,
            "min_distance": self.min_distance,
            "vectors": [v.as_dict() for v in self.vectors],
        }

    def describe(self) -> str:
        head = f"{self.loop_name}: battery"
        if self.min_distance is not None:
            head += f" min_distance={self.min_distance}"
        elif not self.applicable:
            head += " (inapplicable: runtime subscript)"
        lines = [head]
        lines += ["  " + v.describe() for v in self.vectors]
        return "\n".join(lines)


def run_battery(loop: IrregularLoop) -> BatteryResult:
    """Run the classical test battery over every declared read slot.

    Loops without declared slots (raw read tables — runtime data) get a
    single inapplicable vector when they read anything at all, mirroring
    the engine's honest runtime-only decline.
    """
    vectors: List[DependenceVector]
    if loop.read_slots is None:
        if loop.reads.total_terms == 0:
            vectors = []
        else:
            vectors = [
                _inapplicable(
                    0, "no declared read slots (runtime read table)"
                )
            ]
    else:
        vectors = [
            test_slot(loop, j) for j in range(len(loop.read_slots))
        ]
    return BatteryResult(
        loop_name=loop.name,
        n=loop.n,
        vectors=tuple(vectors),
    )
