"""Dependence vectors: direction + exact-or-bounded distance per slot.

A :class:`DependenceVector` is the battery's conclusion about one read
slot against the loop's write subscript.  The ``direction`` string names
every relation an aliasing (writer, reader) iteration pair may take —
``"<"`` writer-earlier (a true dependence), ``"="`` intra-iteration,
``">"`` writer-later (an antidependence) — so ``"<="`` reads "true or
intra, never anti".  :data:`DIR_NONE` means no aliasing is possible for
any input; :data:`DIR_ANY` means the tests could not narrow the set.

``distance`` is the exact dependence distance when every dependent pair
shares one; ``min_distance`` is the load-bearing field: a proven lower
bound on the distance of *every* cross-iteration true dependence the
slot can carry, valid for every input (``None`` when no true dependence
is possible or nothing is provable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.analysis.proofs import ProofStep

__all__ = [
    "DependenceVector",
    "direction_string",
    "DIR_ANY",
    "DIR_NONE",
]

#: No aliasing pair exists for any input.
DIR_NONE = "-"
#: The battery could not constrain the direction set.
DIR_ANY = "*"


def direction_string(may_lt: bool, may_eq: bool, may_gt: bool) -> str:
    """Canonical direction string for a set of possible relations."""
    out = ("<" if may_lt else "") + ("=" if may_eq else "")
    out += ">" if may_gt else ""
    return out or DIR_NONE


@dataclass(frozen=True)
class DependenceVector:
    """One slot's direction/distance summary from the test battery."""

    slot: int
    test: str
    applicable: bool
    direction: str
    distance: Optional[int] = None
    min_distance: Optional[int] = None
    steps: Tuple[ProofStep, ...] = field(default_factory=tuple)

    @property
    def may_carry_true(self) -> bool:
        """Whether a cross-iteration true dependence may exist."""
        if not self.applicable:
            return True
        return self.direction == DIR_ANY or "<" in self.direction

    def signature(self) -> tuple:
        """Hashable summary (folded into verdict signatures)."""
        return (
            self.slot,
            self.test,
            self.applicable,
            self.direction,
            self.distance,
            self.min_distance,
        )

    def as_dict(self) -> dict:
        return {
            "slot": self.slot,
            "test": self.test,
            "applicable": self.applicable,
            "direction": self.direction,
            "distance": self.distance,
            "min_distance": self.min_distance,
            "steps": [s.as_dict() for s in self.steps],
        }

    def describe(self) -> str:
        if not self.applicable:
            return (
                f"slot {self.slot}: tests inapplicable (runtime subscript)"
            )
        body = f"direction {self.direction!r}"
        if self.distance is not None:
            body += f", distance={self.distance}"
        elif self.min_distance is not None:
            body += f", distance>={self.min_distance}"
        return f"slot {self.slot}: {body} ({self.test})"
