"""``python -m repro lint`` — run the static analyzer from the shell.

Targets
-------
A target is any mix of:

- a ``.py`` file exposing loops through one of three hooks, checked in
  order: ``build_loops() -> dict[str, IrregularLoop]``, a module-level
  ``LOOPS`` dict, or ``build_loop() -> IrregularLoop``;
- a directory — every ``*.py`` under it that defines one of those hooks
  is linted (files without a hook are skipped silently, so pointing the
  CI gate at ``examples/`` is safe);
- a builtin spec: ``figure4[:n=..,m=..,l=..]``, ``chain[:n=..,d=..]``,
  ``random[:n=..,seed=..,max_terms=..]``.

Options
-------
``--json``               machine-readable output instead of text
``--schedule=KIND``      lint against an executor schedule
                         (block/cyclic/dynamic/guided)
``--chunk=K``            chunk size for cyclic/dynamic/guided
``--processors=P``       processor count (default 16)
``--strip-block=B``      lint a §2.3 strip-mined variant with block B
``--backend=NAME``       also race-check NAME's schedule
                         (vectorized/threaded/simulated)
``--rules=A,B``          run only these rule IDs
``--strict``             exit 1 on warnings, not just errors
``--baseline=FILE``      suppress findings recorded in FILE, so the gate
                         fails only on *new* diagnostics
``--write-baseline=FILE`` record the current findings as the baseline
                         and exit 0 (mutually exclusive with --baseline)
``--prune-baseline``     with ``--baseline=FILE``: rewrite FILE keeping
                         only the recorded findings the current run still
                         produces, dropping stale entries (fixed findings
                         whose baseline keys would otherwise shadow any
                         future regression), and exit 0
``--fix``                apply mechanical fix-its (LEGACY-KWARGS: fold
                         deprecated keywords into ``spec=PlanSpec(...)``)
                         — dry run by default, printing a unified diff of
                         what *would* change
``--write``              with ``--fix``: write the fixed sources in place

A baseline file is JSON — ``{"version": 1, "findings": [key, ...]}``
with one ``rule|loop|location`` key per accepted finding.  Suppressed
findings are excluded from the exit-status computation and from the text
output (the JSON output lists them under ``suppressed``), so a CI gate
with ``--strict --baseline=...`` only fails when a diagnostic appears
that the baseline has not recorded.

Exit status: 0 clean (or info/warning findings only), 1 if any
error-severity finding (always includes races), 2 on usage errors.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

from repro.ir.loop import IrregularLoop
from repro.lint.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    format_diagnostics,
)
from repro.lint.driver import run_lints
from repro.lint.rules import LegacyKwargsRule, rule_ids

__all__ = [
    "main",
    "collect_loops",
    "collect_sources",
    "loops_from_file",
    "builtin_loops",
    "baseline_key",
    "load_baseline",
]

#: Hook names probed on target modules, in priority order.
_HOOKS = ("build_loops", "LOOPS", "build_loop")


def baseline_key(diagnostic: Diagnostic) -> str:
    """The identity under which a finding is recorded in (and matched
    against) a baseline file: rule, loop, and location — but not the
    message text, which may be rephrased without the finding changing."""
    return f"{diagnostic.rule}|{diagnostic.loop}|{diagnostic.location}"


def load_baseline(path: Path) -> set[str]:
    """Read a baseline file written by ``--write-baseline``."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not JSON: {exc}") from None
    if not isinstance(data, dict) or not isinstance(
        data.get("findings"), list
    ):
        raise ValueError(
            f"baseline {path} is malformed: expected an object with a "
            f"'findings' list"
        )
    return set(data["findings"])


def builtin_loops(spec: str) -> dict[str, IrregularLoop]:
    """Instantiate a builtin loop spec like ``figure4:n=200,l=8``."""
    from repro.workloads.synthetic import chain_loop, random_irregular_loop
    from repro.workloads.testloop import make_test_loop

    kind, _, argstr = spec.partition(":")
    kwargs: dict[str, int] = {}
    if argstr:
        for item in argstr.split(","):
            key, _, value = item.partition("=")
            if not value:
                raise ValueError(f"malformed spec argument {item!r} in {spec!r}")
            kwargs[key.strip()] = int(value)
    if kind == "figure4":
        loop = make_test_loop(
            n=kwargs.pop("n", 200),
            m=kwargs.pop("m", 2),
            l=kwargs.pop("l", 8),
        )
    elif kind == "chain":
        loop = chain_loop(kwargs.pop("n", 200), kwargs.pop("d", 1))
    elif kind == "random":
        loop = random_irregular_loop(
            kwargs.pop("n", 200),
            max_terms=kwargs.pop("max_terms", 4),
            seed=kwargs.pop("seed", 0),
        )
    else:
        raise ValueError(f"unknown builtin loop spec {kind!r}")
    if kwargs:
        raise ValueError(
            f"unknown spec argument(s) {sorted(kwargs)} for {kind!r}"
        )
    return {loop.name: loop}


def loops_from_file(path: Path) -> dict[str, IrregularLoop]:
    """Import ``path`` and harvest its loops via the first hook found."""
    spec = importlib.util.spec_from_file_location(
        f"_repro_lint_target_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    for hook in _HOOKS:
        obj = getattr(module, hook, None)
        if obj is None:
            continue
        harvest = obj() if callable(obj) else obj
        if isinstance(harvest, IrregularLoop):
            return {harvest.name: harvest}
        return dict(harvest)
    raise ValueError(
        f"{path} defines none of the lint hooks {', '.join(_HOOKS)}"
    )


def _file_has_hook(path: Path) -> bool:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return False
    return any(hook in text for hook in _HOOKS)


def collect_sources(targets: list[str]) -> list[Path]:
    """Resolve targets to the ``.py`` files they name, for the
    source-level rules (``LEGACY-KWARGS``).  Builtin specs contribute no
    sources; directories contribute every ``*.py`` under them — *all* of
    them, not just loop-hook files, since a deprecated call site is a
    finding wherever it lives."""
    sources: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            sources.extend(
                file
                for file in sorted(path.rglob("*.py"))
                if "__pycache__" not in file.parts
            )
        elif path.is_file() and path.suffix == ".py":
            sources.append(path)
    return sources


def collect_loops(
    targets: list[str],
) -> list[tuple[str, str, IrregularLoop]]:
    """Resolve targets to ``(source, name, loop)`` triples."""
    collected: list[tuple[str, str, IrregularLoop]] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            hits = 0
            for file in sorted(path.rglob("*.py")):
                # Bytecode caches shadow their source files (a stale
                # sibling .py inside __pycache__ would be imported and
                # linted twice, or crash on a bad import); skip them.
                if "__pycache__" in file.parts:
                    continue
                if not _file_has_hook(file):
                    continue
                for name, loop in loops_from_file(file).items():
                    collected.append((str(file), name, loop))
                    hits += 1
            if hits == 0:
                raise ValueError(
                    f"no *.py file under {path} defines a lint hook "
                    f"({', '.join(_HOOKS)})"
                )
        elif path.is_file():
            for name, loop in loops_from_file(path).items():
                collected.append((str(path), name, loop))
        else:
            for name, loop in builtin_loops(target).items():
                collected.append((f"builtin:{target}", name, loop))
    return collected


def main(argv: list[str]) -> int:
    as_json = False
    strict = False
    schedule: str | None = None
    chunk = 1
    processors = 16
    strip_block: int | None = None
    backend: str | None = None
    only: list[str] | None = None
    baseline: set[str] | None = None
    baseline_path: Path | None = None
    write_baseline: Path | None = None
    prune_baseline = False
    fix = False
    write = False
    targets: list[str] = []
    try:
        for arg in argv:
            if arg == "--json":
                as_json = True
            elif arg == "--strict":
                strict = True
            elif arg == "--fix":
                fix = True
            elif arg == "--write":
                write = True
            elif arg == "--prune-baseline":
                prune_baseline = True
            elif arg.startswith("--baseline="):
                baseline_path = Path(arg.split("=", 1)[1])
                baseline = load_baseline(baseline_path)
            elif arg.startswith("--write-baseline="):
                write_baseline = Path(arg.split("=", 1)[1])
            elif arg.startswith("--schedule="):
                schedule = arg.split("=", 1)[1]
            elif arg.startswith("--chunk="):
                chunk = int(arg.split("=", 1)[1])
            elif arg.startswith("--processors="):
                processors = int(arg.split("=", 1)[1])
            elif arg.startswith("--strip-block="):
                strip_block = int(arg.split("=", 1)[1])
            elif arg.startswith("--backend="):
                backend = arg.split("=", 1)[1]
            elif arg.startswith("--rules="):
                only = [r.strip() for r in arg.split("=", 1)[1].split(",")]
                unknown = sorted(set(only) - set(rule_ids()))
                if unknown:
                    raise ValueError(
                        f"unknown rule ID(s) {', '.join(unknown)}; "
                        f"registered: {', '.join(rule_ids())}"
                    )
            elif arg.startswith("-"):
                raise ValueError(f"unknown lint option {arg!r}")
            else:
                targets.append(arg)
        if baseline is not None and write_baseline is not None:
            raise ValueError(
                "--baseline and --write-baseline are mutually exclusive"
            )
        if prune_baseline and baseline is None:
            raise ValueError(
                "--prune-baseline needs --baseline=FILE to know which "
                "file to rewrite"
            )
        if write and not fix:
            raise ValueError("--write only makes sense with --fix")
        if not targets:
            raise ValueError(
                "no targets; give a .py file, a directory, or a builtin "
                "spec (figure4/chain/random)"
            )
        if fix:
            return _run_fixes(targets, write)
        loops = collect_loops(targets)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    records: list[dict] = []
    all_keys: set[str] = set()
    total_suppressed = 0
    worst = ""

    def ingest(
        source: str,
        name: str,
        diagnostics: list[Diagnostic],
        quiet_when_clean: bool = False,
    ) -> None:
        nonlocal total_suppressed, worst
        all_keys.update(baseline_key(d) for d in diagnostics)
        suppressed: list[Diagnostic] = []
        if baseline is not None:
            suppressed = [
                d for d in diagnostics if baseline_key(d) in baseline
            ]
            diagnostics = [
                d for d in diagnostics if baseline_key(d) not in baseline
            ]
            total_suppressed += len(suppressed)
        if quiet_when_clean and not diagnostics and not suppressed:
            return
        records.append(
            {
                "source": source,
                "loop": name,
                "diagnostics": [d.as_dict() for d in diagnostics],
                "suppressed": [baseline_key(d) for d in suppressed],
            }
        )
        worst = _worse(worst, diagnostics)
        if not as_json and write_baseline is None and not prune_baseline:
            print(f"== {name} ({source}) ==")
            print(format_diagnostics(diagnostics))
            if suppressed:
                print(f"({len(suppressed)} baselined finding(s) suppressed)")
            print()

    for source, name, loop in loops:
        ingest(
            source,
            name,
            run_lints(
                loop,
                schedule=schedule,
                chunk=chunk,
                processors=processors,
                strip_block=strip_block,
                only=only,
                backend=backend,
            ),
        )

    # Source-level rules run per target file, not per harvested loop:
    # a deprecated call site is a finding whether or not the file also
    # defines a loop hook.
    if only is None or LegacyKwargsRule.rule_id in only:
        scanner = LegacyKwargsRule()
        for file in collect_sources(targets):
            try:
                text = file.read_text(encoding="utf-8")
            except OSError:
                continue
            ingest(
                str(file),
                file.name,
                list(scanner.scan(str(file), text)),
                quiet_when_clean=True,
            )

    if prune_baseline:
        assert baseline is not None and baseline_path is not None
        kept = baseline & all_keys
        stale = sorted(baseline - all_keys)
        baseline_path.write_text(
            json.dumps({"version": 1, "findings": sorted(kept)}, indent=2)
            + "\n",
            encoding="utf-8",
        )
        print(
            f"pruned {len(stale)} stale finding key(s) from "
            f"{baseline_path} ({len(kept)} kept)"
        )
        for key in stale:
            print(f"  - {key}")
        return 0

    if write_baseline is not None:
        write_baseline.write_text(
            json.dumps(
                {"version": 1, "findings": sorted(all_keys)}, indent=2
            )
            + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote {len(all_keys)} finding key(s) from {len(loops)} "
            f"loop(s) to {write_baseline}"
        )
        return 0

    if as_json:
        print(
            json.dumps(
                {
                    "targets": records,
                    "worst_severity": worst,
                    "suppressed": total_suppressed,
                },
                indent=2,
            )
        )
    else:
        tail = (
            f" ({total_suppressed} baselined finding(s) suppressed)"
            if baseline is not None
            else ""
        )
        print(
            f"linted {len(loops)} loop(s) from {len(targets)} "
            f"target(s){tail}"
        )
    if worst == SEVERITY_ERROR:
        return 1
    if strict and worst == SEVERITY_WARNING:
        return 1
    return 0


def _run_fixes(targets: list[str], write: bool) -> int:
    """``--fix`` mode: rewrite LEGACY-KWARGS call sites in the target
    sources — a unified-diff dry run unless ``write`` is set."""
    import difflib

    from repro.lint.fixes import fix_legacy_kwargs

    sources = collect_sources(targets)
    if not sources:
        print("lint: --fix found no .py sources in the targets", file=sys.stderr)
        return 2
    changed = 0
    skipped: list[str] = []
    for file in sources:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError:
            continue
        result = fix_legacy_kwargs(str(file), text)
        skipped.extend(result.skipped)
        if not result.changed:
            continue
        changed += 1
        if write:
            file.write_text(result.fixed_source, encoding="utf-8")
            print(f"fixed {result.fixed_calls} call(s) in {file}")
        else:
            diff = difflib.unified_diff(
                text.splitlines(keepends=True),
                result.fixed_source.splitlines(keepends=True),
                fromfile=str(file),
                tofile=f"{file} (fixed)",
            )
            sys.stdout.writelines(diff)
    for note in skipped:
        print(f"skipped: {note}")
    verb = "fixed" if write else "would fix"
    print(
        f"{verb} {changed} file(s) of {len(sources)} scanned"
        + ("" if write else " (dry run; pass --write to apply)")
    )
    return 0


def _worse(worst: str, diagnostics: list[Diagnostic]) -> str:
    order = {"": 0, "info": 1, "warning": 2, "error": 3}
    for d in diagnostics:
        if order[d.severity] > order[worst]:
            worst = d.severity
    return worst
