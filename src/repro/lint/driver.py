"""The lint driver: run every registered rule (and, optionally, the
happens-before race checker) over one loop and collect diagnostics.

:func:`run_lints` is the single entry point used by the CLI, by
``parallelize(..., validate="static")``, and by the ``ValidatingRunner``.
"""

from __future__ import annotations

from repro.ir.loop import IrregularLoop
from repro.ir.transform import TransformPlan
from repro.lint.context import LintContext
from repro.lint.diagnostics import SEVERITY_ERROR, Diagnostic
from repro.lint.hb import RaceReport, check_backend_schedule
from repro.lint.rules import all_rules

__all__ = ["RACE_RULE_ID", "race_diagnostics", "run_lints"]

#: Rule ID stamped on happens-before violations.  Not a registered
#: :class:`~repro.lint.rules.LintRule` — races come from the schedule
#: checker, not from a static pattern — but it renders and serializes
#: like any other rule's finding.
RACE_RULE_ID = "HB-RACE"


def race_diagnostics(report: RaceReport) -> list[Diagnostic]:
    """Convert a :class:`RaceReport`'s races into error diagnostics."""
    return [
        Diagnostic(
            rule=RACE_RULE_ID,
            severity=SEVERITY_ERROR,
            loop=report.loop_name,
            message=(
                f"{race.describe()} — the {report.schedule_label} schedule "
                f"provides no happens-before edge for this true dependence"
            ),
            suggestion=(
                "the schedule is corrupt or the validated order/iter data "
                "does not match the loop; rebuild it from compute_levels() "
                "or the inspector"
            ),
            location=f"iterations {race.writer}->{race.reader}",
            paper_ref="Figure 5 (check < 0)",
        )
        for race in report.races
    ]


def run_lints(
    loop: IrregularLoop,
    plan: TransformPlan | None = None,
    schedule: str | None = None,
    *,
    chunk: int = 1,
    processors: int = 16,
    strip_block: int | None = None,
    only: list[str] | None = None,
    backend: str | None = None,
) -> list[Diagnostic]:
    """Run lint rules (and optionally the race checker) over ``loop``.

    Parameters
    ----------
    loop:
        The loop to analyze.
    plan:
        Transform plan to lint against; computed by
        :func:`~repro.ir.transform.plan_transform` when omitted.
    schedule:
        Executor schedule kind (``block``/``cyclic``/``dynamic``/
        ``guided``); ``None`` skips schedule-shape rules.
    chunk, processors, strip_block:
        Schedule parameters; see :class:`~repro.lint.context.LintContext`.
    only:
        Restrict to these rule IDs (default: every registered rule).
    backend:
        When given (``"vectorized"``/``"threaded"``/``"simulated"``),
        additionally run the happens-before race checker for that
        backend's schedule and append any race as an ``HB-RACE`` error.

    Returns
    -------
    list[Diagnostic]
        All findings; empty when the loop is clean.
    """
    ctx = LintContext(
        loop,
        plan=plan,
        schedule_kind=schedule,
        chunk=chunk,
        processors=processors,
        strip_block=strip_block,
    )
    diagnostics: list[Diagnostic] = []
    for rule in all_rules(only):
        diagnostics.extend(rule.check(ctx))
    if backend is not None:
        report = check_backend_schedule(
            loop,
            backend,
            processors=processors,
            schedule=schedule,
            chunk=chunk,
        )
        diagnostics.extend(race_diagnostics(report))
    return diagnostics
