"""The lint rule framework and the built-in rules.

A :class:`LintRule` inspects a :class:`~repro.lint.context.LintContext`
and yields :class:`~repro.lint.diagnostics.Diagnostic` findings.  Rules
register themselves in a module-level registry (:func:`register`), so
downstream code — and tests — can add rules without touching the driver.

Every built-in rule is grounded in the paper:

=================  ====================================================
``DOALL-ABLE``     no cross-iteration true dependence at run time — the
                   doacross machinery (Figure 6's efficiency plateau) is
                   pure overhead; run as a doall.
``AFFINE-WRITE``   the write subscript is statically affine — §2.3's
                   linear-subscript variant removes the inspector and the
                   ``iter`` array.
``SELF-ANTI-ONLY`` only antidependences cross iterations — the ``ynew``
                   renaming alone restores independence; no executor wait
                   can ever fire.
``DEAD-WAIT``      a term slot whose reads are never true-dependent
                   (Figure 5's ``check < 0`` branch is dead for it) still
                   pays the dependence check.
``CHUNK-CYCLE``    the chunk/strip-mine choice serializes the wavefront:
                   contiguous runs longer than the minimum dependence
                   distance stall readers behind same-stream writers (the
                   block-schedule staircase), and strip blocks narrower
                   than the widest wavefront cap its parallelism (§2.3).
``UNREACHED-ELEMENT`` reads of never-written elements always take the
                   ``iter == MAXINT`` old-value path.
``SYMBOLIC-MISMATCH`` a declared closed-form subscript disagrees with
                   the materialized read table — every symbolic verdict
                   for the loop would be unsound (error).
``LEGACY-KWARGS``  a call site passes the deprecated per-option keywords
                   (``schedule=``/``chunk=``/``validate=``/``observe=``/
                   ``analyze=``) to ``parallelize``/``make_runner``
                   instead of a consolidated ``PlanSpec`` — source-level
                   (AST) rule, driven per file by the lint CLI.
``SYNC-ELIDABLE``  the dependence-test battery proves every true
                   dependence has distance >= the synchronization
                   granularity: the per-element post/wait protocol can be
                   replaced by one barrier per group (proof-backed).
``COUPLED-SUBSCRIPT`` a declared read slot's subscript defeats the whole
                   test battery (non-affine / runtime-coupled): only the
                   runtime inspector can schedule the loop.
``DISTANCE-MISMATCH`` the battery's proven distance lower bound exceeds
                   a distance the inspector actually observes — the
                   static model is unsound for this loop (error).
=================  ====================================================

``DOALL-ABLE`` and ``AFFINE-WRITE`` are *proof-backed*: when the
symbolic dependence engine (:mod:`repro.analysis`) proves the property
for every input, the finding says so and cites the verdict; otherwise
they fall back to the value-level observation on this instance and say
that instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

import numpy as np

from repro.ir.analysis import CAT_TRUE
from repro.ir.subscript import AffineSubscript
from repro.ir.transform import STRATEGY_DOALL, STRATEGY_LINEAR
from repro.lint.context import LintContext
from repro.lint.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)

__all__ = [
    "LintRule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
    "DoallAbleRule",
    "AffineWriteRule",
    "SelfAntiOnlyRule",
    "DeadWaitRule",
    "ChunkCycleRule",
    "UnreachedElementRule",
    "SymbolicMismatchRule",
    "LegacyKwargsRule",
    "SyncElidableRule",
    "CoupledSubscriptRule",
    "DistanceMismatchRule",
]


class LintRule:
    """Base class: one named check over a :class:`LintContext`.

    Subclasses set :attr:`rule_id`, :attr:`default_severity`,
    :attr:`paper_ref`, and :attr:`description`, and implement
    :meth:`check`.
    """

    rule_id: str = ""
    default_severity: str = SEVERITY_WARNING
    paper_ref: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield findings for ``ctx`` (empty when the rule is quiet)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        ctx: LintContext,
        message: str,
        suggestion: str = "",
        location: str = "",
        severity: str | None = None,
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` stamped with this rule's identity."""
        return Diagnostic(
            rule=self.rule_id,
            severity=self.default_severity if severity is None else severity,
            loop=ctx.loop.name,
            message=message,
            suggestion=suggestion,
            location=location,
            paper_ref=self.paper_ref,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[LintRule]] = {}


def register(rule_cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: add ``rule_cls`` to the registry (by rule ID)."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule ID {rule_cls.rule_id!r}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def rule_ids() -> list[str]:
    """Registered rule IDs, sorted."""
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> LintRule:
    """Instantiate the registered rule with ID ``rule_id``."""
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; registered: "
            f"{', '.join(rule_ids())}"
        ) from None


def all_rules(only: Iterable[str] | None = None) -> list[LintRule]:
    """Instances of every registered rule (or the subset ``only``)."""
    ids = rule_ids() if only is None else list(only)
    return [get_rule(rule_id) for rule_id in ids]


# ----------------------------------------------------------------------
# Built-in rules
# ----------------------------------------------------------------------
@register
class DoallAbleRule(LintRule):
    rule_id = "DOALL-ABLE"
    default_severity = SEVERITY_WARNING
    paper_ref = "§1, Figure 6 (odd L)"
    description = (
        "no cross-iteration true dependence: the loop is a doall and the "
        "inspector/wait machinery is pure overhead"
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.analysis import VERDICT_DOALL

        if ctx.loop.n == 0 or ctx.plan.strategy == STRATEGY_DOALL:
            return
        if ctx.verdict.kind == VERDICT_DOALL:
            # Proof-backed: independence holds for *every* input, not just
            # the one this instance materialized.
            yield self.finding(
                ctx,
                "proven independent for every input: no read slot can "
                "carry a cross-iteration true dependence (symbolic "
                "verdict doall-proven)",
                suggestion=(
                    "run with analyze=\"symbolic\" — parallelize(loop, "
                    "analyze=\"symbolic\") dispatches to a doall with the "
                    "inspector elided; no caller assertion needed"
                ),
            )
            return
        if ctx.summary.true_terms == 0:
            yield self.finding(
                ctx,
                "no read is true-dependent on an earlier iteration; every "
                "iteration is independent once writes are renamed "
                "(observed on this instance — not proven for every input)",
                suggestion=(
                    "run as a doall — parallelize(loop, "
                    "assert_independent=True) — or use the vectorized "
                    "backend, which collapses the loop to one wavefront"
                ),
            )


@register
class AffineWriteRule(LintRule):
    rule_id = "AFFINE-WRITE"
    default_severity = SEVERITY_WARNING
    paper_ref = "§2.3 (linear subscripts)"
    description = (
        "statically affine write subscript: the linear variant computes "
        "writers in closed form, eliminating the inspector and iter array"
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        sub = ctx.loop.write_subscript
        if not isinstance(sub, AffineSubscript):
            return
        if ctx.loop.reads.total_terms == 0:
            return
        detail = (
            f"write subscript is affine (i ↦ {sub.c}·i + {sub.d}); the "
            f"writer of element off is (off − {sub.d})/{sub.c} in closed "
            f"form"
        )
        if ctx.verdict.write_injective:
            detail += " (injectivity proven by the symbolic engine)"
        if ctx.plan.needs_inspector:
            suggestion = (
                "use the linear variant (LinearDoacross, or "
                "PreprocessedDoacross.run(loop, linear=True)): no "
                "inspector phase, no iter array storage"
            )
            if ctx.verdict.elidable:
                suggestion += (
                    "; or analyze=\"symbolic\" — the full verdict is "
                    "elidable, so the inspector record itself can be "
                    "built in closed form"
                )
            yield self.finding(
                ctx,
                detail + " — yet the plan schedules an inspector phase",
                suggestion=suggestion,
            )
        elif ctx.plan.strategy == STRATEGY_LINEAR:
            yield self.finding(
                ctx,
                detail + " — the plan already selects the linear variant",
                severity=SEVERITY_INFO,
            )


@register
class SelfAntiOnlyRule(LintRule):
    rule_id = "SELF-ANTI-ONLY"
    default_severity = SEVERITY_INFO
    paper_ref = "§2.1 (ynew renaming), Figure 5"
    description = (
        "only antidependences cross iterations: renaming writes into ynew "
        "removes them all, so no executor wait can ever block"
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        s = ctx.summary
        if s.true_terms == 0 and s.anti_terms > 0:
            yield self.finding(
                ctx,
                f"all {s.anti_terms} cross-iteration reference(s) are "
                f"antidependences; the ynew renaming alone makes every "
                f"iteration independent — no wait will ever block",
                suggestion=(
                    "no synchronization is needed: any schedule is legal, "
                    "and wait instrumentation can be elided"
                ),
            )


@register
class DeadWaitRule(LintRule):
    rule_id = "DEAD-WAIT"
    default_severity = SEVERITY_WARNING
    paper_ref = "Figure 5 trichotomy, §3.1 (binding term)"
    description = (
        "a term slot that is never true-dependent still pays the planned "
        "dependence check; its wait branch is dead"
    )

    #: Cap on slots listed in the message (the count stays exact).
    max_listed = 8

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if not ctx.plan.needs_inspector or ctx.summary.true_terms == 0:
            # Without an inspector there are no planned waits; without any
            # true dependence DOALL-ABLE already reports the whole loop.
            return
        loop = ctx.loop
        readers, _writers, categories = ctx.classified
        total = loop.reads.total_terms
        if total == 0:
            return
        slot = np.arange(total, dtype=np.int64) - loop.reads.ptr[readers]
        n_slots = int(slot.max()) + 1
        present = np.bincount(slot, minlength=n_slots)
        true_hits = np.bincount(
            slot[categories == CAT_TRUE], minlength=n_slots
        )
        dead = np.nonzero((present > 0) & (true_hits == 0))[0]
        if len(dead) == 0:
            return
        listed = ", ".join(str(int(j)) for j in dead[: self.max_listed])
        if len(dead) > self.max_listed:
            listed += ", …"
        dead_terms = int(present[dead].sum())
        yield self.finding(
            ctx,
            f"{len(dead)} term slot(s) [{listed}] are never "
            f"true-dependent in any iteration ({dead_terms} term(s) pay a "
            f"dependence check whose wait branch cannot fire)",
            suggestion=(
                "order terms so the binding (true-dependent) terms come "
                "first and skip the iter check for the dead slots"
            ),
            location=f"term slot(s) {listed}",
        )


@register
class ChunkCycleRule(LintRule):
    rule_id = "CHUNK-CYCLE"
    default_severity = SEVERITY_WARNING
    paper_ref = "§2.3 (strip-mining); scheduling ablation A"
    description = (
        "the chunk or strip-mine choice serializes the wavefront: "
        "contiguous runs longer than the minimum dependence distance, or "
        "strip blocks narrower than the widest wavefront"
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        d_min = ctx.summary.min_distance
        if d_min is not None and ctx.schedule_kind is not None:
            run = self._contiguous_run(ctx)
            if run is not None and run > d_min:
                yield self.finding(
                    ctx,
                    f"schedule {ctx.schedule_kind!r} hands each processor "
                    f"contiguous runs of {run} iteration(s), but the "
                    f"minimum true-dependence distance is {d_min}: readers "
                    f"stall behind writers later in the previous run (the "
                    f"block-schedule staircase)",
                    suggestion=(
                        f"use a cyclic schedule with chunk <= {d_min} so "
                        f"dependent iterations land on different "
                        f"processors and pipeline"
                    ),
                    location=f"schedule={ctx.schedule_kind}, run={run}",
                )
        if ctx.strip_block is not None:
            width = ctx.level_schedule.max_width()
            if 0 < ctx.strip_block < width:
                yield self.finding(
                    ctx,
                    f"strip-mine block {ctx.strip_block} is narrower than "
                    f"the widest wavefront ({width} independent "
                    f"iterations): at most {ctx.strip_block} of them can "
                    f"run concurrently per block",
                    suggestion=(
                        f"raise the strip block to >= {width}, or accept "
                        f"the memory/parallelism trade (§2.3)"
                    ),
                    location=f"strip_block={ctx.strip_block}",
                )

    @staticmethod
    def _contiguous_run(ctx: LintContext) -> int | None:
        """Longest run of consecutive positions one processor executes
        back-to-back under the configured schedule."""
        n, p = ctx.loop.n, ctx.processors
        if ctx.schedule_kind == "block":
            return -(-n // p) if n else None
        if ctx.schedule_kind in ("cyclic", "dynamic"):
            return ctx.chunk
        if ctx.schedule_kind == "guided":
            return max(ctx.chunk, -(-n // (2 * p))) if n else None
        return None


@register
class UnreachedElementRule(LintRule):
    rule_id = "UNREACHED-ELEMENT"
    default_severity = SEVERITY_INFO
    paper_ref = "Figure 5 (iter = MAXINT)"
    description = (
        "reads of elements no iteration writes always take the MAXINT "
        "old-value path"
    )

    max_listed = 5

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        s = ctx.summary
        if s.unwritten_terms == 0:
            return
        _readers, writers, _categories = ctx.classified
        unwritten = np.unique(ctx.loop.reads.index[writers < 0])
        listed = ", ".join(str(int(e)) for e in unwritten[: self.max_listed])
        if len(unwritten) > self.max_listed:
            listed += ", …"
        yield self.finding(
            ctx,
            f"{s.unwritten_terms} read term(s) reference {len(unwritten)} "
            f"element(s) [{listed}] that no iteration writes; they always "
            f"read the old y value through the iter == MAXINT path",
            suggestion=(
                "nothing to fix — but if *all* reads are of this kind the "
                "loop is a doall (see DOALL-ABLE)"
            ),
            location=f"elements {listed}",
        )


@register
class LegacyKwargsRule(LintRule):
    rule_id = "LEGACY-KWARGS"
    default_severity = SEVERITY_WARNING
    paper_ref = "PlanSpec consolidation (repro.passes.spec)"
    description = (
        "a call site passes deprecated per-option keywords to "
        "parallelize/make_runner instead of a consolidated PlanSpec"
    )

    #: Keywords that moved onto :class:`~repro.passes.spec.PlanSpec`,
    #: per entry point (``make_runner`` never took schedule/chunk).
    DEPRECATED = {
        "parallelize": ("schedule", "chunk", "validate", "observe", "analyze"),
        "make_runner": ("validate", "observe", "analyze"),
    }

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        # This rule inspects *source files*, not loop values; the driver
        # has nothing for it to do.  The lint CLI calls :meth:`scan` on
        # each target file instead.
        return iter(())

    def scan(self, path: str, source: str) -> Iterator[Diagnostic]:
        """Yield one finding per call that passes a deprecated keyword.

        ``path`` is used for the finding's loop/location fields; a file
        that fails to parse is skipped silently (it is not this rule's
        job to report syntax errors).
        """
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name not in self.DEPRECATED:
                continue
            hit = [
                kw.arg
                for kw in node.keywords
                if kw.arg in self.DEPRECATED[name]
            ]
            if not hit:
                continue
            folded = ", ".join(f"{k}=..." for k in hit)
            yield Diagnostic(
                rule=self.rule_id,
                severity=self.default_severity,
                loop=path,
                message=(
                    f"{name}() is passed the deprecated keyword option(s) "
                    f"{', '.join(hit)}; each call emits a "
                    f"DeprecationWarning and the keywords will be removed"
                ),
                suggestion=(
                    f"fold them into the consolidated spec: "
                    f"{name}(..., spec=PlanSpec({folded}))"
                ),
                location=f"{path}:{node.lineno}",
                paper_ref=self.paper_ref,
            )


@register
class SyncElidableRule(LintRule):
    rule_id = "SYNC-ELIDABLE"
    default_severity = SEVERITY_WARNING
    paper_ref = "§2.2 (synchronization distance); arXiv 1311.2927"
    description = (
        "the battery proves every cross-iteration true dependence has "
        "distance >= the synchronization granularity: per-element "
        "post/wait can be replaced by one barrier per iteration group"
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        # A doall plan has no synchronization to elide; every other
        # strategy (inspector-based or linear) still runs the Figure-5
        # post/wait protocol the group barrier replaces.
        if ctx.loop.n == 0 or ctx.plan.strategy == STRATEGY_DOALL:
            return
        verdict = ctx.verdict
        m = verdict.min_distance
        if m is None or m < 2 or not verdict.write_injective:
            return
        if ctx.summary.true_terms == 0:
            # Nothing to synchronize at all — DOALL-ABLE owns that case.
            return
        group = int(m)
        suggestion = (
            f"run with analyze=\"symbolic\": the distance-elision pass "
            f"replaces every post/wait with one barrier per group of "
            f"{group} iterations (proof-carrying certificate recorded in "
            f"the plan)"
        )
        chunk = ctx.chunk
        if chunk and chunk > 1:
            if chunk > m:
                suggestion += (
                    f"; note chunk={chunk} exceeds the proven distance "
                    f"{m}, so the multiproc backend cannot group-align — "
                    f"lower the chunk to <= {m}"
                )
            elif m % chunk:
                aligned = chunk * (m // chunk)
                suggestion += (
                    f"; the multiproc group is chunk-aligned down to "
                    f"{aligned} — raise the chunk to a divisor of {m} "
                    f"(or to {m} itself) to keep the full group"
                )
        yield self.finding(
            ctx,
            f"every cross-iteration true dependence is proven to have "
            f"distance >= {m} (verdict {verdict.kind!r}, write "
            f"injectivity proven): the planned per-element post/wait "
            f"protocol is {m}x finer than the dependences require",
            suggestion=suggestion,
            location=f"min_distance={m}",
        )


@register
class CoupledSubscriptRule(LintRule):
    rule_id = "COUPLED-SUBSCRIPT"
    default_severity = SEVERITY_INFO
    paper_ref = "§2 (runtime inspection); GCD/Banerjee applicability"
    description = (
        "a declared read slot's subscript defeats the whole dependence-"
        "test battery; only the runtime inspector can schedule the loop"
    )

    max_listed = 8

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        vectors = ctx.verdict.vectors
        if not vectors:
            return
        opaque = [v for v in vectors if not v.applicable]
        if not opaque:
            return
        listed = ", ".join(str(v.slot) for v in opaque[: self.max_listed])
        if len(opaque) > self.max_listed:
            listed += ", …"
        yield self.finding(
            ctx,
            f"{len(opaque)} of {len(vectors)} declared read slot(s) "
            f"[{listed}] carry subscripts the test battery cannot model "
            f"(non-affine or runtime-coupled): no static direction or "
            f"distance is provable for them",
            suggestion=(
                "keep the runtime inspector for this loop — the paper's "
                "preprocessing is exactly the fallback for subscripts "
                "static tests cannot decide; declaring the slot with an "
                "affine/strided closed form (if one exists) would bring "
                "it into the battery's reach"
            ),
            location=f"slot(s) {listed}",
        )


@register
class DistanceMismatchRule(LintRule):
    rule_id = "DISTANCE-MISMATCH"
    default_severity = SEVERITY_ERROR
    paper_ref = "§2.2 (synchronization distance)"
    description = (
        "the battery's proven distance lower bound exceeds a distance "
        "the inspector actually observes: the static model is unsound"
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        static_min = ctx.static_min_distance
        if static_min is None:
            return
        observed = ctx.summary.min_distance
        if observed is None or observed >= static_min:
            return
        yield self.finding(
            ctx,
            f"the battery proves every cross-iteration true dependence "
            f"has distance >= {static_min}, but the inspector observes a "
            f"dependence at distance {observed}: the declared subscripts "
            f"do not describe the materialized read table, and any "
            f"schedule elided from the static bound would race",
            suggestion=(
                "fix the ReadSlot declarations (SYMBOLIC-MISMATCH "
                "pinpoints the first diverging term) and do not run "
                "analyze=\"symbolic\" until the bound matches; "
                "cross_check(loop, verdict) reproduces this finding as a "
                "hard failure"
            ),
            location=f"static>={static_min}, observed={observed}",
        )


@register
class SymbolicMismatchRule(LintRule):
    rule_id = "SYMBOLIC-MISMATCH"
    default_severity = SEVERITY_ERROR
    paper_ref = "§2.3 (linear subscripts)"
    description = (
        "a declared closed-form subscript disagrees with the materialized "
        "read table: every symbolic verdict for the loop would be unsound"
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        loop = ctx.loop
        if loop.read_slots is None:
            return
        from repro.analysis import slot_term_map
        from repro.errors import ProofError

        try:
            sids = slot_term_map(loop)
        except ProofError as exc:
            yield self.finding(
                ctx,
                str(exc),
                suggestion=(
                    "fix the ReadSlot declarations (or rebuild the read "
                    "table from them with read_table_from_slots); until "
                    "then the loop must stay on the runtime inspector"
                ),
                location="slot layout",
            )
            return
        readers = loop.reads.iteration_of_term()
        for j, slot in enumerate(loop.read_slots):
            mask = sids == j
            if not mask.any():
                continue
            lo, hi = slot.active_range(loop.n)
            expected = slot.subscript.materialize(hi)[readers[mask]]
            actual = loop.reads.index[np.nonzero(mask)[0]]
            if np.array_equal(expected, actual):
                continue
            k = int(np.nonzero(expected != actual)[0][0])
            i = int(readers[mask][k])
            yield self.finding(
                ctx,
                f"declared subscript for slot {j} gives "
                f"{int(expected[k])} at iteration {i}, but the read table "
                f"has {int(actual[k])}",
                suggestion=(
                    "fix the ReadSlot declaration or rebuild the read "
                    "table from it; symbolic verdicts for this loop are "
                    "unsound until the declaration matches"
                ),
                location=f"slot {j}, iteration {i}",
            )
