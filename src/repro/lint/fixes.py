"""Source fix-its for mechanical lint findings.

The one fixable rule today is ``LEGACY-KWARGS``: a call that passes the
deprecated per-option keywords (``schedule=``/``chunk=``/``validate=``/
``observe=``/``analyze=``) to ``parallelize``/``make_runner`` is
rewritten to fold them into a consolidated ``spec=PlanSpec(...)``
argument, and a ``from repro.passes.spec import PlanSpec`` import is
added when the file has none.

The rewriter works on the AST: each offending call's source span is
replaced by the unparse of the transformed call node, everything outside
the span is preserved byte-for-byte.  That keeps the transformation
trivially correct at the cost of normalizing the formatting (and
dropping any comments) *inside* the rewritten call only — which is why
the CLI defaults to a dry-run diff and applies nothing without
``--write``.

Calls that already pass ``spec=`` are left alone (merging two specs is a
judgment call, not a mechanical fix); they are reported as skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.rules import LegacyKwargsRule

__all__ = ["FixResult", "fix_legacy_kwargs"]

#: The import inserted when a rewritten file never names PlanSpec.
_PLANSPEC_IMPORT = "from repro.passes.spec import PlanSpec"


@dataclass
class FixResult:
    """Outcome of fixing one source file."""

    path: str
    source: str
    fixed_source: str
    fixed_calls: int = 0
    skipped: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.fixed_source != self.source


def _line_offsets(source: str) -> list[int]:
    """Byte offset of the start of each 1-indexed line."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span(offsets: list[int], node: ast.AST) -> tuple[int, int]:
    start = offsets[node.lineno - 1] + node.col_offset
    end = offsets[node.end_lineno - 1] + node.end_col_offset
    return start, end


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _fold_call(node: ast.Call, deprecated: tuple[str, ...]) -> None:
    """Transform the call *in place*: deprecated keywords folded into a
    fresh ``spec=PlanSpec(...)`` keyword (appended last, in source
    order).  In-place mutation makes nested offending calls compose — an
    outer call's unparse sees its inner calls already transformed."""
    hit = [kw for kw in node.keywords if kw.arg in deprecated]
    kept = [kw for kw in node.keywords if kw.arg not in deprecated]
    spec_call = ast.Call(
        func=ast.Name(id="PlanSpec", ctx=ast.Load()),
        args=[],
        keywords=[ast.keyword(arg=kw.arg, value=kw.value) for kw in hit],
    )
    kept.append(ast.keyword(arg="spec", value=spec_call))
    node.keywords = kept


def _insert_import(source: str, tree: ast.Module) -> str:
    """Add the PlanSpec import after the file's import block (or after
    the module docstring when there are no imports)."""
    last_import_end = 0
    body = tree.body
    docstring_end = 0
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        docstring_end = body[0].end_lineno
    for stmt in body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            last_import_end = max(last_import_end, stmt.end_lineno)
    anchor = last_import_end or docstring_end
    lines = source.splitlines(keepends=True)
    insertion = _PLANSPEC_IMPORT + "\n"
    if anchor == 0:
        return insertion + source
    return "".join(lines[:anchor]) + insertion + "".join(lines[anchor:])


def fix_legacy_kwargs(path: str, source: str) -> FixResult:
    """Rewrite every LEGACY-KWARGS call site in ``source``.

    Returns a :class:`FixResult`; a file that fails to parse comes back
    unchanged (the lint rule skips it too).
    """
    result = FixResult(path=path, source=source, fixed_source=source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return result

    deprecated = LegacyKwargsRule.DEPRECATED
    targets: list[tuple[ast.Call, tuple[str, ...]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in deprecated:
            continue
        if not any(kw.arg in deprecated[name] for kw in node.keywords):
            continue
        if any(kw.arg == "spec" for kw in node.keywords):
            result.skipped.append(
                f"{path}:{node.lineno}: {name}() already passes spec=; "
                f"merge the deprecated keyword(s) into it by hand"
            )
            continue
        targets.append((node, deprecated[name]))
    if not targets:
        return result

    offsets = _line_offsets(source)
    spans = [_span(offsets, node) for node, _dep in targets]
    for node, dep in targets:
        _fold_call(node, dep)
    result.fixed_calls = len(targets)

    # Splice only the *outermost* transformed spans (a nested offending
    # call is already covered by its ancestor's unparse), bottom-up so
    # earlier spans keep their byte offsets.
    outermost = [
        (span, node)
        for span, (node, _dep) in zip(spans, targets)
        if not any(
            other != span and other[0] <= span[0] and span[1] <= other[1]
            for other in spans
        )
    ]
    fixed = source
    for (start, end), node in sorted(outermost, reverse=True):
        fixed = fixed[:start] + ast.unparse(node) + fixed[end:]

    if "PlanSpec" not in source:
        fixed = _insert_import(fixed, tree)
    result.fixed_source = fixed
    return result
