"""Structured lint diagnostics.

A :class:`Diagnostic` is one finding of one rule about one loop: rule ID,
severity, where in the loop it applies (a term slot, an iteration range, a
schedule parameter), what is wrong, and what to do about it.  Diagnostics
are plain data — renderable as aligned text for terminals and as dicts for
the ``--json`` output and for ``result.extras["lint"]``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "SEVERITIES",
    "Diagnostic",
    "format_diagnostics",
]

#: A soundness violation: running this configuration can produce wrong
#: values (e.g. an uncovered true dependence).
SEVERITY_ERROR = "error"
#: Sound but wasteful or self-defeating (dead waits, serialized wavefronts,
#: an inspector the compiler could have eliminated).
SEVERITY_WARNING = "warning"
#: Structural observations that justify a cheaper strategy.
SEVERITY_INFO = "info"

#: Severities ordered most-severe first (the report ordering).
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    Attributes
    ----------
    rule:
        The rule ID (e.g. ``"DOALL-ABLE"``).
    severity:
        One of :data:`SEVERITY_ERROR` / :data:`SEVERITY_WARNING` /
        :data:`SEVERITY_INFO`.
    loop:
        Name of the loop the finding is about.
    message:
        What was found, in one sentence.
    suggestion:
        The concrete fix (API call or parameter change), empty if none.
    location:
        Where inside the loop/plan/schedule the finding sits (term slot,
        iteration pair, schedule parameter); empty for whole-loop findings.
    paper_ref:
        The paper section grounding the rule (e.g. ``"§2.3"``).
    """

    rule: str
    severity: str
    loop: str
    message: str
    suggestion: str = ""
    location: str = ""
    paper_ref: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{'/'.join(SEVERITIES)}"
            )

    def format(self) -> str:
        """One- or two-line terminal rendering."""
        where = f" at {self.location}" if self.location else ""
        ref = f" [{self.paper_ref}]" if self.paper_ref else ""
        lines = [
            f"{self.rule:<18} {self.severity:<8} {self.message}{where}{ref}"
        ]
        if self.suggestion:
            lines.append(f"{'':<18} {'':<8} fix: {self.suggestion}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "loop": self.loop,
            "message": self.message,
            "suggestion": self.suggestion,
            "location": self.location,
            "paper_ref": self.paper_ref,
        }


def format_diagnostics(diagnostics: list[Diagnostic]) -> str:
    """Render a diagnostic list, most severe first, with a count footer."""
    if not diagnostics:
        return "no findings"
    rank = {s: k for k, s in enumerate(SEVERITIES)}
    ordered = sorted(
        diagnostics, key=lambda d: (rank[d.severity], d.rule, d.location)
    )
    counts: dict[str, int] = {}
    for d in diagnostics:
        counts[d.severity] = counts.get(d.severity, 0) + 1
    footer = ", ".join(
        f"{counts[s]} {s}(s)" for s in SEVERITIES if s in counts
    )
    return "\n".join([d.format() for d in ordered] + [footer])
