"""Happens-before race checking of backend schedules.

The executor protocol is only correct if, for every true dependence
``w → r`` found by the value-level analysis
(:func:`repro.ir.analysis.dependence_pairs`), the backend's schedule
*orders* the write of ``w`` before the read of ``r``.  Each backend
induces that order differently:

- **vectorized** — a barrier between wavefront levels
  (:meth:`~repro.graph.levels.LevelSchedule.slices`): the write happens
  before the read iff ``level(w) < level(r)``;
- **threaded** — program order within a thread (cyclic position
  assignment, increasing positions) plus the per-element ``ready`` events
  the executor actually waits on (it waits iff ``iter[element] < i``);
- **simulated** — the same protocol with the iteration→processor map
  coming from an :class:`~repro.machine.scheduler.IterationSchedule`
  (the simulated event order: each processor issues its positions in
  increasing order, ``WaitFlag`` edges supply cross-processor ordering).

This module builds those partial orders as small vectorized models and
checks every dependence edge against them.  An edge the model does not
cover is a **race**: some interleaving of the schedule lets the reader
observe the element before its writer stores it.  The check is
deliberately direct (no transitive closure): the doacross protocol covers
every true dependence edge *directly* — by a level barrier, by same-worker
program order, or by a wait on the written element — so direct coverage is
both sound and exact for uncorrupted schedules (tested), while corrupted
schedules (a swapped level pair, a stale ``iter`` entry) show up as races.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import inverse_permutation
from repro.graph.levels import LevelSchedule, compute_levels
from repro.ir.analysis import dependence_pairs, writer_map
from repro.ir.loop import IrregularLoop
from repro.machine.scheduler import IterationSchedule, make_schedule

__all__ = [
    "Race",
    "RaceReport",
    "LevelHappensBefore",
    "WorkerHappensBefore",
    "GroupHappensBefore",
    "waits_from_iter",
    "level_happens_before",
    "group_happens_before",
    "threaded_happens_before",
    "multiproc_happens_before",
    "simulated_happens_before",
    "check_dependence_coverage",
    "check_backend_schedule",
]


@dataclass(frozen=True)
class Race:
    """One true dependence the schedule fails to order.

    ``writer``/``reader`` are iteration indices; ``element`` is the ``y``
    index written by ``writer`` and read by ``reader``.
    """

    writer: int
    reader: int
    element: int

    def describe(self) -> str:
        return (
            f"iteration {self.reader} reads y[{self.element}] written by "
            f"iteration {self.writer} with no happens-before edge between "
            f"them"
        )


@dataclass(frozen=True)
class RaceReport:
    """Outcome of checking one schedule against one loop's dependences."""

    loop_name: str
    schedule_label: str
    checked_edges: int
    races: tuple[Race, ...]

    @property
    def passed(self) -> bool:
        return not self.races

    def summary(self) -> str:
        head = (
            f"race check [{self.schedule_label}] on {self.loop_name}: "
            f"{self.checked_edges} true-dependence edge(s)"
        )
        if self.passed:
            return f"{head} — all covered (no races)"
        lines = [f"{head} — {len(self.races)} RACE(S)"]
        lines += [f"  {race.describe()}" for race in self.races]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "loop": self.loop_name,
            "schedule": self.schedule_label,
            "checked_edges": self.checked_edges,
            "passed": self.passed,
            "races": [
                {
                    "writer": r.writer,
                    "reader": r.reader,
                    "element": r.element,
                }
                for r in self.races
            ],
        }


# ----------------------------------------------------------------------
# Happens-before models
# ----------------------------------------------------------------------
class LevelHappensBefore:
    """Barrier-ordered wavefronts: ``w`` happens before ``r`` iff ``w``'s
    level is strictly lower (the vectorized backend's execution model)."""

    def __init__(self, levels: np.ndarray, label: str = "level-schedule"):
        self.levels = np.asarray(levels, dtype=np.int64)
        self.label = label

    def covers(
        self,
        writers: np.ndarray,
        readers: np.ndarray,
        elements: np.ndarray,
    ) -> np.ndarray:
        return self.levels[writers] < self.levels[readers]


class WorkerHappensBefore:
    """Per-worker program order plus explicit element waits.

    ``w`` happens before ``r`` iff they run on the same worker with ``w``
    at an earlier position, or ``r`` performs a blocking wait on the
    element ``w`` writes (the write subscript is injective, so the element
    identifies its writer's ``ready`` flag uniquely).
    """

    def __init__(
        self,
        worker: np.ndarray,
        pos: np.ndarray,
        wait_keys: np.ndarray,
        y_size: int,
        label: str,
    ):
        self.worker = np.asarray(worker, dtype=np.int64)
        self.pos = np.asarray(pos, dtype=np.int64)
        #: Sorted encoded ``reader * y_size + element`` wait pairs.
        self.wait_keys = np.asarray(wait_keys, dtype=np.int64)
        self.y_size = y_size
        self.label = label

    def covers(
        self,
        writers: np.ndarray,
        readers: np.ndarray,
        elements: np.ndarray,
    ) -> np.ndarray:
        program_order = (self.worker[writers] == self.worker[readers]) & (
            self.pos[writers] < self.pos[readers]
        )
        keys = readers * np.int64(self.y_size) + elements
        waited = np.isin(keys, self.wait_keys, assume_unique=False)
        return program_order | waited


class GroupHappensBefore:
    """Group-synchronous order: the distance-elided execution mode.

    When the dependence-test battery proves every cross-iteration true
    dependence has distance >= ``group``, the backends run natural-order
    groups of ``group`` consecutive iterations with one barrier between
    groups and no per-element flags.  ``w`` happens before ``r`` iff
    ``w``'s group is strictly earlier — which covers every true
    dependence exactly when the bound holds (``r - w >= group`` puts the
    writer below the reader's group floor).
    """

    def __init__(self, group: int, label: str = "group-sync"):
        if group < 1:
            raise ValueError(f"group size must be >= 1, got {group}")
        self.group = int(group)
        self.label = label

    def covers(
        self,
        writers: np.ndarray,
        readers: np.ndarray,
        elements: np.ndarray,
    ) -> np.ndarray:
        return writers // self.group < readers // self.group


def group_happens_before(
    group: int, backend: str = "threaded"
) -> GroupHappensBefore:
    """The order a distance-elided (``_group_sync``) run induces."""
    return GroupHappensBefore(group, label=f"{backend}/group({group})")


def waits_from_iter(
    loop: IrregularLoop, iter_array: np.ndarray | None = None
) -> np.ndarray:
    """Encoded ``(reader, element)`` pairs the executor blocks on.

    The Figure-5 executor waits on ``ready[element]`` exactly when
    ``iter[element] < i`` — so the wait set is a pure function of the
    ``iter`` array the inspector produced.  Pass a corrupted ``iter``
    (stale entry, swapped writer) to model a broken inspector; the default
    is the correct :func:`~repro.ir.analysis.writer_map` contents.
    """
    if iter_array is None:
        iter_array = writer_map(loop)
    else:
        iter_array = np.asarray(iter_array, dtype=np.int64)
    readers = loop.reads.iteration_of_term()
    idx = loop.reads.index
    writer = iter_array[idx]
    # MAXINT / -1 sentinels both fail `0 <= writer < reader`.
    blocking = (writer >= 0) & (writer < readers)
    keys = readers[blocking] * np.int64(loop.y_size) + idx[blocking]
    return np.unique(keys)


# ----------------------------------------------------------------------
# Builders, one per backend family
# ----------------------------------------------------------------------
def level_happens_before(
    source: IrregularLoop | LevelSchedule,
) -> LevelHappensBefore:
    """The vectorized backend's order, read off the wavefront slices."""
    schedule = (
        source
        if isinstance(source, LevelSchedule)
        else compute_levels(source)
    )
    # Rebuild level-of-iteration from the slices the backend executes —
    # checking the object the executor consumes, not the one the
    # inspector intended.
    levels = np.full(schedule.n, -1, dtype=np.int64)
    for k, (lo, hi) in enumerate(schedule.slices()):
        levels[schedule.order[lo:hi]] = k
    return LevelHappensBefore(
        levels, label=f"vectorized/levels({schedule.n_levels})"
    )


def threaded_happens_before(
    loop: IrregularLoop,
    threads: int,
    iter_array: np.ndarray | None = None,
    order: np.ndarray | None = None,
) -> WorkerHappensBefore:
    """The threaded backend's order: cyclic position→thread assignment
    (each thread walks its positions in increasing order) plus the
    ``ready``-event waits derived from ``iter_array``."""
    n = loop.n
    t = min(threads, max(n, 1))
    if order is None:
        pos = np.arange(n, dtype=np.int64)
    else:
        pos = inverse_permutation(np.asarray(order, dtype=np.int64))
    worker = pos % t
    return WorkerHappensBefore(
        worker=worker,
        pos=pos,
        wait_keys=waits_from_iter(loop, iter_array),
        y_size=loop.y_size,
        label=f"threaded({t} threads)",
    )


def multiproc_happens_before(
    loop: IrregularLoop,
    workers: int,
    chunk: int | None = None,
    iter_array: np.ndarray | None = None,
    order: np.ndarray | None = None,
) -> WorkerHappensBefore:
    """The multiproc backend's order: contiguous position chunks of size
    ``chunk`` dealt round-robin to workers (each worker walks its chunks,
    and the positions inside them, in increasing order), plus the
    ``ready``-flag ladder waits.

    The backend skips the flag for a true dependence whose writer sits
    *earlier in the reader's own chunk* (the worker itself wrote ``ynew``
    moments before), so those edges are excluded from the wait set here —
    they are covered by same-worker program order instead, and a corrupted
    ``iter_array`` disturbs exactly the waits the real executor would
    drop.
    """
    n = loop.n
    if chunk is None:
        chunk = max(1, -(-n // (4 * workers)))
    if order is None:
        pos = np.arange(n, dtype=np.int64)
    else:
        pos = inverse_permutation(np.asarray(order, dtype=np.int64))
    worker = (pos // chunk) % workers

    if iter_array is None:
        iter_array = writer_map(loop)
    else:
        iter_array = np.asarray(iter_array, dtype=np.int64)
    readers = loop.reads.iteration_of_term()
    idx = loop.reads.index
    writer_it = iter_array[idx]
    blocking = (writer_it >= 0) & (writer_it < readers)
    rpos = pos[readers]
    wpos = np.where(blocking, pos[np.clip(writer_it, 0, n - 1)], -1)
    same_chunk_earlier = (wpos // chunk == rpos // chunk) & (wpos < rpos)
    blocked = blocking & ~(blocking & same_chunk_earlier)
    keys = np.unique(
        readers[blocked] * np.int64(loop.y_size) + idx[blocked]
    )
    return WorkerHappensBefore(
        worker=worker,
        pos=pos,
        wait_keys=keys,
        y_size=loop.y_size,
        label=f"multiproc({workers} workers, chunk={chunk})",
    )


def simulated_happens_before(
    loop: IrregularLoop,
    processors: int,
    schedule: IterationSchedule | str | None = None,
    chunk: int = 1,
    iter_array: np.ndarray | None = None,
    order: np.ndarray | None = None,
) -> WorkerHappensBefore:
    """The simulated backend's order: the iteration schedule's
    position→processor map plus ``WaitFlag`` edges from ``iter_array``.

    Static schedules expose their chunk lists directly.  Dynamic
    schedules hand chunks out in claim order to whichever processor
    reaches the dispatch counter first; the processor identity is
    timing-dependent, so each claimed chunk is modeled as its own worker
    — a conservative order (chunk-internal sequencing is kept, cross-chunk
    ordering must come from waits), which the protocol satisfies because
    the executor waits on *every* true dependence regardless of placement.
    """
    n = loop.n
    if isinstance(schedule, IterationSchedule):
        sched = schedule
        sched.reset()
    else:
        sched = make_schedule(
            "cyclic" if schedule is None else schedule,
            n,
            processors,
            chunk=chunk,
        )
    if order is None:
        pos = np.arange(n, dtype=np.int64)
    else:
        pos = inverse_permutation(np.asarray(order, dtype=np.int64))

    worker_of_position = np.full(n, -1, dtype=np.int64)
    if sched.is_dynamic:
        wid = 0
        while True:
            claim = sched.claim()
            if claim is None:
                break
            worker_of_position[claim[0] : claim[1]] = wid
            wid += 1
        sched.reset()
        label = f"simulated/{type(sched).__name__}(dynamic)"
    else:
        for proc in range(sched.processors):
            for lo, hi in sched.chunks_for(proc):
                worker_of_position[lo:hi] = proc
        label = f"simulated/{type(sched).__name__}({processors}p)"
    return WorkerHappensBefore(
        worker=worker_of_position[pos],
        pos=pos,
        wait_keys=waits_from_iter(loop, iter_array),
        y_size=loop.y_size,
        label=label,
    )


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
def check_dependence_coverage(
    loop: IrregularLoop,
    hb: LevelHappensBefore | WorkerHappensBefore,
    max_races: int = 20,
) -> RaceReport:
    """Verify every true-dependence edge is covered by ``hb``.

    Returns a :class:`RaceReport`; at most ``max_races`` uncovered edges
    are materialized as :class:`Race` records (the count in the summary is
    always exact).
    """
    pairs = dependence_pairs(loop)
    if len(pairs) == 0:
        return RaceReport(
            loop_name=loop.name,
            schedule_label=hb.label,
            checked_edges=0,
            races=(),
        )
    writers, readers = pairs[:, 0], pairs[:, 1]
    elements = loop.write[writers]
    covered = hb.covers(writers, readers, elements)
    bad = np.nonzero(~covered)[0]
    races = tuple(
        Race(
            writer=int(writers[k]),
            reader=int(readers[k]),
            element=int(elements[k]),
        )
        for k in bad[:max_races]
    )
    report = RaceReport(
        loop_name=loop.name,
        schedule_label=hb.label,
        checked_edges=len(pairs),
        races=races,
    )
    if len(bad) > max_races:
        # Preserve the true count in the label rather than dropping it.
        report = RaceReport(
            loop_name=report.loop_name,
            schedule_label=f"{report.schedule_label} (+{len(bad) - max_races} more races)",
            checked_edges=report.checked_edges,
            races=report.races,
        )
    return report


def check_backend_schedule(
    loop: IrregularLoop,
    backend: str = "vectorized",
    *,
    processors: int = 16,
    schedule: IterationSchedule | str | None = None,
    chunk: int = 1,
    order: np.ndarray | None = None,
    group: int | None = None,
) -> RaceReport:
    """Race-check the schedule a named backend would execute.

    ``backend`` is one of ``"vectorized"`` (wavefront levels),
    ``"threaded"`` (cyclic threads + events), ``"multiproc"`` (round-robin
    position chunks + ladder waits), or ``"simulated"`` (iteration
    schedule + flags).  This is the entry point behind
    ``validate="static"``.

    ``group`` models the distance-elided (group-synchronous) mode the
    DistancePass plans: natural-order groups of ``group`` iterations with
    one barrier between them and no per-element flags.  It replaces the
    backend's flag-based order — the check then verifies the battery's
    distance bound really covers every materialized dependence edge.
    """
    if group is not None:
        if order is not None:
            raise ValueError(
                "group-synchronous execution only applies in natural "
                "order; drop order= or group="
            )
        if backend == "simulated":
            raise ValueError(
                "the simulated backend has no group-synchronous mode"
            )
        return check_dependence_coverage(
            loop, group_happens_before(group, backend)
        )
    if backend == "vectorized":
        hb: LevelHappensBefore | WorkerHappensBefore = level_happens_before(
            loop
        )
    elif backend == "threaded":
        hb = threaded_happens_before(loop, processors, order=order)
    elif backend == "multiproc":
        hb = multiproc_happens_before(
            loop, processors, chunk=chunk, order=order
        )
    elif backend == "simulated":
        hb = simulated_happens_before(
            loop, processors, schedule=schedule, chunk=chunk, order=order
        )
    else:
        raise ValueError(
            f"unknown backend {backend!r} for race checking; expected "
            f"vectorized/threaded/multiproc/simulated"
        )
    return check_dependence_coverage(loop, hb)
