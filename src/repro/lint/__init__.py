"""Static analysis over the IR, transform plans, and backend schedules.

Two halves:

- **lint rules** (:mod:`repro.lint.rules`) — pattern checks grounded in
  the paper (doall-able loops, affine writes, dead waits, serializing
  chunk choices, …), producing structured
  :class:`~repro.lint.diagnostics.Diagnostic` findings;
- **happens-before race checker** (:mod:`repro.lint.hb`) — builds the
  partial order a backend's schedule implies and verifies every true
  dependence edge from :func:`repro.ir.analysis.dependence_pairs` is
  covered.

Entry points: :func:`run_lints` (the driver), ``python -m repro lint``
(the CLI), and ``validate="static"`` on :func:`repro.parallelize` /
:func:`repro.make_runner`.
"""

from repro.lint.context import LintContext
from repro.lint.diagnostics import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    format_diagnostics,
)
from repro.lint.driver import RACE_RULE_ID, race_diagnostics, run_lints
from repro.lint.hb import (
    Race,
    RaceReport,
    check_backend_schedule,
    check_dependence_coverage,
    level_happens_before,
    simulated_happens_before,
    threaded_happens_before,
    waits_from_iter,
)
from repro.lint.rules import LintRule, all_rules, get_rule, register, rule_ids

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "SEVERITIES",
    "Diagnostic",
    "format_diagnostics",
    "LintContext",
    "LintRule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
    "RACE_RULE_ID",
    "race_diagnostics",
    "run_lints",
    "Race",
    "RaceReport",
    "waits_from_iter",
    "level_happens_before",
    "threaded_happens_before",
    "simulated_happens_before",
    "check_dependence_coverage",
    "check_backend_schedule",
]
