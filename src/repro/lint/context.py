"""The shared input every lint rule sees.

A :class:`LintContext` bundles the three layers the ISSUE of this
subsystem names: the IR (the loop itself and its value-level dependence
analysis), the transform plan (what the "compiler" decided), and the
backend schedule parameters (kind, chunk, processors, strip block).  The
expensive analyses — read classification, the dependence summary, the
wavefront decomposition — are computed once, lazily, and shared by every
rule.
"""

from __future__ import annotations

import numpy as np

from repro.graph.levels import LevelSchedule, compute_levels
from repro.ir.analysis import (
    DependenceSummary,
    classify_reads,
    summarize_dependences,
)
from repro.ir.loop import IrregularLoop
from repro.ir.transform import TransformPlan, plan_transform

__all__ = ["LintContext"]


class LintContext:
    """Everything a rule may inspect, computed lazily and cached.

    Parameters
    ----------
    loop:
        The loop under analysis.
    plan:
        The transform plan; defaults to what
        :func:`~repro.ir.transform.plan_transform` picks for the loop's
        static structure.
    schedule_kind:
        Executor schedule kind (``block``/``cyclic``/``dynamic``/
        ``guided``) when a backend schedule is being linted; ``None``
        disables schedule-shape rules.
    chunk:
        Chunk size of the cyclic/dynamic schedule (guided: minimum chunk).
    processors:
        Processor/thread count the schedule distributes over.
    strip_block:
        Strip-mine block size when the §2.3 strip-mined variant is being
        linted; ``None`` otherwise.
    """

    def __init__(
        self,
        loop: IrregularLoop,
        plan: TransformPlan | None = None,
        schedule_kind: str | None = None,
        chunk: int = 1,
        processors: int = 16,
        strip_block: int | None = None,
    ):
        self.loop = loop
        self.plan = plan if plan is not None else plan_transform(loop)
        self.schedule_kind = schedule_kind
        self.chunk = chunk
        self.processors = processors
        self.strip_block = strip_block
        self._classified: tuple[np.ndarray, np.ndarray, np.ndarray] | None = (
            None
        )
        self._summary: DependenceSummary | None = None
        self._levels: LevelSchedule | None = None
        self._verdict = None
        self._verdict_computed = False

    # ------------------------------------------------------------------
    @property
    def verdict(self):
        """The symbolic :class:`~repro.analysis.verdicts.DependenceVerdict`
        for the loop (computed once, shared by every proof-backed rule).
        Always available — a loop without statically-known structure gets
        a ``runtime-only`` verdict."""
        if not self._verdict_computed:
            from repro.analysis import analyze_loop

            self._verdict = analyze_loop(self.loop)
            self._verdict_computed = True
        return self._verdict

    @property
    def static_min_distance(self) -> int | None:
        """The battery's proven lower bound on every cross-iteration true
        dependence distance (``verdict.min_distance``) — ``None`` when the
        battery proves nothing.  Distinct from ``summary.min_distance``,
        which is the distance *observed on this instance*."""
        return self.verdict.min_distance

    @property
    def classified(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(readers, writers, categories)`` per flat read term."""
        if self._classified is None:
            self._classified = classify_reads(self.loop)
        return self._classified

    @property
    def summary(self) -> DependenceSummary:
        if self._summary is None:
            self._summary = summarize_dependences(self.loop)
        return self._summary

    @property
    def level_schedule(self) -> LevelSchedule:
        if self._levels is None:
            self._levels = compute_levels(self.loop)
        return self._levels
