"""repro — a reproduction of *The Preprocessed Doacross Loop*.

Saltz & Mirchandaney's inspector/executor scheme for parallelizing loops
whose inter-iteration dependencies are only known at run time, rebuilt as a
Python library on a deterministic discrete-event model of a shared-memory
multiprocessor (the substitute for the paper's Encore Multimax/320 — see
DESIGN.md §3).

Quick start::

    import repro

    loop = repro.make_test_loop(n=1000, m=5, l=8)     # paper Figure 4
    runner = repro.PreprocessedDoacross(processors=16)
    result = runner.run(loop)
    print(result.summary())                            # efficiency, phases
    assert (result.y == loop.run_sequential()).all()   # exact semantics

Subpackages
-----------
- :mod:`repro.core` — the paper's contribution: preprocessed doacross,
  strip-mined and linear-subscript variants, doconsider reordering, classic
  doacross / doall baselines.
- :mod:`repro.machine` — the simulated multiprocessor.
- :mod:`repro.ir` — the loop IR and the transformation "compiler".
- :mod:`repro.graph` — dependence DAG, wavefronts, critical paths.
- :mod:`repro.sparse` — CSR matrices, stencil and SPE operators, ILU(0),
  triangular solves (the Table-1 substrate).
- :mod:`repro.backends` — simulated, real-thread, vectorized-wavefront,
  and shared-memory multiprocessing executors behind one :class:`Runner`
  protocol, plus the inspector cache.
- :mod:`repro.workloads` — Figure-4 and synthetic loop generators.
- :mod:`repro.bench` — the experiment harness regenerating Figure 6 and
  Table 1, plus ablations.
- :mod:`repro.obs` — cross-backend telemetry: phase/level/compute/wait
  spans, the unified metrics registry, Chrome-trace / JSONL / ASCII-Gantt
  exporters, and the ``observe=True`` instrumentation hook.
- :mod:`repro.passes` — the schedule-pass framework: Figure-3
  preprocessing stages as contract-checked composable passes producing
  one :class:`Plan` for every backend, the consolidated
  :class:`PlanSpec` run configuration, and the telemetry-driven
  auto-tuner behind ``parallelize(backend="auto")``.
"""

from repro._version import __version__
from repro.backends import (
    BACKENDS,
    InspectorCache,
    MultiprocRunner,
    Runner,
    SimulatedRunner,
    ThreadedRunner,
    ValidatingRunner,
    VectorizedRunner,
    WaitLadder,
    make_runner,
)
from repro.core.amortized import AmortizedDoacross
from repro.core.classic import ClassicDoacross
from repro.core.doacross import PreprocessedDoacross, parallelize
from repro.core.doall_runner import DoallRunner
from repro.core.doconsider import Doconsider, level_order
from repro.core.linear import LinearDoacross
from repro.core.results import RunResult
from repro.core.sequential import run_reference, sequential_time
from repro.core.serialize import result_to_dict, result_to_json, results_to_csv
from repro.core.stripmine import StripminedDoacross
from repro.core.verify import VerificationReport, verify_loop
from repro.core.workspace import MAXINT, DoacrossWorkspace
from repro.errors import (
    InvalidLoopError,
    OutputDependenceError,
    RaceConditionError,
    ReproError,
    ScheduleError,
    SimulationDeadlockError,
    TelemetryError,
    WaitTimeout,
)
from repro.ir.accesses import ReadTable
from repro.ir.frontend import loop_from_source
from repro.ir.loop import INIT_EXTERNAL, INIT_OLD_VALUE, IrregularLoop
from repro.ir.subscript import AffineSubscript, IndirectSubscript
from repro.ir.transform import TransformPlan, plan_transform
from repro.lint import (
    Diagnostic,
    RaceReport,
    check_backend_schedule,
    format_diagnostics,
    run_lints,
)
from repro.machine.costs import CostModel, WorkProfile
from repro.machine.engine import Machine
from repro.obs import (
    InstrumentedRunner,
    MetricsRegistry,
    Telemetry,
    chrome_trace,
    validate_telemetry,
)
from repro.passes import (
    Plan,
    PassPipeline,
    PlanSpec,
    SchedulePass,
    UnsupportedPlanOption,
    default_pipeline,
    execute_plan,
    plan_loop,
)
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop

__all__ = [
    "__version__",
    # Core runners
    "PreprocessedDoacross",
    "StripminedDoacross",
    "LinearDoacross",
    "AmortizedDoacross",
    "Doconsider",
    "level_order",
    "ClassicDoacross",
    "DoallRunner",
    "parallelize",
    # Backends
    "Runner",
    "SimulatedRunner",
    "ThreadedRunner",
    "VectorizedRunner",
    "MultiprocRunner",
    "WaitLadder",
    "InspectorCache",
    "ValidatingRunner",
    "make_runner",
    "BACKENDS",
    "run_reference",
    "sequential_time",
    "RunResult",
    "DoacrossWorkspace",
    "MAXINT",
    "verify_loop",
    "VerificationReport",
    "result_to_dict",
    "result_to_json",
    "results_to_csv",
    # IR
    "IrregularLoop",
    "ReadTable",
    "AffineSubscript",
    "IndirectSubscript",
    "INIT_OLD_VALUE",
    "INIT_EXTERNAL",
    "TransformPlan",
    "plan_transform",
    "loop_from_source",
    # Machine
    "Machine",
    "CostModel",
    "WorkProfile",
    # Workloads
    "make_test_loop",
    "random_irregular_loop",
    "chain_loop",
    # Schedule passes (ROADMAP item 5)
    "PlanSpec",
    "Plan",
    "SchedulePass",
    "PassPipeline",
    "UnsupportedPlanOption",
    "default_pipeline",
    "plan_loop",
    "execute_plan",
    # Observability
    "InstrumentedRunner",
    "Telemetry",
    "MetricsRegistry",
    "validate_telemetry",
    "chrome_trace",
    # Static analysis
    "run_lints",
    "Diagnostic",
    "format_diagnostics",
    "RaceReport",
    "check_backend_schedule",
    # Errors
    "ReproError",
    "InvalidLoopError",
    "OutputDependenceError",
    "RaceConditionError",
    "ScheduleError",
    "SimulationDeadlockError",
    "TelemetryError",
    "WaitTimeout",
]
