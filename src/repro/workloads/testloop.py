"""The paper's Figure-4 test loop.

Original (1-based Fortran)::

    do i = 1, N
        do j = 1, M
            y(a(i)) = y(a(i)) + val(j) * y(b(i) + nbrs(j))
        end do
    end do

with the Figure-6 initialization ``a(i) = 2i``, ``b(i) = 2i``,
``nbrs(j) = 2j − L``.  The read offset of term ``j`` in iteration ``i`` is
``2i + 2j − L``; since writes land on even indices ``2w``, the element is
written by iteration ``w = i + j − L/2`` when ``L`` is even and by no
iteration when ``L`` is odd.  Hence the paper's observations:

- odd ``L``: no cross-iteration dependencies at all — the efficiency
  plateau measures pure inspector/executor overhead;
- even ``L``: term ``j`` carries a true dependence of distance ``L/2 − j``
  (for ``j < L/2``), an intra-iteration reference at ``j = L/2``, and an
  antidependence for ``j > L/2``.  Larger ``L`` pushes the binding (last
  true-dependent) term earlier in the term sequence and stretches the
  distances, so pipelined efficiency rises monotonically with ``L``.

0-based mapping (DESIGN.md §8): iteration ``i₀ = i − 1 ∈ 0..N−1``; all
``y`` indices are shifted by ``L + 2`` so the smallest read offset
(``4 − L``, possibly negative in 1-based Fortran with suitable bounds)
becomes a valid 0-based index.  The uniform shift leaves the dependence
structure untouched.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLoopError
from repro.ir.accesses import ReadSlot, ReadTable
from repro.ir.loop import INIT_OLD_VALUE, IrregularLoop
from repro.ir.subscript import AffineSubscript

__all__ = ["make_test_loop", "dependence_distances"]


def make_test_loop(
    n: int,
    m: int,
    l: int,
    val: np.ndarray | None = None,
    y0_value: float = 1.0,
) -> IrregularLoop:
    """Build the Figure-4 loop with the Figure-6 parameterization.

    Parameters
    ----------
    n, m, l:
        The paper's ``N`` (outer iterations), ``M`` (terms per iteration),
        and ``L`` (the ``nbrs`` offset parameter, 1..14 in Figure 6).
    val:
        The ``val(j)`` coefficients (length ``m``).  Defaults to
        ``0.5 / m`` for every term, which keeps the recurrence bounded over
        arbitrarily long dependence chains.
    y0_value:
        Initial value of every ``y`` element.
    """
    if n < 1:
        raise InvalidLoopError(f"test loop needs n >= 1, got {n}")
    if m < 1:
        raise InvalidLoopError(f"test loop needs m >= 1, got {m}")
    if l < 1:
        raise InvalidLoopError(f"test loop needs l >= 1, got {l}")
    if val is None:
        val = np.full(m, 0.5 / m, dtype=np.float64)
    else:
        val = np.asarray(val, dtype=np.float64)
        if val.shape != (m,):
            raise InvalidLoopError(
                f"val must have shape ({m},), got {val.shape}"
            )

    shift = l + 2
    # a(i) = 2i, 1-based  →  i₀ ↦ 2(i₀ + 1) + shift.
    write_subscript = AffineSubscript(2, 2 + shift)

    i1 = np.arange(1, n + 1, dtype=np.int64)  # the paper's 1-based i
    j1 = np.arange(1, m + 1, dtype=np.int64)  # the paper's 1-based j
    # offset(i, j) = b(i) + nbrs(j) = 2i + 2j − L, then shifted.
    index_matrix = (2 * i1)[:, None] + (2 * j1 - l)[None, :] + shift
    coeff_matrix = np.broadcast_to(val, (n, m)).copy()
    reads = ReadTable.from_uniform(index_matrix, coeff_matrix)

    y_size = int(max(write_subscript(n - 1), index_matrix.max())) + 1
    y0 = np.full(y_size, y0_value, dtype=np.float64)
    # Term j₀ reads offset(i₀) = 2·i₀ + (4 + 2j₀ − L + shift): affine in the
    # loop index, so the whole read side is declared symbolically.
    slots = [
        ReadSlot(AffineSubscript(2, 4 + 2 * j0 - l + shift))
        for j0 in range(m)
    ]
    return IrregularLoop(
        n=n,
        y_size=y_size,
        write_subscript=write_subscript,
        reads=reads,
        init_kind=INIT_OLD_VALUE,
        y0=y0,
        name=f"figure4(N={n},M={m},L={l})",
        read_slots=slots,
    )


def dependence_distances(m: int, l: int) -> list[int]:
    """True-dependence distances carried by the Figure-4 loop's terms.

    For odd ``L`` the list is empty.  For even ``L``, term ``j`` (1-based)
    carries distance ``L/2 − j`` when that is positive; ``j = L/2`` is the
    intra-iteration reference and larger ``j`` are antidependencies.
    """
    if l % 2 == 1:
        return []
    half = l // 2
    return [half - j for j in range(1, m + 1) if half - j >= 1]
