"""Synthetic irregular loops for property tests and ablations.

- :func:`random_irregular_loop` — the adversarial generator: a random
  injective write subscript (a permutation slice, so writes land anywhere)
  and random read indices, producing an arbitrary mix of true, intra, anti,
  and never-written references.  Hypothesis drives it through seeds to check
  that every parallel strategy matches the sequential oracle.
- :func:`chain_loop` — a loop whose every true dependence has one uniform
  distance ``d`` (and no antidependencies), the eligibility envelope of the
  classic doacross baseline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLoopError
from repro.ir.accesses import ReadTable
from repro.ir.loop import INIT_EXTERNAL, INIT_OLD_VALUE, IrregularLoop
from repro.ir.subscript import AffineSubscript, IndirectSubscript

__all__ = ["random_irregular_loop", "chain_loop"]


def random_irregular_loop(
    n: int,
    max_terms: int = 4,
    y_extra: int = 8,
    seed: int = 0,
    external_init: bool = False,
    coeff_scale: float = 0.4,
) -> IrregularLoop:
    """A random loop with runtime-determined dependencies.

    Parameters
    ----------
    n:
        Iteration count.
    max_terms:
        Per-iteration term counts are drawn uniformly from ``0..max_terms``.
    y_extra:
        ``y`` has ``n + y_extra`` elements, so some reads hit never-written
        elements (the ``iter == MAXINT`` path).
    seed:
        RNG seed (all randomness is explicit, per the hpc-parallel guides).
    external_init:
        Use an external per-iteration initial value (Figure-7 style) rather
        than the old ``y[w(i)]`` (Figure-4 style).
    coeff_scale:
        Coefficients are uniform in ``[-coeff_scale, coeff_scale]``; keep
        below ~0.5/max_terms if you need bounded values on long chains.
    """
    if n < 0:
        raise InvalidLoopError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    y_size = n + y_extra
    write = rng.permutation(y_size)[:n].astype(np.int64)

    term_counts = rng.integers(0, max_terms + 1, size=n)
    total = int(term_counts.sum())
    ptr = np.zeros(n + 1, dtype=np.int64)
    ptr[1:] = np.cumsum(term_counts)
    index = rng.integers(0, y_size, size=total).astype(np.int64)
    coeff = rng.uniform(-coeff_scale, coeff_scale, size=total)
    reads = ReadTable(ptr, index, coeff)

    kwargs = {}
    if external_init:
        kwargs["init_kind"] = INIT_EXTERNAL
        kwargs["init_values"] = rng.normal(size=n)
    else:
        kwargs["init_kind"] = INIT_OLD_VALUE
    return IrregularLoop(
        n=n,
        y_size=y_size,
        write_subscript=IndirectSubscript(write),
        reads=reads,
        y0=rng.normal(size=y_size),
        name=f"random(n={n},seed={seed})",
        **kwargs,
    )


def chain_loop(
    n: int,
    distance: int,
    coeff: float = 0.5,
    y0_value: float = 1.0,
) -> IrregularLoop:
    """A loop with exactly one uniform-distance recurrence:
    ``y[i] = y[i] + coeff * y[i − d]`` for ``i ≥ d``.

    Writes are the identity subscript (affine), iterations ``i < d`` have no
    read terms, and every true dependence has distance ``d`` — the loop the
    classic doacross was built for.
    """
    if n < 1:
        raise InvalidLoopError(f"n must be >= 1, got {n}")
    if distance < 1:
        raise InvalidLoopError(f"distance must be >= 1, got {distance}")
    per_iteration = [
        [(i - distance, coeff)] if i >= distance else [] for i in range(n)
    ]
    reads = ReadTable.from_lists(per_iteration)
    return IrregularLoop(
        n=n,
        y_size=n,
        write_subscript=AffineSubscript(1, 0),
        reads=reads,
        init_kind=INIT_OLD_VALUE,
        y0=np.full(n, y0_value, dtype=np.float64),
        name=f"chain(n={n},d={distance})",
    )
