"""Synthetic irregular loops for property tests and ablations.

- :func:`random_irregular_loop` — the adversarial generator: a random
  injective write subscript (a permutation slice, so writes land anywhere)
  and random read indices, producing an arbitrary mix of true, intra, anti,
  and never-written references.  Hypothesis drives it through seeds to check
  that every parallel strategy matches the sequential oracle.
- :func:`chain_loop` — a loop whose every true dependence has one uniform
  distance ``d`` (and no antidependencies), the eligibility envelope of the
  classic doacross baseline.
- :func:`affine_loop` — a fully symbolic loop built from closed-form write
  and read subscripts (affine pairs or :class:`~repro.ir.subscript.SymExpr`
  expressions), auto-shifted into a valid ``y`` range.  The generator for
  the symbolic-analysis property tests and the ``workloads/`` suite.
- :func:`conflict_frontier_loop` — a chunk-granular conflict-density dial
  for the speculative backend: writes are the identity, most reads hit a
  never-written pad, and a chosen fraction of chunk boundaries carry one
  distance-1 true dependence into the previous chunk.  ``fraction=0`` is
  a DOALL; ``fraction=1`` threads every chunk into a dense chain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLoopError
from repro.ir.accesses import ReadSlot, ReadTable, read_table_from_slots
from repro.ir.loop import INIT_EXTERNAL, INIT_OLD_VALUE, IrregularLoop
from repro.ir.subscript import (
    AffineSubscript,
    ExprSubscript,
    IndirectSubscript,
    Subscript,
    SymExpr,
)

__all__ = [
    "random_irregular_loop",
    "chain_loop",
    "affine_loop",
    "conflict_frontier_loop",
]


def random_irregular_loop(
    n: int,
    max_terms: int = 4,
    y_extra: int = 8,
    seed: int = 0,
    external_init: bool = False,
    coeff_scale: float = 0.4,
) -> IrregularLoop:
    """A random loop with runtime-determined dependencies.

    Parameters
    ----------
    n:
        Iteration count.
    max_terms:
        Per-iteration term counts are drawn uniformly from ``0..max_terms``.
    y_extra:
        ``y`` has ``n + y_extra`` elements, so some reads hit never-written
        elements (the ``iter == MAXINT`` path).
    seed:
        RNG seed (all randomness is explicit, per the hpc-parallel guides).
    external_init:
        Use an external per-iteration initial value (Figure-7 style) rather
        than the old ``y[w(i)]`` (Figure-4 style).
    coeff_scale:
        Coefficients are uniform in ``[-coeff_scale, coeff_scale]``; keep
        below ~0.5/max_terms if you need bounded values on long chains.
    """
    if n < 0:
        raise InvalidLoopError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    y_size = n + y_extra
    write = rng.permutation(y_size)[:n].astype(np.int64)

    term_counts = rng.integers(0, max_terms + 1, size=n)
    total = int(term_counts.sum())
    ptr = np.zeros(n + 1, dtype=np.int64)
    ptr[1:] = np.cumsum(term_counts)
    index = rng.integers(0, y_size, size=total).astype(np.int64)
    coeff = rng.uniform(-coeff_scale, coeff_scale, size=total)
    reads = ReadTable(ptr, index, coeff)

    kwargs = {}
    if external_init:
        kwargs["init_kind"] = INIT_EXTERNAL
        kwargs["init_values"] = rng.normal(size=n)
    else:
        kwargs["init_kind"] = INIT_OLD_VALUE
    return IrregularLoop(
        n=n,
        y_size=y_size,
        write_subscript=IndirectSubscript(write),
        reads=reads,
        y0=rng.normal(size=y_size),
        name=f"random(n={n},seed={seed})",
        **kwargs,
    )


def chain_loop(
    n: int,
    distance: int,
    coeff: float = 0.5,
    y0_value: float = 1.0,
) -> IrregularLoop:
    """A loop with exactly one uniform-distance recurrence:
    ``y[i] = y[i] + coeff * y[i − d]`` for ``i ≥ d``.

    Writes are the identity subscript (affine), iterations ``i < d`` have no
    read terms, and every true dependence has distance ``d`` — the loop the
    classic doacross was built for.
    """
    if n < 1:
        raise InvalidLoopError(f"n must be >= 1, got {n}")
    if distance < 1:
        raise InvalidLoopError(f"distance must be >= 1, got {distance}")
    per_iteration = [
        [(i - distance, coeff)] if i >= distance else [] for i in range(n)
    ]
    reads = ReadTable.from_lists(per_iteration)
    return IrregularLoop(
        n=n,
        y_size=n,
        write_subscript=AffineSubscript(1, 0),
        reads=reads,
        init_kind=INIT_OLD_VALUE,
        y0=np.full(n, y0_value, dtype=np.float64),
        name=f"chain(n={n},d={distance})",
        read_slots=[
            ReadSlot(AffineSubscript(1, -distance), start=distance)
        ],
    )


def conflict_frontier_loop(
    n: int,
    chunk: int,
    fraction: float,
    terms: int = 2,
    pad: int = 64,
    seed: int = 0,
) -> IrregularLoop:
    """A loop whose cross-chunk conflict density is an explicit dial.

    Writes are the identity subscript (``y[i] = ...``), every iteration
    reads ``terms`` elements from the never-written pad ``[n, n+pad)``,
    and ``fraction`` of the ``ceil(n/chunk) - 1`` chunk boundaries are
    made *conflicting*: the first iteration of such a chunk additionally
    reads ``y[i-1]`` — the element the previous chunk's last iteration
    writes.  Under chunk-speculative execution with chunk size ``chunk``
    that read is a RAW conflict forcing a rollback; every other read is
    conflict-free.

    ``fraction=0.0`` is a DOALL (speculation's best case: one round, no
    rollbacks); ``fraction=1.0`` threads *every* chunk into a dense
    chunk-granular dependence chain (its worst case: one commit per
    round until the retry budget drains).  The conflicting boundaries
    are spread evenly so partial fractions stress independent rollbacks
    rather than one contiguous chain.
    """
    if n < 1:
        raise InvalidLoopError(f"n must be >= 1, got {n}")
    if chunk < 1:
        raise InvalidLoopError(f"chunk must be >= 1, got {chunk}")
    if not 0.0 <= fraction <= 1.0:
        raise InvalidLoopError(
            f"fraction must be in [0, 1], got {fraction}"
        )
    rng = np.random.default_rng(seed)
    chunks = -(-n // chunk)
    boundaries = list(range(1, chunks))
    count = round(fraction * len(boundaries))
    conflicting: set[int] = set()
    if count:
        step = len(boundaries) / count
        conflicting = {boundaries[int(j * step)] for j in range(count)}
    per_iteration: list[list[tuple[int, float]]] = []
    for i in range(n):
        row: list[tuple[int, float]] = []
        c = i // chunk
        if c in conflicting and i == c * chunk:
            row.append((i - 1, 0.5))
        for _ in range(terms):
            row.append((int(rng.integers(n, n + pad)), 0.1))
        per_iteration.append(row)
    reads = ReadTable.from_lists(per_iteration)
    return IrregularLoop(
        n=n,
        y_size=n + pad,
        write_subscript=AffineSubscript(1, 0),
        reads=reads,
        init_kind=INIT_OLD_VALUE,
        y0=rng.normal(size=n + pad),
        name=f"frontier(n={n},chunk={chunk},p={fraction})",
    )


def _as_subscript(spec) -> Subscript:
    if isinstance(spec, Subscript):
        return spec
    if isinstance(spec, SymExpr):
        return ExprSubscript(spec)
    c, d = spec
    return AffineSubscript(int(c), int(d))


def _shift_subscript(sub: Subscript, offset: int) -> Subscript:
    if offset == 0:
        return sub
    if isinstance(sub, AffineSubscript):
        return sub.shifted(offset)
    if isinstance(sub, ExprSubscript):
        return ExprSubscript(sub.expr + offset)
    raise InvalidLoopError(
        f"cannot shift subscript of type {type(sub).__name__}"
    )


def affine_loop(
    n: int,
    write,
    slots,
    coeffs=None,
    y_extra: int = 0,
    seed: int = 0,
    name: str | None = None,
) -> IrregularLoop:
    """A fully closed-form loop for the symbolic dependence analysis.

    Parameters
    ----------
    n:
        Iteration count (>= 1).
    write:
        The write subscript: an ``(c, d)`` affine pair, a
        :class:`~repro.ir.subscript.SymExpr`, or a ``Subscript``.
    slots:
        Read slots: each an ``(c, d)`` pair, ``(c, d, start, stop)`` tuple,
        a ``SymExpr``, a ``Subscript``, or a full :class:`ReadSlot`.
    coeffs:
        One constant coefficient per slot (default ``0.5 / max(1, len)``).
    y_extra:
        Extra unwritten tail elements on ``y``.
    seed:
        Seed for the random initial ``y`` contents.

    All subscripts are uniformly shifted so the smallest referenced index
    becomes 0 (a shift moves every dependence endpoint identically, so the
    dependence structure — and the symbolic verdict — is unchanged).
    """
    if n < 1:
        raise InvalidLoopError(f"n must be >= 1, got {n}")
    write_sub = _as_subscript(write)
    slot_objs: list[ReadSlot] = []
    for spec in slots:
        if isinstance(spec, ReadSlot):
            slot_objs.append(spec)
        elif isinstance(spec, tuple) and len(spec) == 4:
            c, d, start, stop = spec
            slot_objs.append(
                ReadSlot(AffineSubscript(int(c), int(d)), start, stop)
            )
        else:
            slot_objs.append(ReadSlot(_as_subscript(spec)))
    if coeffs is None:
        coeffs = [0.5 / max(1, len(slot_objs))] * len(slot_objs)

    # Uniform shift so every referenced index is >= 0.
    lo = int(write_sub.materialize(n).min()) if n else 0
    hi = int(write_sub.materialize(n).max()) if n else 0
    for slot in slot_objs:
        s, t = slot.active_range(n)
        if t > s:
            vals = slot.subscript.materialize(t)[s:t]
            lo = min(lo, int(vals.min()))
            hi = max(hi, int(vals.max()))
    shift = -lo if lo < 0 else 0
    write_sub = _shift_subscript(write_sub, shift)
    slot_objs = [
        ReadSlot(_shift_subscript(s.subscript, shift), s.start, s.stop)
        for s in slot_objs
    ]
    y_size = hi + shift + 1 + int(y_extra)

    reads = read_table_from_slots(slot_objs, coeffs, n)
    rng = np.random.default_rng(seed)
    return IrregularLoop(
        n=n,
        y_size=y_size,
        write_subscript=write_sub,
        reads=reads,
        init_kind=INIT_OLD_VALUE,
        y0=rng.normal(size=y_size),
        name=name or f"affine(n={n},slots={len(slot_objs)})",
        read_slots=slot_objs,
    )
