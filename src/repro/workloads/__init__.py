"""Workload generators.

- :mod:`repro.workloads.testloop` — the paper's Figure-4 test loop family
  (the Figure-6 experiment).
- :mod:`repro.workloads.synthetic` — random irregular loops for property
  tests and ablations, plus uniform-distance chain loops for the classic
  doacross baseline.
- :mod:`repro.workloads.mesh` — unstructured-mesh relaxation sweeps with
  natural/random/BFS/coloring vertex orderings.
"""

from repro.workloads.mesh import (
    MeshAdjacency,
    mesh_orderings,
    random_mesh,
    sweep_loop,
)
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import (
    dependence_distances,
    make_test_loop,
)

__all__ = [
    "make_test_loop",
    "dependence_distances",
    "random_irregular_loop",
    "chain_loop",
    "MeshAdjacency",
    "random_mesh",
    "sweep_loop",
    "mesh_orderings",
]
