"""Unstructured-mesh sweep workloads.

The inspector/executor literature's canonical irregular application: a
Gauss-Seidel-flavored relaxation sweep over a mesh whose adjacency — and
therefore every inter-iteration dependence — is built at run time::

    do v = 1, n_vertices
        x(order(v)) = x(order(v)) + ω/deg · Σ_{u ∈ nbrs(order(v))} x(u)
    end do

Neighbors already swept contribute updated values (true dependencies),
un-swept ones old values (antidependencies) — decided per element at run
time, exactly the paper's setting.

The vertex ``order`` is a first-class knob with three library orderings:

- ``natural`` / caller-supplied — whatever the mesh generator produced;
- ``bfs`` — breadth-first renumbering (locality-flavored);
- ``coloring`` — greedy-coloring order: same-color vertices are mutually
  independent, so the sweep's wavefronts are the color classes.  NOTE:
  unlike doconsider reordering, changing the sweep order changes the
  Gauss-Seidel iterate sequence (each order is its own valid computation;
  each is verified against its own sequential oracle).

Meshes here are random geometric graphs (planar-ish, bounded degree),
stored as symmetric CSR adjacency; deterministic per seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLoopError
from repro.graph.coloring import color_order, greedy_coloring
from repro.ir.accesses import ReadTable
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import IndirectSubscript

__all__ = ["MeshAdjacency", "random_mesh", "sweep_loop", "mesh_orderings"]


class MeshAdjacency:
    """Symmetric CSR adjacency of an undirected mesh."""

    def __init__(self, ptr: np.ndarray, adj: np.ndarray):
        self.ptr = np.ascontiguousarray(ptr, dtype=np.int64)
        self.adj = np.ascontiguousarray(adj, dtype=np.int64)
        if len(self.ptr) < 1 or self.ptr[0] != 0:
            raise InvalidLoopError("adjacency ptr must start at 0")
        if self.ptr[-1] != len(self.adj):
            raise InvalidLoopError("adjacency ptr/end mismatch")

    @property
    def n(self) -> int:
        return len(self.ptr) - 1

    @property
    def n_edges(self) -> int:
        return len(self.adj) // 2

    def neighbors(self, v: int) -> np.ndarray:
        return self.adj[self.ptr[v] : self.ptr[v + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.ptr)

    @classmethod
    def from_csr_pattern(cls, matrix) -> "MeshAdjacency":
        """Adjacency from a (structurally symmetric) sparse matrix pattern:
        vertices are rows, edges the off-diagonal nonzeros.  Turns any
        :class:`~repro.sparse.csr.CSRMatrix` operator into a sweepable
        mesh — e.g. the 5-point stencil becomes the classic grid graph
        whose greedy coloring is red-black."""
        n = matrix.n_rows
        neighbor_lists: list[list[int]] = []
        for v in range(n):
            cols, _ = matrix.row(v)
            neighbor_lists.append([int(u) for u in cols if int(u) != v])
        ptr = np.zeros(n + 1, dtype=np.int64)
        ptr[1:] = np.cumsum([len(l) for l in neighbor_lists])
        adj = np.fromiter(
            (u for l in neighbor_lists for u in l),
            dtype=np.int64,
            count=int(ptr[-1]),
        )
        return cls(ptr, adj)

    def validate_symmetric(self) -> None:
        """Raise if any edge lacks its reverse (tested invariant)."""
        edge_set = set()
        for v in range(self.n):
            for u in self.neighbors(v):
                edge_set.add((v, int(u)))
        for v, u in edge_set:
            if (u, v) not in edge_set:
                raise InvalidLoopError(f"edge ({v}, {u}) has no reverse")


def random_mesh(n: int, seed: int = 0, degree_scale: float = 1.8) -> MeshAdjacency:
    """A connected random geometric mesh: ``n`` points in the unit square,
    edges between pairs closer than ``degree_scale / sqrt(n)``; stragglers
    are chained to vertex 0 so the mesh is connected."""
    if n < 1:
        raise InvalidLoopError(f"mesh needs at least one vertex, got {n}")
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 2))
    radius = degree_scale / np.sqrt(n)

    # Grid-bucket neighbor search keeps construction O(n) for fixed radius.
    cell = radius
    buckets: dict[tuple[int, int], list[int]] = {}
    for v in range(n):
        key = (int(pos[v, 0] / cell), int(pos[v, 1] / cell))
        buckets.setdefault(key, []).append(v)

    neighbor_sets: list[set[int]] = [set() for _ in range(n)]
    r2 = radius * radius
    for (cx, cy), members in buckets.items():
        candidates = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                candidates.extend(buckets.get((cx + dx, cy + dy), []))
        for v in members:
            for u in candidates:
                if u <= v:
                    continue
                d = pos[v] - pos[u]
                if d[0] * d[0] + d[1] * d[1] <= r2:
                    neighbor_sets[v].add(u)
                    neighbor_sets[u].add(v)

    # Connect isolated/disconnected pieces with a cheap union-find chain.
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for v in range(n):
        for u in neighbor_sets[v]:
            ra, rb = find(v), find(u)
            if ra != rb:
                parent[ra] = rb
    for v in range(1, n):
        if find(v) != find(0):
            neighbor_sets[0].add(v)
            neighbor_sets[v].add(0)
            parent[find(v)] = find(0)

    ptr = np.zeros(n + 1, dtype=np.int64)
    ptr[1:] = np.cumsum([len(s) for s in neighbor_sets])
    adj = np.fromiter(
        (u for s in neighbor_sets for u in sorted(s)),
        dtype=np.int64,
        count=int(ptr[-1]),
    )
    return MeshAdjacency(ptr, adj)


def sweep_loop(
    mesh: MeshAdjacency,
    order: np.ndarray | None = None,
    omega: float = 0.2,
    x0_value: float = 1.0,
    name: str | None = None,
) -> IrregularLoop:
    """One relaxation sweep over ``mesh`` in the given vertex ``order``."""
    n = mesh.n
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if len(order) != n:
            raise InvalidLoopError(
                f"order has {len(order)} entries for {n} vertices"
            )
    per_iteration = []
    for v in order:
        nbrs = mesh.neighbors(int(v))
        weight = omega / max(len(nbrs), 1)
        per_iteration.append([(int(u), weight) for u in nbrs])
    return IrregularLoop(
        n=n,
        y_size=n,
        write_subscript=IndirectSubscript(order),
        reads=ReadTable.from_lists(per_iteration),
        y0=np.full(n, x0_value, dtype=np.float64),
        name=name if name is not None else f"mesh-sweep(n={n})",
    )


def mesh_orderings(mesh: MeshAdjacency, seed: int = 0) -> dict[str, np.ndarray]:
    """The library's stock vertex orderings: natural, random, BFS from
    vertex 0, and greedy-coloring order."""
    n = mesh.n
    rng = np.random.default_rng(seed)

    # BFS from vertex 0 (mesh is connected by construction).
    visited = np.zeros(n, dtype=bool)
    bfs = np.empty(n, dtype=np.int64)
    head = tail = 0
    bfs[tail] = 0
    visited[0] = True
    tail += 1
    while head < tail:
        v = int(bfs[head])
        head += 1
        for u in mesh.neighbors(v):
            u = int(u)
            if not visited[u]:
                visited[u] = True
                bfs[tail] = u
                tail += 1
    if tail != n:
        raise InvalidLoopError("mesh is not connected; BFS order undefined")

    colors = greedy_coloring(mesh.ptr, mesh.adj)
    return {
        "natural": np.arange(n, dtype=np.int64),
        "random": rng.permutation(n).astype(np.int64),
        "bfs": bfs,
        "coloring": color_order(colors),
    }
