"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the package's failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationDeadlockError",
    "InvalidLoopError",
    "OutputDependenceError",
    "ScheduleError",
    "RaceConditionError",
    "SanitizerError",
    "MatrixFormatError",
    "SingularMatrixError",
    "CalibrationError",
    "TelemetryError",
    "ProofError",
    "WaitTimeout",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationDeadlockError(ReproError):
    """The discrete-event engine found processors waiting on flags that no
    remaining task will ever set.

    Attributes
    ----------
    waiters:
        Mapping of processor id to the flag index it is blocked on.
    time:
        Simulated time (cycles) at which the deadlock was detected.
    """

    def __init__(self, waiters: dict[int, int], time: int):
        self.waiters = dict(waiters)
        self.time = time
        detail = ", ".join(f"p{p}→flag {f}" for p, f in sorted(waiters.items()))
        super().__init__(
            f"simulation deadlock at t={time}: {len(waiters)} processor(s) "
            f"blocked on flags that will never be set ({detail})"
        )


class InvalidLoopError(ReproError):
    """A loop description is malformed (bad sizes, out-of-range subscripts)."""


class OutputDependenceError(InvalidLoopError):
    """The loop's write subscript is not injective.

    The preprocessed doacross (paper §2.1) assumes no output dependencies
    between left-hand-side references: no two iterations may write the same
    element.  This error reports the first colliding pair found.
    """

    def __init__(self, index: int, first_writer: int, second_writer: int):
        self.index = int(index)
        self.first_writer = int(first_writer)
        self.second_writer = int(second_writer)
        super().__init__(
            f"output dependence: iterations {first_writer} and {second_writer} "
            f"both write element {index}; the preprocessed doacross requires an "
            f"injective write subscript"
        )


class ScheduleError(ReproError):
    """An iteration schedule is inconsistent (bad chunking, empty claim)."""


class RaceConditionError(ScheduleError):
    """Static validation found a true dependence the schedule fails to
    order (``validate="static"`` on :func:`~repro.core.doacross.parallelize`
    or :func:`~repro.backends.make_runner`).

    Attributes
    ----------
    report:
        The :class:`~repro.lint.hb.RaceReport` listing uncovered edges.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(report.summary())


class SanitizerError(ScheduleError):
    """The execution sanitizer (``validate="sanitize"``) witnessed a run
    whose shadow-access log violates the §2.2 post/wait protocol.

    Where :class:`RaceConditionError` reports a *planned* order the static
    happens-before checker cannot cover, this error reports an *actual*
    execution in which a read of a renamed value was not ordered after its
    write by any witnessed post/wait (or barrier) edge — or in which a
    wait was acquired that no post ever satisfied.

    Attributes
    ----------
    report:
        The :class:`~repro.sanitize.detector.SanitizeReport` whose
        violations name the iterations, the element, the lanes involved,
        and the missing synchronization edge.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(report.summary())


class MatrixFormatError(ReproError):
    """A sparse matrix is structurally invalid for the requested operation."""


class SingularMatrixError(MatrixFormatError):
    """A triangular factor has a zero (or missing) diagonal entry."""

    def __init__(self, row: int):
        self.row = int(row)
        super().__init__(f"zero or missing diagonal entry in row {row}")


class CalibrationError(ReproError):
    """A cost model's constants are inconsistent (negative costs, etc.)."""


class TelemetryError(ReproError):
    """A telemetry blob or benchmark artifact violates the serialized
    schema (:func:`repro.obs.telemetry.validate_telemetry`,
    :func:`repro.bench.schema.validate_bench_payload`)."""


class WaitTimeout(ReproError):
    """A busy-wait on a ``ready`` flag exhausted its spin/sleep/timeout
    ladder (:class:`repro.backends.waitladder.WaitLadder`).

    The Figure-5 executor busy-waits on flags that a *correct* schedule
    always sets; an exhausted ladder therefore means the schedule (or the
    ``iter`` array behind it) is corrupted — a cyclic order, a stale
    inspector entry, a dead worker.  Raising instead of spinning forever is
    the real-concurrency analogue of
    :class:`SimulationDeadlockError`.

    Constructed with a plain message (kept picklable: the multiprocessing
    backend ships this exception across a process boundary).
    """

    def __init__(self, message: str, element: int | None = None,
                 waited_seconds: float | None = None):
        self.element = element
        self.waited_seconds = waited_seconds
        super().__init__(message)

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.element, self.waited_seconds),
        )


class ProofError(ReproError):
    """A symbolic dependence proof failed verification: a side condition
    no longer evaluates true, declared read slots do not match the loop's
    materialized read table, or the debug cross-check found the runtime
    inspector disagreeing with the verdict
    (:mod:`repro.analysis.checker`)."""
