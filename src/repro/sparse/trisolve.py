"""Sparse triangular solves and the Figure-7 loop encoding.

The paper's Figure 7 (1-based)::

    do i = 1, n
        y(i) = rhs(i)
        do j = low(i), high(i)
            y(i) = y(i) - a(j) * y(column(j))
        end do
    end do

— a unit-lower-triangular forward substitution over a CSR structure, whose
inter-iteration dependencies are determined by the runtime contents of
``column``.  :func:`lower_solve_loop` encodes it as an
:class:`~repro.ir.loop.IrregularLoop` so every doacross strategy can run it;
:func:`solve_lower_unit` is the sequential reference; :func:`solve_upper` /
:func:`upper_solve_loop` complete the ILU(0) preconditioner application
(backward substitution, encoded by reversing the iteration space and
scaling each row by its pivot so the loop stays in the division-free
Figure-7 shape).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.ir.accesses import ReadTable
from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.ir.subscript import AffineSubscript
from repro.machine.costs import WorkProfile
from repro.sparse.csr import CSRMatrix

__all__ = [
    "TRISOLVE_WORK",
    "solve_lower_unit",
    "solve_upper",
    "lower_solve_loop",
    "upper_solve_loop",
]

#: Per-iteration work of the Figure-7 source loop.  A triangular-solve row
#: is several times heavier than a Figure-4 term: per iteration it loads the
#: ``low(i)``/``high(i)`` bounds and ``rhs(i)`` and stores ``y(i)``
#: (``overhead=8``); per term it loads ``a(j)`` and ``column(j)`` and forms
#: the indirect address (``term_setup=10``) before loading ``y(column(j))``
#: and doing the multiply-subtract (``term_consume=5``).  These ratios (term
#: ≈ 2× the default profile's, consume ≈ ⅓ of term) reproduce the paper's
#: relative overhead level for Table 1 — see DESIGN.md §7 and EXPERIMENTS.md.
TRISOLVE_WORK = WorkProfile(overhead=8, term_setup=10, term_consume=5)


def _require_unit_lower(L: CSRMatrix) -> None:
    if L.n_rows != L.n_cols:
        raise MatrixFormatError("triangular solve needs a square matrix")
    for i in range(L.n_rows):
        cols, vals = L.row(i)
        if len(cols) == 0 or cols[-1] != i or vals[-1] != 1.0:
            raise MatrixFormatError(
                f"row {i} is not unit-lower-triangular (needs trailing "
                f"diagonal entry 1.0)"
            )


def solve_lower_unit(L: CSRMatrix, rhs) -> np.ndarray:
    """Sequential forward substitution with unit diagonal (Figure 7)."""
    _require_unit_lower(L)
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.shape != (L.n_rows,):
        raise MatrixFormatError(
            f"rhs must have shape ({L.n_rows},), got {rhs.shape}"
        )
    y = np.zeros(L.n_rows, dtype=np.float64)
    for i in range(L.n_rows):
        cols, vals = L.row(i)
        # All but the trailing diagonal entry are strictly lower.
        acc = rhs[i]
        for k in range(len(cols) - 1):
            acc -= vals[k] * y[cols[k]]
        y[i] = acc
    return y


def solve_upper(U: CSRMatrix, rhs) -> np.ndarray:
    """Sequential backward substitution (general diagonal)."""
    if U.n_rows != U.n_cols:
        raise MatrixFormatError("triangular solve needs a square matrix")
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.shape != (U.n_rows,):
        raise MatrixFormatError(
            f"rhs must have shape ({U.n_rows},), got {rhs.shape}"
        )
    y = np.zeros(U.n_rows, dtype=np.float64)
    for i in range(U.n_rows - 1, -1, -1):
        cols, vals = U.row(i)
        if len(cols) == 0 or cols[0] != i:
            raise MatrixFormatError(f"row {i} has no leading diagonal entry")
        acc = rhs[i]
        for k in range(1, len(cols)):
            acc -= vals[k] * y[cols[k]]
        if vals[0] == 0.0:
            raise MatrixFormatError(f"zero diagonal in row {i}")
        y[i] = acc / vals[0]
    return y


def lower_solve_loop(
    L: CSRMatrix, rhs, name: str | None = None
) -> IrregularLoop:
    """Encode the Figure-7 forward substitution as an irregular loop.

    Iteration ``i`` writes ``y[i]`` (affine identity subscript — note the
    paper still times the *full* preprocessed doacross on this loop, which
    is what Table 1 reports; the §2.3 linear shortcut is an ablation) and
    reads one term per strictly-lower nonzero: ``-L[i,j] · y[j]``.
    """
    _require_unit_lower(L)
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.shape != (L.n_rows,):
        raise MatrixFormatError(
            f"rhs must have shape ({L.n_rows},), got {rhs.shape}"
        )
    n = L.n_rows
    # Strictly-lower part: every row's entries except the trailing diagonal.
    counts = L.row_nnz() - 1
    ptr = np.zeros(n + 1, dtype=np.int64)
    ptr[1:] = np.cumsum(counts)
    keep = np.ones(L.nnz, dtype=bool)
    keep[L.indptr[1:] - 1] = False  # drop each row's diagonal entry
    index = L.indices[keep]
    coeff = -L.data[keep]
    reads = ReadTable(ptr, index, coeff)
    return IrregularLoop(
        n=n,
        y_size=n,
        write_subscript=AffineSubscript(1, 0),
        reads=reads,
        init_kind=INIT_EXTERNAL,
        init_values=rhs,
        y0=np.zeros(n, dtype=np.float64),
        name=name if name is not None else f"trisolve(n={n},nnz={L.nnz})",
        work=TRISOLVE_WORK,
    )


def upper_solve_loop(
    U: CSRMatrix, rhs, name: str | None = None
) -> IrregularLoop:
    """Encode backward substitution as an irregular loop.

    Iteration ``p`` executes original row ``r = n−1−p`` (so dependencies
    point backward in the loop's iteration space); each row is pre-scaled by
    its pivot, turning the division into the division-free Figure-7 form:
    ``y[r] = rhs[r]/U[r,r] − Σ_{j>r} (U[r,j]/U[r,r]) · y[j]``.
    """
    if U.n_rows != U.n_cols:
        raise MatrixFormatError("triangular solve needs a square matrix")
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.shape != (U.n_rows,):
        raise MatrixFormatError(
            f"rhs must have shape ({U.n_rows},), got {rhs.shape}"
        )
    n = U.n_rows
    per_iteration = []
    init_values = np.zeros(n, dtype=np.float64)
    for p in range(n):
        r = n - 1 - p
        cols, vals = U.row(r)
        if len(cols) == 0 or cols[0] != r:
            raise MatrixFormatError(f"row {r} has no leading diagonal entry")
        pivot = vals[0]
        if pivot == 0.0:
            raise MatrixFormatError(f"zero diagonal in row {r}")
        init_values[p] = rhs[r] / pivot
        per_iteration.append(
            [(int(cols[k]), -vals[k] / pivot) for k in range(1, len(cols))]
        )
    reads = ReadTable.from_lists(per_iteration)
    return IrregularLoop(
        n=n,
        y_size=n,
        write_subscript=AffineSubscript(-1, n - 1),
        reads=reads,
        init_kind=INIT_EXTERNAL,
        init_values=init_values,
        y0=np.zeros(n, dtype=np.float64),
        name=name if name is not None else f"upper-trisolve(n={n})",
        work=TRISOLVE_WORK,
    )
