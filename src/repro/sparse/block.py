"""Block operators: ``b×b`` blocks on a 3-D grid, seven-point coupling.

The paper's reservoir problems (appendix) are "block seven point operators":
every grid point carries ``b`` unknowns (6 for SPE2's thermal model, 3 for
SPE5's black-oil model), coupled to its six axis neighbors by dense ``b×b``
blocks.  For the Table-1 reproduction the quantity that matters is the
resulting *sparsity pattern* (it fixes the dependence DAG of the triangular
factor); the block values here are pseudo-random but seeded, scaled so the
matrix is strictly block-diagonally dominant and ILU(0) stays well behaved.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import COOBuilder
from repro.sparse.csr import CSRMatrix
from repro.sparse.stencils import grid_index_3d

__all__ = ["block_seven_point"]

_NEIGHBOR_OFFSETS = (
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
)


def block_seven_point(
    nx: int,
    ny: int,
    nz: int,
    block: int,
    seed: int = 0,
    coupling: float = 0.1,
) -> CSRMatrix:
    """Block seven-point operator on an ``nx × ny × nz`` grid.

    Parameters
    ----------
    block:
        Unknowns per grid point (``b``); the matrix is ``b·nx·ny·nz``
        square.
    seed:
        RNG seed for the block values (deterministic problems).
    coupling:
        Magnitude scale of off-diagonal blocks relative to the diagonal.
        Diagonal blocks are ``I + small`` perturbation plus a row-sum
        margin, which makes every row strictly diagonally dominant.
    """
    for d in (nx, ny, nz):
        if d < 1:
            raise MatrixFormatError(f"grid dimensions must be >= 1, got {d}")
    if block < 1:
        raise MatrixFormatError(f"block size must be >= 1, got {block}")

    rng = np.random.default_rng(seed)
    n_points = nx * ny * nz
    n = n_points * block
    builder = COOBuilder(n)

    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ix, iy, iz = ix.reshape(-1), iy.reshape(-1), iz.reshape(-1)
    centers = grid_index_3d(ix, iy, iz, nx, ny)

    # Off-diagonal coupling blocks, and per-point accumulated row sums used
    # to make the diagonal dominant.
    abs_row_sums = np.zeros((n_points, block), dtype=np.float64)
    for dx, dy, dz in _NEIGHBOR_OFFSETS:
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        ok = (
            (jx >= 0)
            & (jx < nx)
            & (jy >= 0)
            & (jy < ny)
            & (jz >= 0)
            & (jz < nz)
        )
        src = centers[ok]
        dst = grid_index_3d(jx[ok], jy[ok], jz[ok], nx, ny)
        blocks = rng.uniform(-coupling, coupling, size=(len(src), block, block))
        for k in range(len(src)):
            builder.add_block(
                int(src[k]) * block, int(dst[k]) * block, blocks[k]
            )
        np.add.at(abs_row_sums, src, np.abs(blocks).sum(axis=2))

    # Diagonal blocks: identity + small dense perturbation + dominance
    # margin on the diagonal entries.
    diag_perturb = rng.uniform(
        -coupling / 2, coupling / 2, size=(n_points, block, block)
    )
    for p in range(n_points):
        d_block = diag_perturb[p].copy()
        margin = abs_row_sums[p] + np.abs(d_block).sum(axis=1) + 1.0
        d_block[np.arange(block), np.arange(block)] += margin
        builder.add_block(p * block, p * block, d_block)

    return builder.to_csr()
