"""Finite-difference stencil operators on regular grids.

The paper's appendix defines three point-operator test problems:

- **5-PT** — five-point central differences on a 63×63 grid (3969 eqs);
- **7-PT** — seven-point central differences on a 20×20×20 grid (8000 eqs);
- **9-PT** — nine-point box scheme on a 63×63 grid (3969 eqs).

What the Table-1 experiment consumes is the *lower-triangular pattern* of
these operators (via ILU(0)); the values below are the standard
diagonally-dominant Laplacian choices, which keep ILU(0) well defined.
Grid nodes are numbered in natural order, ``x`` fastest.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import COOBuilder
from repro.sparse.csr import CSRMatrix

__all__ = ["five_point", "seven_point", "nine_point", "grid_index_2d", "grid_index_3d"]


def grid_index_2d(ix: np.ndarray, iy: np.ndarray, nx: int) -> np.ndarray:
    """Natural ordering of a 2-D grid (``x`` fastest)."""
    return iy * nx + ix


def grid_index_3d(
    ix: np.ndarray, iy: np.ndarray, iz: np.ndarray, nx: int, ny: int
) -> np.ndarray:
    """Natural ordering of a 3-D grid (``x`` fastest, then ``y``)."""
    return (iz * ny + iy) * nx + ix


def _check_dims(*dims: int) -> None:
    for d in dims:
        if d < 1:
            raise MatrixFormatError(f"grid dimensions must be >= 1, got {d}")


def five_point(nx: int, ny: int) -> CSRMatrix:
    """Five-point 2-D operator: center 4, N/S/E/W neighbors −1."""
    _check_dims(nx, ny)
    n = nx * ny
    builder = COOBuilder(n)
    ix, iy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    ix, iy = ix.reshape(-1), iy.reshape(-1)
    center = grid_index_2d(ix, iy, nx)
    builder.add_batch(center, center, np.full(n, 4.0))
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        jx, jy = ix + dx, iy + dy
        ok = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny)
        builder.add_batch(
            center[ok],
            grid_index_2d(jx[ok], jy[ok], nx),
            np.full(int(ok.sum()), -1.0),
        )
    return builder.to_csr()


def nine_point(nx: int, ny: int) -> CSRMatrix:
    """Nine-point 2-D box scheme: center 8, all eight neighbors −1."""
    _check_dims(nx, ny)
    n = nx * ny
    builder = COOBuilder(n)
    ix, iy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    ix, iy = ix.reshape(-1), iy.reshape(-1)
    center = grid_index_2d(ix, iy, nx)
    builder.add_batch(center, center, np.full(n, 8.0))
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            jx, jy = ix + dx, iy + dy
            ok = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny)
            builder.add_batch(
                center[ok],
                grid_index_2d(jx[ok], jy[ok], nx),
                np.full(int(ok.sum()), -1.0),
            )
    return builder.to_csr()


def seven_point(nx: int, ny: int, nz: int) -> CSRMatrix:
    """Seven-point 3-D operator: center 6, the six axis neighbors −1."""
    _check_dims(nx, ny, nz)
    n = nx * ny * nz
    builder = COOBuilder(n)
    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ix, iy, iz = ix.reshape(-1), iy.reshape(-1), iz.reshape(-1)
    center = grid_index_3d(ix, iy, iz, nx, ny)
    builder.add_batch(center, center, np.full(n, 6.0))
    for dx, dy, dz in (
        (1, 0, 0),
        (-1, 0, 0),
        (0, 1, 0),
        (0, -1, 0),
        (0, 0, 1),
        (0, 0, -1),
    ):
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        ok = (
            (jx >= 0)
            & (jx < nx)
            & (jy >= 0)
            & (jy < ny)
            & (jz >= 0)
            & (jz < nz)
        )
        builder.add_batch(
            center[ok],
            grid_index_3d(jx[ok], jy[ok], jz[ok], nx, ny),
            np.full(int(ok.sum()), -1.0),
        )
    return builder.to_csr()
