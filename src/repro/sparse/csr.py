"""Compressed-sparse-row matrix.

A deliberately small, self-contained CSR implementation — the substrate the
Figure-7 triangular-solve loop walks (``low(i)``/``high(i)`` are exactly
``indptr[i]``/``indptr[i+1]``, ``column(j)`` is ``indices[j]``, ``a(j)`` is
``data[j]``).  Column indices within each row are kept sorted; duplicate
summing happens at construction (:class:`~repro.sparse.coo.COOBuilder`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """CSR matrix with sorted, duplicate-free rows."""

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(self, n_rows: int, n_cols: int, indptr, indices, data):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self._validate()

    def _validate(self) -> None:
        if len(self.indptr) != self.n_rows + 1:
            raise MatrixFormatError(
                f"indptr length {len(self.indptr)} != n_rows+1 = "
                f"{self.n_rows + 1}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise MatrixFormatError("indptr endpoints inconsistent with nnz")
        if len(self.indices) != len(self.data):
            raise MatrixFormatError("indices/data length mismatch")
        if len(self.indptr) > 1 and np.any(np.diff(self.indptr) < 0):
            raise MatrixFormatError("indptr must be non-decreasing")
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= self.n_cols:
                raise MatrixFormatError("column index out of range")
        # Sorted, duplicate-free rows.
        for i in range(self.n_rows):
            row = self.indices[self.indptr[i] : self.indptr[i + 1]]
            if len(row) > 1 and np.any(np.diff(row) <= 0):
                raise MatrixFormatError(
                    f"row {i} has unsorted or duplicate column indices"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        """Build from a dense array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise MatrixFormatError("dense input must be 2-D")
        rows, cols = np.nonzero(dense)
        n_rows, n_cols = dense.shape
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(rows, minlength=n_rows))
        return cls(n_rows, n_cols, indptr, cols, dense[rows, cols])

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return len(self.indices)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(columns, values)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def get(self, i: int, j: int) -> float:
        """Entry ``(i, j)`` (0.0 when outside the pattern)."""
        cols, vals = self.row(i)
        k = np.searchsorted(cols, j)
        if k < len(cols) and cols[k] == j:
            return float(vals[k])
        return 0.0

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.n_rows):
            cols, vals = self.row(i)
            out[i, cols] = vals
        return out

    def matvec(self, x) -> np.ndarray:
        """``A @ x``, computed segment-wise (vectorized)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise MatrixFormatError(
                f"matvec expects shape ({self.n_cols},), got {x.shape}"
            )
        products = self.data * x[self.indices]
        out = np.zeros(self.n_rows, dtype=np.float64)
        if len(products):
            row_of = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
            )
            np.add.at(out, row_of, products)
        return out

    def diagonal(self) -> np.ndarray:
        """The main diagonal (zeros where outside the pattern)."""
        out = np.zeros(min(self.n_rows, self.n_cols), dtype=np.float64)
        for i in range(len(out)):
            out[i] = self.get(i, i)
        return out

    # ------------------------------------------------------------------
    def _filtered(self, keep_mask: np.ndarray) -> "CSRMatrix":
        """New matrix keeping only the flagged entries."""
        new_counts = np.zeros(self.n_rows, dtype=np.int64)
        if len(keep_mask):
            row_of = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
            )
            np.add.at(new_counts, row_of[keep_mask], 1)
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(new_counts)
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            indptr,
            self.indices[keep_mask],
            self.data[keep_mask],
        )

    def lower_triangle(self, unit: bool = False) -> "CSRMatrix":
        """The lower triangle (diagonal included).

        ``unit=True`` replaces the diagonal values with exact ones — the
        form the Figure-7 unit-lower solve consumes.
        """
        row_of = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
        )
        keep = self.indices <= row_of
        out = self._filtered(keep)
        if unit:
            for i in range(out.n_rows):
                cols, _ = out.row(i)
                lo = out.indptr[i]
                k = np.searchsorted(cols, i)
                if k < len(cols) and cols[k] == i:
                    out.data[lo + k] = 1.0
                else:
                    raise MatrixFormatError(
                        f"row {i} has no diagonal entry; cannot unit-scale"
                    )
        return out

    def strict_lower_triangle(self) -> "CSRMatrix":
        row_of = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
        )
        return self._filtered(self.indices < row_of)

    def upper_triangle(self) -> "CSRMatrix":
        row_of = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
        )
        return self._filtered(self.indices >= row_of)

    def transpose(self) -> "CSRMatrix":
        """CSR transpose (CSC reinterpretation + re-bucketing)."""
        if self.nnz == 0:
            return CSRMatrix(
                self.n_cols,
                self.n_rows,
                np.zeros(self.n_cols + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        row_of = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
        )
        order = np.lexsort((row_of, self.indices))
        new_rows = self.indices[order]
        indptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(new_rows, minlength=self.n_cols))
        return CSRMatrix(
            self.n_cols, self.n_rows, indptr, row_of[order], self.data[order]
        )

    def permuted(self, perm) -> "CSRMatrix":
        """Symmetric permutation ``P A Pᵀ``: new row/col ``k`` is old
        ``perm[k]``.  Requires a square matrix."""
        if self.n_rows != self.n_cols:
            raise MatrixFormatError("symmetric permutation needs square A")
        perm = np.asarray(perm, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(self.n_rows)):
            raise MatrixFormatError("perm is not a permutation of 0..n-1")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(self.n_rows, dtype=np.int64)

        from repro.sparse.coo import COOBuilder

        builder = COOBuilder(self.n_rows, self.n_cols)
        row_of = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
        )
        builder.add_batch(inv[row_of], inv[self.indices], self.data)
        return builder.to_csr()

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"CSRMatrix({self.n_rows}x{self.n_cols}, nnz={self.nnz})"
        )
