"""The paper's five test problems, at their exact sizes.

From the appendix ("Definition of Test Triangular Systems"):

- **SPE2** — thermal steam-injection simulation: block seven-point operator
  on a 6×6×5 grid with 6×6 blocks → 1080 equations.
- **SPE5** — fully-implicit black-oil simulation: block seven-point
  operator on a 16×23×3 grid with 3×3 blocks → 3312 equations.
- **5-PT** — five-point differences on 63×63 → 3969 equations.
- **7-PT** — seven-point differences on 20×20×20 → 8000 equations.
- **9-PT** — nine-point box scheme on 63×63 → 3969 equations.

The original SPE matrices came from proprietary reservoir simulators; the
substitution (DESIGN.md §3) keeps the exact grid, blocking, and coupling
*structure* — which fully determines the triangular factor's dependence DAG,
the quantity Table 1 exercises — with seeded synthetic values.
"""

from __future__ import annotations

from repro.sparse.block import block_seven_point
from repro.sparse.csr import CSRMatrix
from repro.sparse.stencils import five_point, nine_point, seven_point

__all__ = [
    "spe2",
    "spe5",
    "five_pt_problem",
    "seven_pt_problem",
    "nine_pt_problem",
    "paper_problems",
    "PAPER_PROBLEM_SIZES",
]

#: Equation counts the paper reports, asserted by tests.
PAPER_PROBLEM_SIZES = {
    "SPE2": 1080,
    "SPE5": 3312,
    "5-PT": 3969,
    "7-PT": 8000,
    "9-PT": 3969,
}


def spe2(seed: int = 2) -> CSRMatrix:
    """SPE2: 6×6×5 grid, 6×6 blocks (1080 equations)."""
    return block_seven_point(6, 6, 5, block=6, seed=seed)


def spe5(seed: int = 5) -> CSRMatrix:
    """SPE5: 16×23×3 grid, 3×3 blocks (3312 equations)."""
    return block_seven_point(16, 23, 3, block=3, seed=seed)


def five_pt_problem() -> CSRMatrix:
    """5-PT: 63×63 five-point operator (3969 equations)."""
    return five_point(63, 63)


def seven_pt_problem() -> CSRMatrix:
    """7-PT: 20×20×20 seven-point operator (8000 equations)."""
    return seven_point(20, 20, 20)


def nine_pt_problem() -> CSRMatrix:
    """9-PT: 63×63 nine-point box scheme (3969 equations)."""
    return nine_point(63, 63)


def paper_problems(small: bool = False) -> dict[str, CSRMatrix]:
    """All five problems keyed by the paper's names (Table 1 row order).

    ``small=True`` returns structurally identical but reduced-size versions
    (for fast tests): same stencils and blockings on shrunken grids.
    """
    if small:
        return {
            "SPE2": block_seven_point(3, 3, 2, block=6, seed=2),
            "SPE5": block_seven_point(4, 5, 2, block=3, seed=5),
            "5-PT": five_point(12, 12),
            "7-PT": seven_point(6, 6, 6),
            "9-PT": nine_point(12, 12),
        }
    return {
        "SPE2": spe2(),
        "SPE5": spe5(),
        "5-PT": five_pt_problem(),
        "7-PT": seven_pt_problem(),
        "9-PT": nine_pt_problem(),
    }
