"""Permutation utilities for sparse matrices.

Symmetric permutations change a triangular factor's dependence structure
without changing the linear system being solved — the knob doconsider-style
experiments turn.  Only *order-preserving-enough* permutations keep a
triangular matrix triangular; the Table-1 experiments instead reorder at the
loop level (the doconsider order), which needs no matrix permutation at all.
These helpers serve the matrix-level tests and ablations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "identity_permutation",
    "random_symmetric_permutation",
    "permutation_is_valid",
    "invert_permutation",
]


def identity_permutation(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def random_symmetric_permutation(n: int, seed: int = 0) -> np.ndarray:
    """A uniformly random permutation of ``0..n-1`` (seeded)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def permutation_is_valid(perm) -> bool:
    """Whether ``perm`` is a permutation of ``0..len(perm)-1``."""
    perm = np.asarray(perm, dtype=np.int64)
    if perm.ndim != 1:
        return False
    n = len(perm)
    seen = np.zeros(n, dtype=bool)
    in_range = (perm >= 0) & (perm < n)
    if not in_range.all():
        return False
    seen[perm] = True
    return bool(seen.all())


def invert_permutation(perm) -> np.ndarray:
    """``inv`` such that ``inv[perm[k]] == k``."""
    perm = np.asarray(perm, dtype=np.int64)
    if not permutation_is_valid(perm):
        raise ValueError("not a permutation of 0..n-1")
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=np.int64)
    return inv
