"""Coordinate-format matrix builder.

The operator generators (stencils, block operators) emit entries in
coordinate form; :class:`COOBuilder` accumulates them and converts to CSR
with duplicate summing, fully vectorized (sort by ``(row, col)``,
``np.add.reduceat`` over runs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError

__all__ = ["COOBuilder"]


class COOBuilder:
    """Accumulates ``(row, col, value)`` triples for one matrix."""

    def __init__(self, n_rows: int, n_cols: int | None = None):
        if n_rows < 0:
            raise MatrixFormatError(f"n_rows must be >= 0, got {n_rows}")
        self.n_rows = n_rows
        self.n_cols = n_rows if n_cols is None else n_cols
        if self.n_cols < 0:
            raise MatrixFormatError(f"n_cols must be >= 0, got {self.n_cols}")
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []

    def add(self, row: int, col: int, value: float) -> None:
        """Add a single entry."""
        self.add_batch([row], [col], [value])

    def add_batch(self, rows, cols, values) -> None:
        """Add arrays of entries (the fast path for generators)."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        cols = np.asarray(cols, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if not (len(rows) == len(cols) == len(values)):
            raise MatrixFormatError(
                f"batch length mismatch: {len(rows)}, {len(cols)}, "
                f"{len(values)}"
            )
        if len(rows) == 0:
            return
        if rows.min() < 0 or rows.max() >= self.n_rows:
            raise MatrixFormatError(
                f"row index out of range [0, {self.n_rows})"
            )
        if cols.min() < 0 or cols.max() >= self.n_cols:
            raise MatrixFormatError(
                f"col index out of range [0, {self.n_cols})"
            )
        self._rows.append(rows)
        self._cols.append(cols)
        self._vals.append(values)

    def add_block(self, row0: int, col0: int, block: np.ndarray) -> None:
        """Add a dense block with top-left corner at ``(row0, col0)``."""
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2:
            raise MatrixFormatError("block must be 2-D")
        b_r, b_c = block.shape
        rr, cc = np.meshgrid(
            np.arange(row0, row0 + b_r),
            np.arange(col0, col0 + b_c),
            indexing="ij",
        )
        self.add_batch(rr.reshape(-1), cc.reshape(-1), block.reshape(-1))

    @property
    def entry_count(self) -> int:
        """Entries added so far (before duplicate summing)."""
        return sum(len(r) for r in self._rows)

    def to_csr(self):
        """Convert to :class:`~repro.sparse.csr.CSRMatrix`, summing
        duplicate coordinates.  Exact zeros produced by cancellation are
        kept (pattern stability matters for ILU(0))."""
        from repro.sparse.csr import CSRMatrix

        if not self._rows:
            return CSRMatrix(
                self.n_rows,
                self.n_cols,
                np.zeros(self.n_rows + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        rows = np.concatenate(self._rows)
        cols = np.concatenate(self._cols)
        vals = np.concatenate(self._vals)

        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        # Runs of identical (row, col) collapse into one summed entry.
        new_run = np.empty(len(rows), dtype=bool)
        new_run[0] = True
        new_run[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        starts = np.nonzero(new_run)[0]
        summed = np.add.reduceat(vals, starts)
        rows, cols = rows[starts], cols[starts]

        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(rows, minlength=self.n_rows))
        return CSRMatrix(self.n_rows, self.n_cols, indptr, cols, summed)
