"""ILU(0) incomplete factorization.

The paper's triangular systems "arise from incompletely factored matrices"
(§3.2).  ILU(0) computes ``A ≈ L·U`` where the factors' sparsity patterns
equal the lower/upper triangles of ``A`` — no fill-in is admitted.  That
pattern preservation is what makes the substitution in DESIGN.md §3 sound:
the dependence DAG of the ``L`` solve is fixed by ``A``'s pattern alone.

Algorithm: the standard row-oriented IKJ formulation (Saad, *Iterative
Methods for Sparse Linear Systems*, alg. 10.4), restricted to ``A``'s
pattern.  ``L`` is unit lower triangular (unit diagonal stored explicitly so
the Figure-7 solve can consume it directly); ``U`` carries the pivots.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError, SingularMatrixError
from repro.sparse.csr import CSRMatrix

__all__ = ["ilu0"]


def _diagonal_positions(A: CSRMatrix) -> np.ndarray:
    """Flat data index of each row's diagonal entry (must exist)."""
    pos = np.empty(A.n_rows, dtype=np.int64)
    for i in range(A.n_rows):
        lo, hi = A.indptr[i], A.indptr[i + 1]
        cols = A.indices[lo:hi]
        k = np.searchsorted(cols, i)
        if k >= len(cols) or cols[k] != i:
            raise SingularMatrixError(i)
        pos[i] = lo + k
    return pos


def ilu0(A: CSRMatrix) -> tuple[CSRMatrix, CSRMatrix]:
    """Factor ``A ≈ L·U`` on ``A``'s pattern.

    Returns ``(L, U)``: ``L`` unit lower triangular (explicit 1.0 diagonal),
    ``U`` upper triangular including the pivots.  Raises
    :class:`~repro.errors.SingularMatrixError` on a zero pivot and
    :class:`~repro.errors.MatrixFormatError` on a non-square input.

    Exactness property (tested): when ``A``'s pattern already contains all
    LU fill (e.g. dense or tridiagonal patterns), ``L·U == A`` to rounding.
    """
    if A.n_rows != A.n_cols:
        raise MatrixFormatError(
            f"ILU(0) needs a square matrix, got {A.n_rows}x{A.n_cols}"
        )
    n = A.n_rows
    indptr, indices = A.indptr, A.indices
    data = A.data.copy()
    diag_pos = _diagonal_positions(A)

    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        row_cols = indices[lo:hi]
        # O(1) column → flat-position lookup within row i.
        col_to_pos = {int(c): lo + t for t, c in enumerate(row_cols)}
        for kk in range(lo, int(diag_pos[i])):
            k = int(indices[kk])
            pivot = data[diag_pos[k]]
            if pivot == 0.0:
                raise SingularMatrixError(k)
            mult = data[kk] / pivot
            data[kk] = mult
            # Row update restricted to A's pattern: a[i,j] -= mult * a[k,j]
            # for j > k present in both rows.
            for pp in range(int(diag_pos[k]) + 1, int(indptr[k + 1])):
                j = int(indices[pp])
                target = col_to_pos.get(j)
                if target is not None:
                    data[target] -= mult * data[pp]
        if data[diag_pos[i]] == 0.0:
            raise SingularMatrixError(i)

    factored = CSRMatrix(n, n, indptr.copy(), indices.copy(), data)
    L = factored.lower_triangle(unit=True)
    U = factored.upper_triangle()
    return L, U
