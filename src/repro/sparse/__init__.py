"""Sparse-matrix substrate for the Table-1 experiments.

Self-contained (no SciPy dependency in the library proper; SciPy is used
only in tests as an independent oracle):

- :mod:`repro.sparse.coo` / :mod:`repro.sparse.csr` — matrix construction
  and the CSR workhorse.
- :mod:`repro.sparse.stencils` — 5-point (2-D), 7-point (3-D), and 9-point
  (2-D box scheme) difference operators.
- :mod:`repro.sparse.block` — block operators (``b×b`` blocks on a 3-D
  grid), the structure of the paper's reservoir problems.
- :mod:`repro.sparse.spe` — the paper's five test problems at their exact
  sizes (appendix of the paper).
- :mod:`repro.sparse.ilu` — ILU(0) incomplete factorization.
- :mod:`repro.sparse.trisolve` — sequential triangular solves and the
  Figure-7 loop encoding consumed by the doacross runtime.
- :mod:`repro.sparse.reorder` — permutation utilities.
"""

from repro.sparse.block import block_seven_point
from repro.sparse.coo import COOBuilder
from repro.sparse.csr import CSRMatrix
from repro.sparse.ilu import ilu0
from repro.sparse.krylov import (
    IluPreconditioner,
    JacobiPreconditioner,
    PCGReport,
    cg,
    gmres,
)
from repro.sparse.reorder import (
    identity_permutation,
    permutation_is_valid,
    random_symmetric_permutation,
)
from repro.sparse.spe import paper_problems
from repro.sparse.stencils import five_point, nine_point, seven_point
from repro.sparse.trisolve import (
    lower_solve_loop,
    solve_lower_unit,
    solve_upper,
    upper_solve_loop,
)

__all__ = [
    "COOBuilder",
    "CSRMatrix",
    "five_point",
    "seven_point",
    "nine_point",
    "block_seven_point",
    "paper_problems",
    "ilu0",
    "cg",
    "gmres",
    "PCGReport",
    "IluPreconditioner",
    "JacobiPreconditioner",
    "solve_lower_unit",
    "solve_upper",
    "lower_solve_loop",
    "upper_solve_loop",
    "identity_permutation",
    "random_symmetric_permutation",
    "permutation_is_valid",
]
