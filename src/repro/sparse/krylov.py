"""Preconditioned conjugate gradients — the paper's motivating consumer.

Section 3.2 motivates the whole Table-1 experiment with one sentence: "The
solution of these sparse triangular systems accounts for a large fraction
of the sequential execution time of linear solvers that use Krylov
methods."  This module makes that claim executable:

- :func:`cg` — preconditioned conjugate gradients over our CSR matrices
  (SPD operators; the stencil problems qualify), with exact per-operation
  cycle accounting in the same cost model as everything else;
- :class:`IluPreconditioner` — applies ``(LU)⁻¹`` via the Figure-7 forward
  and backward substitutions, either sequentially or through a parallel
  doacross runner (so the whole-solver effect of parallelizing the
  triangular solves — the Amdahl story — is measurable);
- :class:`PCGReport` — iterations, residual history, and the cycle
  breakdown (matvec / triangular solves / vector ops) that reproduces the
  paper's "large fraction" observation.

Cycle accounting conventions: a matvec touches every nonzero once
(``nnz · term + n · overhead`` at the default work profile); vector ops
(axpy, dot) cost 2 cycles/element; each triangular solve costs its loop's
sequential time, or — when a parallel runner is supplied — that runner's
simulated makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sequential import sequential_time
from repro.errors import MatrixFormatError
from repro.machine.costs import CostModel
from repro.sparse.csr import CSRMatrix
from repro.sparse.ilu import ilu0
from repro.sparse.trisolve import (
    lower_solve_loop,
    solve_lower_unit,
    solve_upper,
    upper_solve_loop,
)

__all__ = [
    "PCGReport",
    "IluPreconditioner",
    "JacobiPreconditioner",
    "cg",
    "gmres",
]

#: Cycles per element for one vector operation (axpy / dot / copy).
VECTOR_OP_CYCLES = 2


@dataclass
class PCGReport:
    """Outcome and cycle breakdown of one preconditioned CG run."""

    converged: bool
    iterations: int
    residuals: list[float] = field(default_factory=list)
    matvec_cycles: int = 0
    precond_cycles: int = 0
    vector_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.matvec_cycles + self.precond_cycles + self.vector_cycles

    @property
    def precond_fraction(self) -> float:
        """Fraction of solver time spent applying the preconditioner — the
        paper's "large fraction" claim, as a number."""
        total = self.total_cycles
        return self.precond_cycles / total if total else 0.0

    def summary(self) -> str:
        return (
            f"PCG: {'converged' if self.converged else 'NOT converged'} in "
            f"{self.iterations} iterations; cycles: matvec="
            f"{self.matvec_cycles} precond={self.precond_cycles} "
            f"vector={self.vector_cycles} "
            f"(preconditioner fraction {self.precond_fraction:.2f})"
        )


class JacobiPreconditioner:
    """Diagonal scaling ``M⁻¹ = diag(A)⁻¹`` — the cheap baseline."""

    def __init__(self, A: CSRMatrix, cost_model: CostModel | None = None):
        diag = A.diagonal()
        if np.any(diag == 0):
            raise MatrixFormatError("Jacobi needs a zero-free diagonal")
        self.inv_diag = 1.0 / diag
        self.cost_model = cost_model if cost_model is not None else CostModel()

    def apply(self, r: np.ndarray) -> tuple[np.ndarray, int]:
        """Returns ``(M⁻¹ r, cycles)``."""
        return r * self.inv_diag, len(r) * VECTOR_OP_CYCLES


class IluPreconditioner:
    """ILU(0) preconditioner applied via the Figure-7 substitutions.

    Parameters
    ----------
    A:
        The operator to factor.
    runner:
        Optional parallel runner (anything with
        ``run(loop) -> RunResult``, e.g. a
        :class:`~repro.core.doacross.PreprocessedDoacross` or
        :class:`~repro.core.doconsider.Doconsider`).  When given, each
        substitution's *charged cycles* are the runner's simulated parallel
        makespan instead of the sequential time; values are identical
        either way (tested).
    """

    def __init__(
        self,
        A: CSRMatrix,
        cost_model: CostModel | None = None,
        runner=None,
    ):
        self.L, self.U = ilu0(A)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.runner = runner
        # Sequential substitution costs are rhs-independent; cache them.
        probe = np.zeros(A.n_rows)
        self._seq_lower = sequential_time(
            lower_solve_loop(self.L, probe), self.cost_model
        )
        self._seq_upper = sequential_time(
            upper_solve_loop(self.U, probe), self.cost_model
        )

    @property
    def sequential_apply_cycles(self) -> int:
        """Cost of one sequential ``(LU)⁻¹`` application."""
        return self._seq_lower + self._seq_upper

    def apply(self, r: np.ndarray) -> tuple[np.ndarray, int]:
        """Returns ``(M⁻¹ r, cycles)``."""
        if self.runner is None:
            y = solve_lower_unit(self.L, r)
            x = solve_upper(self.U, y)
            return x, self.sequential_apply_cycles
        lower = self.runner.run(lower_solve_loop(self.L, r))
        upper = self.runner.run(upper_solve_loop(self.U, lower.y))
        return upper.y, lower.total_cycles + upper.total_cycles


def cg(
    A: CSRMatrix,
    b: np.ndarray,
    preconditioner=None,
    tol: float = 1e-8,
    maxiter: int | None = None,
    x0: np.ndarray | None = None,
    cost_model: CostModel | None = None,
) -> tuple[np.ndarray, PCGReport]:
    """Preconditioned conjugate gradients for SPD ``A``.

    Returns ``(x, report)``.  Convergence criterion:
    ``|r| <= tol * |b|`` (2-norms).  The report's cycle breakdown uses the
    shared cost model; every preconditioner application's cost comes from
    the preconditioner itself (which is how a parallel-doacross
    preconditioner changes the whole-solver account).
    """
    if A.n_rows != A.n_cols:
        raise MatrixFormatError("cg needs a square (SPD) matrix")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (A.n_rows,):
        raise MatrixFormatError(
            f"b must have shape ({A.n_rows},), got {b.shape}"
        )
    cm = cost_model if cost_model is not None else CostModel()
    n = A.n_rows
    if maxiter is None:
        maxiter = 10 * n
    matvec_cost = A.nnz * cm.work.term + n * cm.work.overhead

    report = PCGReport(converged=False, iterations=0)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

    r = b - A.matvec(x)
    report.matvec_cycles += matvec_cost
    report.vector_cycles += n * VECTOR_OP_CYCLES
    b_norm = float(np.linalg.norm(b)) or 1.0
    report.residuals.append(float(np.linalg.norm(r)) / b_norm)
    if report.residuals[-1] <= tol:
        report.converged = True
        return x, report

    if preconditioner is None:
        z = r.copy()
    else:
        z, cycles = preconditioner.apply(r)
        report.precond_cycles += cycles
    p = z.copy()
    rz = float(r @ z)
    report.vector_cycles += 2 * n * VECTOR_OP_CYCLES

    for k in range(1, maxiter + 1):
        Ap = A.matvec(p)
        report.matvec_cycles += matvec_cost
        pAp = float(p @ Ap)
        if pAp <= 0:
            raise MatrixFormatError(
                "non-positive curvature: matrix is not SPD"
            )
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        report.vector_cycles += 4 * n * VECTOR_OP_CYCLES
        report.iterations = k
        report.residuals.append(float(np.linalg.norm(r)) / b_norm)
        if report.residuals[-1] <= tol:
            report.converged = True
            break
        if preconditioner is None:
            z = r.copy()
        else:
            z, cycles = preconditioner.apply(r)
            report.precond_cycles += cycles
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        report.vector_cycles += 3 * n * VECTOR_OP_CYCLES

    return x, report


def gmres(
    A: CSRMatrix,
    b: np.ndarray,
    preconditioner=None,
    tol: float = 1e-8,
    restart: int = 30,
    maxiter: int | None = None,
    x0: np.ndarray | None = None,
    cost_model: CostModel | None = None,
) -> tuple[np.ndarray, PCGReport]:
    """Restarted GMRES(m) for general square ``A``.

    The paper's reservoir problems (SPE2, SPE5) are nonsymmetric, so CG
    does not apply; GMRES with the ILU(0) preconditioner is the standard
    pairing.  Right preconditioning is used (the reported residuals are
    true residuals of ``A x = b``); the Arnoldi least-squares problem is
    maintained incrementally with Givens rotations.

    Returns ``(x, report)`` with the same cycle-accounted
    :class:`PCGReport` as :func:`cg` (``iterations`` counts inner Arnoldi
    steps across restarts).
    """
    if A.n_rows != A.n_cols:
        raise MatrixFormatError("gmres needs a square matrix")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (A.n_rows,):
        raise MatrixFormatError(
            f"b must have shape ({A.n_rows},), got {b.shape}"
        )
    if restart < 1:
        raise MatrixFormatError(f"restart must be >= 1, got {restart}")
    cm = cost_model if cost_model is not None else CostModel()
    n = A.n_rows
    if maxiter is None:
        maxiter = 10 * n
    matvec_cost = A.nnz * cm.work.term + n * cm.work.overhead

    report = PCGReport(converged=False, iterations=0)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0

    while report.iterations < maxiter:
        r = b - A.matvec(x)
        report.matvec_cycles += matvec_cost
        report.vector_cycles += n * VECTOR_OP_CYCLES
        beta = float(np.linalg.norm(r))
        if not report.residuals:
            report.residuals.append(beta / b_norm)
        if beta / b_norm <= tol:
            report.converged = True
            return x, report

        m = restart
        V = np.zeros((m + 1, n))
        Z = np.zeros((m, n))  # preconditioned directions (right precond)
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        V[0] = r / beta

        k = 0
        for j in range(m):
            if report.iterations >= maxiter:
                break
            if preconditioner is None:
                z = V[j]
            else:
                z, cycles = preconditioner.apply(V[j])
                report.precond_cycles += cycles
            Z[j] = z
            w = A.matvec(z)
            report.matvec_cycles += matvec_cost
            # Modified Gram-Schmidt.
            for i in range(j + 1):
                H[i, j] = float(w @ V[i])
                w = w - H[i, j] * V[i]
            report.vector_cycles += 2 * (j + 1) * n * VECTOR_OP_CYCLES
            H[j + 1, j] = float(np.linalg.norm(w))
            report.vector_cycles += n * VECTOR_OP_CYCLES
            lucky = H[j + 1, j] <= 1e-14 * max(beta, 1.0)
            if not lucky:
                V[j + 1] = w / H[j + 1, j]
            # Apply accumulated Givens rotations to the new column.
            for i in range(j):
                h_i = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = h_i
            denom = float(np.hypot(H[j, j], H[j + 1, j]))
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j] = H[j, j] / denom
                sn[j] = H[j + 1, j] / denom
            H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]

            report.iterations += 1
            k = j + 1
            report.residuals.append(abs(float(g[j + 1])) / b_norm)
            if report.residuals[-1] <= tol or lucky:
                break

        if k > 0:
            # Back-substitute the k x k triangular system H y = g.
            y = np.zeros(k)
            for i in range(k - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1 : k] @ y[i + 1 :]) / H[i, i]
            x = x + Z[:k].T @ y
            report.vector_cycles += k * n * VECTOR_OP_CYCLES

        if report.residuals[-1] <= tol:
            # Confirm with a true residual (restarted GMRES bookkeeping can
            # drift); loop re-enters and exits at the top check.
            continue

    # maxiter exhausted: final true-residual check.
    r = b - A.matvec(x)
    report.matvec_cycles += matvec_cost
    report.converged = float(np.linalg.norm(r)) / b_norm <= tol
    return x, report
