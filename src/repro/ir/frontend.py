"""Loop front end: build an :class:`IrregularLoop` from loop *source*.

The paper's flow starts "from a given loop" — source code whose subscripts
reference runtime arrays.  :func:`loop_from_source` plays the front end:
it parses a restricted Python-syntax loop nest with :mod:`ast`, validates
its shape, binds the named arrays, and emits the normalized
:class:`~repro.ir.loop.IrregularLoop` the rest of the system consumes.
Affine write subscripts are *detected symbolically* (so the §2.3 linear
variant stays available to parsed loops).

Two templates are accepted (0-based, Python semantics throughout):

**Uniform terms** (the Figure-4 shape)::

    for i in range(N):
        y[a[i]] = y[a[i]]              # optional; default: old value
        for j in range(M):
            y[a[i]] += val[j] * y[b[i] + nbrs[j]]

**CSR terms** (the Figure-7 shape)::

    for i in range(N):
        y[i] = rhs[i]                  # external init
        for k in range(ptr[i], ptr[i + 1]):
            y[i] -= coeff[k] * y[index[k]]

Expression grammar for subscripts/coefficients: integer constants, the
loop variables ``i``/``j``/``k``, 1-D array references ``name[expr]``,
unary minus, and ``+ - *`` combinations.  ``+=`` accumulates;
``-=`` negates the coefficient.  Anything outside the templates raises
:class:`~repro.errors.InvalidLoopError` with a pointed message.
"""

from __future__ import annotations

import ast
import textwrap

import numpy as np

from repro.errors import InvalidLoopError
from repro.ir.accesses import ReadTable
from repro.ir.loop import INIT_EXTERNAL, INIT_OLD_VALUE, IrregularLoop
from repro.ir.subscript import AffineSubscript, IndirectSubscript

__all__ = ["loop_from_source"]


def _fail(msg: str, node: ast.AST | None = None) -> None:
    where = f" (line {node.lineno})" if node is not None and hasattr(node, "lineno") else ""
    raise InvalidLoopError(f"loop source: {msg}{where}")


class _ExprEval(ast.NodeVisitor):
    """Evaluate a restricted expression over vectorized loop variables.

    ``env`` maps loop-variable names to NumPy arrays (broadcastable);
    ``arrays`` maps array names to bound 1-D data.
    """

    def __init__(self, env: dict, arrays: dict):
        self.env = env
        self.arrays = arrays

    def visit(self, node):  # noqa: D102 - dispatch
        method = f"visit_{type(node).__name__}"
        handler = getattr(self, method, None)
        if handler is None:
            _fail(
                f"unsupported expression element {type(node).__name__}", node
            )
        return handler(node)

    def visit_Constant(self, node: ast.Constant):
        if not isinstance(node.value, (int, float)):
            _fail(f"unsupported constant {node.value!r}", node)
        return node.value

    def visit_Name(self, node: ast.Name):
        if node.id in self.env:
            return self.env[node.id]
        _fail(
            f"name {node.id!r} is not a loop variable in scope "
            f"({sorted(self.env)})",
            node,
        )

    def visit_UnaryOp(self, node: ast.UnaryOp):
        if not isinstance(node.op, ast.USub):
            _fail("only unary minus is supported", node)
        return -self.visit(node.operand)

    def visit_BinOp(self, node: ast.BinOp):
        left = self.visit(node.left)
        right = self.visit(node.right)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        _fail(f"unsupported operator {type(node.op).__name__}", node)

    def visit_Subscript(self, node: ast.Subscript):
        if not isinstance(node.value, ast.Name):
            _fail("only simple name[expr] references are supported", node)
        array_name = node.value.id
        if array_name not in self.arrays:
            _fail(
                f"array {array_name!r} is not bound (bound: "
                f"{sorted(self.arrays)})",
                node,
            )
        index = self.visit(node.slice)
        data = np.asarray(self.arrays[array_name])
        if data.ndim != 1:
            _fail(f"array {array_name!r} must be 1-D", node)
        index = np.asarray(index)
        if index.dtype.kind not in "iu":
            index = index.astype(np.int64)
        if index.size and (index.min() < 0 or index.max() >= len(data)):
            _fail(
                f"index into {array_name!r} out of range "
                f"[{int(index.min())}, {int(index.max())}] for length "
                f"{len(data)}",
                node,
            )
        return data[index]


def _range_args(node: ast.expr, what: str) -> list[ast.expr]:
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
        and not node.keywords
        and 1 <= len(node.args) <= 2
    ):
        _fail(f"{what} must iterate over range(...) with 1 or 2 args", node)
    return node.args


def _match_y_ref(node: ast.expr) -> ast.expr:
    """Require ``y[<expr>]`` and return the subscript expression."""
    if not (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "y"
    ):
        _fail("expected a reference to y[...]", node)
    return node.slice


def _detect_affine(write_vec: np.ndarray) -> AffineSubscript | None:
    """Symbolic-in-spirit affine detection: the front end checks whether
    the write vector is exactly ``c·i + d`` and, if so, records the closed
    form (what a compiler would know from the source text)."""
    n = len(write_vec)
    if n == 0:
        return None
    d = int(write_vec[0])
    c = int(write_vec[1] - write_vec[0]) if n > 1 else 1
    candidate = AffineSubscript(c, d)
    if np.array_equal(candidate.materialize(n), write_vec):
        return candidate
    return None


def loop_from_source(
    source: str,
    arrays: dict,
    y0=None,
    y_size: int | None = None,
    name: str = "parsed-loop",
) -> IrregularLoop:
    """Parse restricted loop source into an :class:`IrregularLoop`.

    Parameters
    ----------
    source:
        The loop nest (see module docstring for the accepted templates).
        ``N``/``M`` in the range headers may be integer literals or names
        bound in ``arrays`` to Python ints.
    arrays:
        Name → data bindings: 1-D arrays for subscript/coefficient arrays,
        plain ints for scalar bounds.
    y0, y_size:
        Initial contents / length of ``y`` (defaults: zeros / smallest
        size covering every reference).
    """
    scalars = {
        k: int(v) for k, v in arrays.items() if isinstance(v, (int, np.integer))
    }
    vectors = {
        k: np.asarray(v)
        for k, v in arrays.items()
        if not isinstance(v, (int, np.integer))
    }

    def make_eval(loop_env: dict) -> _ExprEval:
        # Scalar bindings are visible inside expressions alongside the
        # loop variables.
        return _ExprEval({**scalars, **loop_env}, vectors)

    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError as exc:
        raise InvalidLoopError(f"loop source: {exc}") from exc
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.For):
        _fail("expected exactly one top-level 'for i in range(N):' loop")
    outer = tree.body[0]
    if not isinstance(outer.target, ast.Name):
        _fail("outer loop variable must be a simple name", outer)
    ivar = outer.target.id

    def const_bound(node: ast.expr) -> int:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -const_bound(node.operand)
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name) and node.id in scalars:
            return int(scalars[node.id])
        _fail("loop bound must be an integer literal or a bound scalar", node)

    outer_args = _range_args(outer.iter, "the outer loop")
    if len(outer_args) != 1:
        _fail("the outer loop must be range(N)", outer.iter)
    n = const_bound(outer_args[0])
    if n < 0:
        _fail(f"negative iteration count {n}")
    i_vec = np.arange(n, dtype=np.int64)

    body = outer.body
    if not 1 <= len(body) <= 2:
        _fail("outer body must be [optional init assignment,] inner loop")

    # ------------------------------------------------------------------
    # Optional init statement: y[W] = <expr>
    # ------------------------------------------------------------------
    init_kind = INIT_OLD_VALUE
    init_values: np.ndarray | None = None
    init_write_dump: str | None = None
    inner = body[-1]
    if len(body) == 2:
        stmt = body[0]
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            _fail("init statement must be a single assignment", stmt)
        init_write = _match_y_ref(stmt.targets[0])
        init_write_dump = ast.dump(init_write)
        rhs = stmt.value
        if (
            isinstance(rhs, ast.Subscript)
            and isinstance(rhs.value, ast.Name)
            and rhs.value.id == "y"
            and ast.dump(rhs.slice) == init_write_dump
        ):
            init_kind = INIT_OLD_VALUE
        else:
            init_kind = INIT_EXTERNAL
            values = make_eval({ivar: i_vec}).visit(rhs)
            init_values = np.broadcast_to(
                np.asarray(values, dtype=np.float64), (n,)
            ).copy()

    # ------------------------------------------------------------------
    # Inner loop: uniform (range(M)) or CSR (range(lo_expr, hi_expr))
    # ------------------------------------------------------------------
    if not isinstance(inner, ast.For) or not isinstance(
        inner.target, ast.Name
    ):
        _fail("expected an inner 'for' loop over the terms", inner)
    jvar = inner.target.id
    if jvar == ivar:
        _fail("inner loop variable must differ from the outer one", inner)
    inner_args = _range_args(inner.iter, "the inner loop")
    if len(inner.body) != 1 or not isinstance(inner.body[0], ast.AugAssign):
        _fail(
            "inner body must be exactly 'y[...] += coeff * y[...]' "
            "(or -=)",
            inner,
        )
    accum = inner.body[0]
    write_expr = _match_y_ref(accum.target)
    if init_write_dump is not None and ast.dump(write_expr) != init_write_dump:
        _fail(
            "init statement and accumulation write different y elements",
            accum,
        )
    if isinstance(accum.op, ast.Add):
        sign = 1.0
    elif isinstance(accum.op, ast.Sub):
        sign = -1.0
    else:
        _fail("accumulation must be += or -=", accum)
    if not isinstance(accum.value, ast.BinOp) or not isinstance(
        accum.value.op, ast.Mult
    ):
        _fail("accumulation must be 'coeff * y[...]'", accum)
    coeff_expr = accum.value.left
    read_expr = _match_y_ref(accum.value.right)

    # Evaluate write subscript over i.
    write_vec = np.broadcast_to(
        np.asarray(
            make_eval({ivar: i_vec}).visit(write_expr),
            dtype=np.int64,
        ),
        (n,),
    ).copy()

    if len(inner_args) == 1:
        # Uniform template: M terms per iteration.
        m = const_bound(inner_args[0])
        if m < 0:
            _fail(f"negative term count {m}")
        j_vec = np.arange(m, dtype=np.int64)
        evaluator = make_eval({ivar: i_vec[:, None], jvar: j_vec[None, :]})
        index_matrix = np.broadcast_to(
            np.asarray(evaluator.visit(read_expr)), (n, m)
        ).astype(np.int64)
        coeff_matrix = sign * np.broadcast_to(
            np.asarray(evaluator.visit(coeff_expr), dtype=np.float64), (n, m)
        )
        reads = ReadTable.from_uniform(index_matrix, coeff_matrix)
    else:
        # CSR template: k in range(lo[i], hi[i]).
        bounds_eval = make_eval({ivar: i_vec})
        lo = np.broadcast_to(
            np.asarray(bounds_eval.visit(inner_args[0]), dtype=np.int64), (n,)
        )
        hi = np.broadcast_to(
            np.asarray(bounds_eval.visit(inner_args[1]), dtype=np.int64), (n,)
        )
        if np.any(hi < lo):
            _fail("inner range has hi < lo for some iteration")
        counts = hi - lo
        ptr = np.zeros(n + 1, dtype=np.int64)
        ptr[1:] = np.cumsum(counts)
        # Flat k values and their owning iteration.
        k_flat = (
            np.concatenate([np.arange(a, b) for a, b in zip(lo, hi)])
            if n
            else np.empty(0, dtype=np.int64)
        ).astype(np.int64)
        i_of_k = np.repeat(i_vec, counts)
        evaluator = make_eval({ivar: i_of_k, jvar: k_flat})
        total = len(k_flat)
        index = np.broadcast_to(
            np.asarray(evaluator.visit(read_expr)), (total,)
        ).astype(np.int64)
        coeff = sign * np.broadcast_to(
            np.asarray(evaluator.visit(coeff_expr), dtype=np.float64),
            (total,),
        )
        reads = ReadTable(ptr, index.copy(), coeff.copy())

    if y_size is None:
        hi_ref = int(write_vec.max()) if n else -1
        if reads.total_terms:
            hi_ref = max(hi_ref, int(reads.index.max()))
        y_size = hi_ref + 1

    affine = _detect_affine(write_vec)
    subscript = affine if affine is not None else IndirectSubscript(write_vec)
    return IrregularLoop(
        n=n,
        y_size=y_size,
        write_subscript=subscript,
        reads=reads,
        init_kind=init_kind,
        init_values=init_values,
        y0=y0,
        name=name,
    )
