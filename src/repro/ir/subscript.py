"""First-class subscript functions.

A subscript maps a loop index ``i`` to an array index.  The distinction that
drives the whole paper is *what the compiler can know about it*:

- :class:`AffineSubscript` — ``i ↦ c·i + d`` with ``c``, ``d`` known
  symbolically.  The writer of element ``off`` is computable in closed form
  (``(off − d)/c`` when divisible), which is exactly the §2.3 optimization
  that eliminates the inspector and the ``iter`` array.
- :class:`IndirectSubscript` — ``i ↦ a[i]`` for a runtime-filled integer
  array ``a``; nothing is known until the values exist, so run-time
  preprocessing is required.

Both materialize to a NumPy index vector for execution; the affine form
additionally supports the closed-form writer query and a small composition
algebra used by the workload generators.

:class:`ExprSubscript` sits between the two: an arbitrary closed-form
expression over the loop index (built from :class:`Index`, :class:`Const`,
``+``, ``*``, ``%``, ``//``) that the symbolic analysis in
``repro.analysis`` can interpret abstractly even when it is not affine —
e.g. ``(i // 2) * 2`` is provably even, which a congruence domain can use
to separate it from an odd affine write.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLoopError

__all__ = [
    "Subscript",
    "AffineSubscript",
    "IndirectSubscript",
    "ExprSubscript",
    "SymExpr",
    "Index",
    "Const",
    "Add",
    "Mul",
    "Mod",
    "FloorDiv",
]


# ----------------------------------------------------------------------
# Symbolic index expressions
# ----------------------------------------------------------------------
class SymExpr:
    """Closed-form integer expression over the loop index ``i``.

    The AST is deliberately tiny — ``i``, integer constants, ``+``, ``*``,
    ``%`` and ``//`` — because that is exactly the fragment the abstract
    domains in :mod:`repro.analysis.domains` can reason about.  Nodes are
    immutable and hashable so subscripts built from them can participate in
    structural signatures.
    """

    __slots__ = ()

    def evaluate(self, i: np.ndarray) -> np.ndarray:
        """Evaluate over a vector of iteration indices (int64 semantics,
        Python floor-division/modulo conventions)."""
        raise NotImplementedError

    def signature(self) -> tuple:
        """Hashable structural signature (used for cache fingerprints)."""
        raise NotImplementedError

    # Operator sugar so expressions read like the loops they index.
    def __add__(self, other: "SymExpr | int") -> "SymExpr":
        return Add(self, _as_expr(other))

    def __radd__(self, other: int) -> "SymExpr":
        return Add(_as_expr(other), self)

    def __mul__(self, other: "SymExpr | int") -> "SymExpr":
        return Mul(self, _as_expr(other))

    def __rmul__(self, other: int) -> "SymExpr":
        return Mul(_as_expr(other), self)

    def __mod__(self, other: int) -> "SymExpr":
        return Mod(self, int(other))

    def __floordiv__(self, other: int) -> "SymExpr":
        return FloorDiv(self, int(other))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymExpr) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


def _as_expr(value: "SymExpr | int") -> "SymExpr":
    if isinstance(value, SymExpr):
        return value
    return Const(int(value))


class Index(SymExpr):
    """The loop index ``i`` itself."""

    __slots__ = ()

    def evaluate(self, i: np.ndarray) -> np.ndarray:
        return np.asarray(i, dtype=np.int64)

    def signature(self) -> tuple:
        return ("i",)

    def __repr__(self) -> str:
        return "i"


class Const(SymExpr):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        object.__setattr__(self, "value", int(value))

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("SymExpr nodes are immutable")

    def evaluate(self, i: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(i, dtype=np.int64), self.value)

    def signature(self) -> tuple:
        return ("const", self.value)

    def __repr__(self) -> str:
        return str(self.value)


class _Binary(SymExpr):
    __slots__ = ("left", "right")

    _op = "?"

    def __init__(self, left: SymExpr, right: SymExpr):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("SymExpr nodes are immutable")

    def signature(self) -> tuple:
        return (self._op, self.left.signature(), self.right.signature())

    def __repr__(self) -> str:
        return f"({self.left!r} {self._op} {self.right!r})"


class Add(_Binary):
    """``left + right``."""

    __slots__ = ()
    _op = "+"

    def evaluate(self, i: np.ndarray) -> np.ndarray:
        return self.left.evaluate(i) + self.right.evaluate(i)


class Mul(_Binary):
    """``left * right``."""

    __slots__ = ()
    _op = "*"

    def evaluate(self, i: np.ndarray) -> np.ndarray:
        return self.left.evaluate(i) * self.right.evaluate(i)


class _ConstDivisor(SymExpr):
    __slots__ = ("operand", "divisor")

    _op = "?"

    def __init__(self, operand: SymExpr, divisor: int):
        divisor = int(divisor)
        if divisor <= 0:
            raise InvalidLoopError(
                f"{type(self).__name__} requires a positive constant "
                f"divisor, got {divisor}"
            )
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "divisor", divisor)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("SymExpr nodes are immutable")

    def signature(self) -> tuple:
        return (self._op, self.operand.signature(), self.divisor)

    def __repr__(self) -> str:
        return f"({self.operand!r} {self._op} {self.divisor})"


class Mod(_ConstDivisor):
    """``operand % divisor`` with a positive constant divisor."""

    __slots__ = ()
    _op = "%"

    def evaluate(self, i: np.ndarray) -> np.ndarray:
        return self.operand.evaluate(i) % self.divisor


class FloorDiv(_ConstDivisor):
    """``operand // divisor`` with a positive constant divisor."""

    __slots__ = ()
    _op = "//"

    def evaluate(self, i: np.ndarray) -> np.ndarray:
        return self.operand.evaluate(i) // self.divisor


class Subscript:
    """Abstract subscript function over iterations ``0..n-1``."""

    #: True when the closed form is known to the "compiler" (enables the
    #: linear-subscript transformation of paper §2.3).
    statically_known = False

    def materialize(self, n: int) -> np.ndarray:
        """Index vector of length ``n`` (dtype ``int64``)."""
        raise NotImplementedError

    def is_injective(self, n: int) -> bool:
        """Whether no two iterations in ``0..n-1`` map to the same index."""
        values = self.materialize(n)
        return len(np.unique(values)) == n

    def static_signature(self) -> tuple | None:
        """Hashable structural description of the closed form, or ``None``
        when the subscript is runtime data (nothing to describe).  Two
        subscripts with equal signatures compute the same function, so the
        symbolic analysis may share verdicts — and the InspectorCache may
        share records — between them."""
        return None


class AffineSubscript(Subscript):
    """The linear subscript ``i ↦ c·i + d``.

    The paper's Figure-6 experiment uses ``a(i) = 2i`` (1-based); in our
    0-based convention that is ``AffineSubscript(2, 2)`` over ``i = 0..N-1``
    (see DESIGN.md §8).
    """

    statically_known = True

    def __init__(self, c: int, d: int = 0):
        self.c = int(c)
        self.d = int(d)

    def __call__(self, i: int) -> int:
        return self.c * i + self.d

    def materialize(self, n: int) -> np.ndarray:
        return self.c * np.arange(n, dtype=np.int64) + self.d

    def is_injective(self, n: int) -> bool:
        return self.c != 0 or n <= 1

    def writer_of(self, off: int, n: int) -> int:
        """Closed-form inverse: which iteration writes element ``off``.

        Returns the iteration index, or ``-1`` if no iteration in ``0..n-1``
        writes ``off`` — the §2.3 test ``(off − d) mod c == 0``.
        """
        if self.c == 0:
            # Constant subscript: only legal for n <= 1 loops.
            return 0 if (off == self.d and n >= 1) else -1
        q, r = divmod(off - self.d, self.c)
        if r != 0 or not 0 <= q < n:
            return -1
        return int(q)

    def writer_of_many(self, offs: np.ndarray, n: int) -> np.ndarray:
        """Vectorized :meth:`writer_of` (``-1`` where unwritten)."""
        offs = np.asarray(offs, dtype=np.int64)
        if self.c == 0:
            writers = np.where(offs == self.d, 0, -1).astype(np.int64)
            return writers if n >= 1 else np.full_like(offs, -1)
        q, r = np.divmod(offs - self.d, self.c)
        ok = (r == 0) & (q >= 0) & (q < n)
        return np.where(ok, q, -1).astype(np.int64)

    def shifted(self, offset: int) -> "AffineSubscript":
        """``i ↦ c·i + d + offset``."""
        return AffineSubscript(self.c, self.d + offset)

    def composed(self, inner: "AffineSubscript") -> "AffineSubscript":
        """``self ∘ inner``: ``i ↦ c·(c'·i + d') + d``."""
        return AffineSubscript(self.c * inner.c, self.c * inner.d + self.d)

    def static_signature(self) -> tuple:
        return ("affine", self.c, self.d)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AffineSubscript)
            and self.c == other.c
            and self.d == other.d
        )

    def __hash__(self) -> int:
        return hash((AffineSubscript, self.c, self.d))

    def __repr__(self) -> str:
        return f"AffineSubscript({self.c}, {self.d})"


class IndirectSubscript(Subscript):
    """The runtime subscript ``i ↦ a[i]`` (paper Figure 1's ``a``/``b``).

    The defining property: its values are *data*, invisible to compile-time
    dependence analysis — which is why the preprocessed doacross exists.
    """

    statically_known = False

    def __init__(self, values):
        arr = np.ascontiguousarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise InvalidLoopError(
                f"indirect subscript array must be 1-D, got shape {arr.shape}"
            )
        self.values = arr

    def __call__(self, i: int) -> int:
        return int(self.values[i])

    def materialize(self, n: int) -> np.ndarray:
        if n > len(self.values):
            raise InvalidLoopError(
                f"loop has {n} iterations but subscript array has only "
                f"{len(self.values)} entries"
            )
        return self.values[:n]

    def __repr__(self) -> str:
        head = ", ".join(str(v) for v in self.values[:4])
        tail = ", ..." if len(self.values) > 4 else ""
        return f"IndirectSubscript([{head}{tail}] len={len(self.values)})"


class ExprSubscript(Subscript):
    """A closed-form but not-necessarily-affine subscript ``i ↦ e(i)``.

    ``e`` is a :class:`SymExpr`.  The "compiler" knows the expression, so
    the symbolic analysis can derive congruence/interval/monotonicity facts
    for it even when no affine form exists (``(i // 2) * 2``, ``i % 8``,
    …).  Injectivity stays value-level unless the analysis proves it.
    """

    statically_known = True

    def __init__(self, expr: SymExpr):
        if not isinstance(expr, SymExpr):
            raise InvalidLoopError(
                f"ExprSubscript needs a SymExpr, got {type(expr).__name__}"
            )
        self.expr = expr

    def __call__(self, i: int) -> int:
        return int(self.expr.evaluate(np.asarray([i], dtype=np.int64))[0])

    def materialize(self, n: int) -> np.ndarray:
        out = self.expr.evaluate(np.arange(n, dtype=np.int64))
        return np.ascontiguousarray(out, dtype=np.int64)

    def static_signature(self) -> tuple:
        return ("expr", self.expr.signature())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExprSubscript) and self.expr == other.expr

    def __hash__(self) -> int:
        return hash((ExprSubscript, self.expr))

    def __repr__(self) -> str:
        return f"ExprSubscript({self.expr!r})"
