"""First-class subscript functions.

A subscript maps a loop index ``i`` to an array index.  The distinction that
drives the whole paper is *what the compiler can know about it*:

- :class:`AffineSubscript` — ``i ↦ c·i + d`` with ``c``, ``d`` known
  symbolically.  The writer of element ``off`` is computable in closed form
  (``(off − d)/c`` when divisible), which is exactly the §2.3 optimization
  that eliminates the inspector and the ``iter`` array.
- :class:`IndirectSubscript` — ``i ↦ a[i]`` for a runtime-filled integer
  array ``a``; nothing is known until the values exist, so run-time
  preprocessing is required.

Both materialize to a NumPy index vector for execution; the affine form
additionally supports the closed-form writer query and a small composition
algebra used by the workload generators.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLoopError

__all__ = ["Subscript", "AffineSubscript", "IndirectSubscript"]


class Subscript:
    """Abstract subscript function over iterations ``0..n-1``."""

    #: True when the closed form is known to the "compiler" (enables the
    #: linear-subscript transformation of paper §2.3).
    statically_known = False

    def materialize(self, n: int) -> np.ndarray:
        """Index vector of length ``n`` (dtype ``int64``)."""
        raise NotImplementedError

    def is_injective(self, n: int) -> bool:
        """Whether no two iterations in ``0..n-1`` map to the same index."""
        values = self.materialize(n)
        return len(np.unique(values)) == n


class AffineSubscript(Subscript):
    """The linear subscript ``i ↦ c·i + d``.

    The paper's Figure-6 experiment uses ``a(i) = 2i`` (1-based); in our
    0-based convention that is ``AffineSubscript(2, 2)`` over ``i = 0..N-1``
    (see DESIGN.md §8).
    """

    statically_known = True

    def __init__(self, c: int, d: int = 0):
        self.c = int(c)
        self.d = int(d)

    def __call__(self, i: int) -> int:
        return self.c * i + self.d

    def materialize(self, n: int) -> np.ndarray:
        return self.c * np.arange(n, dtype=np.int64) + self.d

    def is_injective(self, n: int) -> bool:
        return self.c != 0 or n <= 1

    def writer_of(self, off: int, n: int) -> int:
        """Closed-form inverse: which iteration writes element ``off``.

        Returns the iteration index, or ``-1`` if no iteration in ``0..n-1``
        writes ``off`` — the §2.3 test ``(off − d) mod c == 0``.
        """
        if self.c == 0:
            # Constant subscript: only legal for n <= 1 loops.
            return 0 if (off == self.d and n >= 1) else -1
        q, r = divmod(off - self.d, self.c)
        if r != 0 or not 0 <= q < n:
            return -1
        return int(q)

    def writer_of_many(self, offs: np.ndarray, n: int) -> np.ndarray:
        """Vectorized :meth:`writer_of` (``-1`` where unwritten)."""
        offs = np.asarray(offs, dtype=np.int64)
        if self.c == 0:
            writers = np.where(offs == self.d, 0, -1).astype(np.int64)
            return writers if n >= 1 else np.full_like(offs, -1)
        q, r = np.divmod(offs - self.d, self.c)
        ok = (r == 0) & (q >= 0) & (q < n)
        return np.where(ok, q, -1).astype(np.int64)

    def shifted(self, offset: int) -> "AffineSubscript":
        """``i ↦ c·i + d + offset``."""
        return AffineSubscript(self.c, self.d + offset)

    def composed(self, inner: "AffineSubscript") -> "AffineSubscript":
        """``self ∘ inner``: ``i ↦ c·(c'·i + d') + d``."""
        return AffineSubscript(self.c * inner.c, self.c * inner.d + self.d)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AffineSubscript)
            and self.c == other.c
            and self.d == other.d
        )

    def __hash__(self) -> int:
        return hash((AffineSubscript, self.c, self.d))

    def __repr__(self) -> str:
        return f"AffineSubscript({self.c}, {self.d})"


class IndirectSubscript(Subscript):
    """The runtime subscript ``i ↦ a[i]`` (paper Figure 1's ``a``/``b``).

    The defining property: its values are *data*, invisible to compile-time
    dependence analysis — which is why the preprocessed doacross exists.
    """

    statically_known = False

    def __init__(self, values):
        arr = np.ascontiguousarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise InvalidLoopError(
                f"indirect subscript array must be 1-D, got shape {arr.shape}"
            )
        self.values = arr

    def __call__(self, i: int) -> int:
        return int(self.values[i])

    def materialize(self, n: int) -> np.ndarray:
        if n > len(self.values):
            raise InvalidLoopError(
                f"loop has {n} iterations but subscript array has only "
                f"{len(self.values)} entries"
            )
        return self.values[:n]

    def __repr__(self) -> str:
        head = ", ".join(str(v) for v in self.values[:4])
        tail = ", ..." if len(self.values) > 4 else ""
        return f"IndirectSubscript([{head}{tail}] len={len(self.values)})"
