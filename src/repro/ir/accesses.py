"""Per-iteration read-term tables.

Each iteration of the normalized loop accumulates a sum of terms
``coeff · y[index]``.  The number of terms may vary per iteration (the
Figure-7 triangular solve reads one term per off-diagonal nonzero of the
row), so the table is stored in CSR style: ``ptr`` (length ``n+1``) delimits
each iteration's slice of the flat ``index`` and ``coeff`` arrays.  All three
arrays are contiguous NumPy arrays, so dependence analysis over them
vectorizes (per the hpc-parallel guides: keep the set-up work in array ops,
reserve Python loops for the irreducible executor core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import InvalidLoopError

__all__ = ["ReadTable", "ReadSlot", "read_table_from_slots"]


@dataclass(frozen=True)
class ReadSlot:
    """Symbolic description of one read term: iteration ``i`` (for
    ``start <= i < stop``) reads ``y[subscript(i)]``.

    A loop may declare a list of slots alongside its materialized
    :class:`ReadTable`; the contract is that iteration ``i``'s terms are
    exactly its active slots in increasing slot order.  The symbolic
    analysis (``repro.analysis``) consumes the declarations; the
    SYMBOLIC-MISMATCH lint rule checks them against the materialized
    arrays.
    """

    subscript: "object"  # repro.ir.subscript.Subscript (avoid import cycle)
    start: int = 0
    stop: Optional[int] = None

    def active_range(self, n: int) -> tuple[int, int]:
        """Clamped ``[start, stop)`` over a loop of ``n`` iterations."""
        lo = max(0, int(self.start))
        hi = n if self.stop is None else min(n, int(self.stop))
        return lo, max(lo, hi)

    def is_active(self, i: int, n: int) -> bool:
        lo, hi = self.active_range(n)
        return lo <= i < hi


def read_table_from_slots(
    slots: Sequence[ReadSlot],
    coeffs: Sequence[float],
    n: int,
) -> ReadTable:
    """Materialize a :class:`ReadTable` from slot declarations.

    Produces the canonical layout (iteration-major, slots in increasing
    order within each iteration), so a table built this way satisfies the
    slot contract by construction.  ``coeffs`` gives one constant
    coefficient per slot.
    """
    if len(coeffs) != len(slots):
        raise InvalidLoopError(
            f"{len(slots)} slots but {len(coeffs)} coefficients"
        )
    ranges = [slot.active_range(n) for slot in slots]
    counts = np.zeros(n, dtype=np.int64)
    for lo, hi in ranges:
        counts[lo:hi] += 1
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    iters = np.concatenate(
        [np.arange(lo, hi, dtype=np.int64) for lo, hi in ranges]
    ) if slots else np.empty(0, dtype=np.int64)
    slot_ids = np.concatenate(
        [np.full(hi - lo, j, dtype=np.int64) for j, (lo, hi) in enumerate(ranges)]
    ) if slots else np.empty(0, dtype=np.int64)
    order = np.lexsort((slot_ids, iters))
    index = np.empty(len(iters), dtype=np.int64)
    coeff = np.empty(len(iters), dtype=np.float64)
    for j, (slot, (lo, hi)) in enumerate(zip(slots, ranges)):
        if hi > lo:
            mask = slot_ids[order] == j
            index[mask] = slot.subscript.materialize(hi)[lo:hi]
            coeff[mask] = float(coeffs[j])
    return ReadTable(ptr, index, coeff)


class ReadTable:
    """CSR-style table of read terms: iteration ``i`` reads
    ``index[ptr[i]:ptr[i+1]]`` with coefficients ``coeff[ptr[i]:ptr[i+1]]``.
    """

    __slots__ = ("ptr", "index", "coeff")

    def __init__(self, ptr, index, coeff):
        self.ptr = np.ascontiguousarray(ptr, dtype=np.int64)
        self.index = np.ascontiguousarray(index, dtype=np.int64)
        self.coeff = np.ascontiguousarray(coeff, dtype=np.float64)
        self._validate()

    def _validate(self) -> None:
        if self.ptr.ndim != 1 or self.index.ndim != 1 or self.coeff.ndim != 1:
            raise InvalidLoopError("read table arrays must be 1-D")
        if len(self.ptr) == 0:
            raise InvalidLoopError("read table ptr must have length n+1 >= 1")
        if self.ptr[0] != 0:
            raise InvalidLoopError(f"read table ptr[0] must be 0, got {self.ptr[0]}")
        if len(self.index) != len(self.coeff):
            raise InvalidLoopError(
                f"index ({len(self.index)}) and coeff ({len(self.coeff)}) "
                f"lengths differ"
            )
        if self.ptr[-1] != len(self.index):
            raise InvalidLoopError(
                f"ptr[-1]={self.ptr[-1]} does not match term count "
                f"{len(self.index)}"
            )
        if len(self.ptr) > 1 and np.any(np.diff(self.ptr) < 0):
            raise InvalidLoopError("read table ptr must be non-decreasing")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_lists(
        cls,
        per_iteration: Iterable[Sequence[tuple[int, float]]],
    ) -> "ReadTable":
        """Build from ``[[(index, coeff), ...], ...]`` (one list per
        iteration).  Convenient for tests and small examples."""
        ptr = [0]
        idx: list[int] = []
        coeff: list[float] = []
        for terms in per_iteration:
            for j, c in terms:
                idx.append(j)
                coeff.append(c)
            ptr.append(len(idx))
        return cls(
            np.asarray(ptr, dtype=np.int64),
            np.asarray(idx, dtype=np.int64),
            np.asarray(coeff, dtype=np.float64),
        )

    @classmethod
    def from_uniform(cls, index_matrix, coeff_matrix) -> "ReadTable":
        """Build from dense ``(n, m)`` matrices: iteration ``i`` reads
        ``index_matrix[i, :]`` with ``coeff_matrix[i, :]``.  This is the
        Figure-4 shape — exactly ``M`` terms per iteration."""
        index_matrix = np.asarray(index_matrix, dtype=np.int64)
        coeff_matrix = np.asarray(coeff_matrix, dtype=np.float64)
        if index_matrix.shape != coeff_matrix.shape or index_matrix.ndim != 2:
            raise InvalidLoopError(
                f"uniform read table needs matching 2-D matrices, got "
                f"{index_matrix.shape} and {coeff_matrix.shape}"
            )
        n, m = index_matrix.shape
        ptr = m * np.arange(n + 1, dtype=np.int64)
        return cls(ptr, index_matrix.reshape(-1), coeff_matrix.reshape(-1))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of iterations."""
        return len(self.ptr) - 1

    @property
    def total_terms(self) -> int:
        return len(self.index)

    def terms_of(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, coeffs)`` views for iteration ``i``."""
        lo, hi = self.ptr[i], self.ptr[i + 1]
        return self.index[lo:hi], self.coeff[lo:hi]

    def term_count(self, i: int) -> int:
        return int(self.ptr[i + 1] - self.ptr[i])

    def term_counts(self) -> np.ndarray:
        """Vector of per-iteration term counts."""
        return np.diff(self.ptr)

    def iteration_of_term(self) -> np.ndarray:
        """For each flat term, the iteration it belongs to (vectorized
        inverse of ``ptr``, used by the dependence analysis)."""
        return np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.ptr)
        )

    def check_bounds(self, y_size: int) -> None:
        """Raise if any read index falls outside ``[0, y_size)``."""
        if len(self.index) == 0:
            return
        lo = int(self.index.min())
        hi = int(self.index.max())
        if lo < 0 or hi >= y_size:
            raise InvalidLoopError(
                f"read index out of range: min={lo}, max={hi}, "
                f"y_size={y_size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadTable(n={self.n}, terms={self.total_terms})"
