"""Per-iteration read-term tables.

Each iteration of the normalized loop accumulates a sum of terms
``coeff · y[index]``.  The number of terms may vary per iteration (the
Figure-7 triangular solve reads one term per off-diagonal nonzero of the
row), so the table is stored in CSR style: ``ptr`` (length ``n+1``) delimits
each iteration's slice of the flat ``index`` and ``coeff`` arrays.  All three
arrays are contiguous NumPy arrays, so dependence analysis over them
vectorizes (per the hpc-parallel guides: keep the set-up work in array ops,
reserve Python loops for the irreducible executor core).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidLoopError

__all__ = ["ReadTable"]


class ReadTable:
    """CSR-style table of read terms: iteration ``i`` reads
    ``index[ptr[i]:ptr[i+1]]`` with coefficients ``coeff[ptr[i]:ptr[i+1]]``.
    """

    __slots__ = ("ptr", "index", "coeff")

    def __init__(self, ptr, index, coeff):
        self.ptr = np.ascontiguousarray(ptr, dtype=np.int64)
        self.index = np.ascontiguousarray(index, dtype=np.int64)
        self.coeff = np.ascontiguousarray(coeff, dtype=np.float64)
        self._validate()

    def _validate(self) -> None:
        if self.ptr.ndim != 1 or self.index.ndim != 1 or self.coeff.ndim != 1:
            raise InvalidLoopError("read table arrays must be 1-D")
        if len(self.ptr) == 0:
            raise InvalidLoopError("read table ptr must have length n+1 >= 1")
        if self.ptr[0] != 0:
            raise InvalidLoopError(f"read table ptr[0] must be 0, got {self.ptr[0]}")
        if len(self.index) != len(self.coeff):
            raise InvalidLoopError(
                f"index ({len(self.index)}) and coeff ({len(self.coeff)}) "
                f"lengths differ"
            )
        if self.ptr[-1] != len(self.index):
            raise InvalidLoopError(
                f"ptr[-1]={self.ptr[-1]} does not match term count "
                f"{len(self.index)}"
            )
        if len(self.ptr) > 1 and np.any(np.diff(self.ptr) < 0):
            raise InvalidLoopError("read table ptr must be non-decreasing")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_lists(
        cls,
        per_iteration: Iterable[Sequence[tuple[int, float]]],
    ) -> "ReadTable":
        """Build from ``[[(index, coeff), ...], ...]`` (one list per
        iteration).  Convenient for tests and small examples."""
        ptr = [0]
        idx: list[int] = []
        coeff: list[float] = []
        for terms in per_iteration:
            for j, c in terms:
                idx.append(j)
                coeff.append(c)
            ptr.append(len(idx))
        return cls(
            np.asarray(ptr, dtype=np.int64),
            np.asarray(idx, dtype=np.int64),
            np.asarray(coeff, dtype=np.float64),
        )

    @classmethod
    def from_uniform(cls, index_matrix, coeff_matrix) -> "ReadTable":
        """Build from dense ``(n, m)`` matrices: iteration ``i`` reads
        ``index_matrix[i, :]`` with ``coeff_matrix[i, :]``.  This is the
        Figure-4 shape — exactly ``M`` terms per iteration."""
        index_matrix = np.asarray(index_matrix, dtype=np.int64)
        coeff_matrix = np.asarray(coeff_matrix, dtype=np.float64)
        if index_matrix.shape != coeff_matrix.shape or index_matrix.ndim != 2:
            raise InvalidLoopError(
                f"uniform read table needs matching 2-D matrices, got "
                f"{index_matrix.shape} and {coeff_matrix.shape}"
            )
        n, m = index_matrix.shape
        ptr = m * np.arange(n + 1, dtype=np.int64)
        return cls(ptr, index_matrix.reshape(-1), coeff_matrix.reshape(-1))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of iterations."""
        return len(self.ptr) - 1

    @property
    def total_terms(self) -> int:
        return len(self.index)

    def terms_of(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, coeffs)`` views for iteration ``i``."""
        lo, hi = self.ptr[i], self.ptr[i + 1]
        return self.index[lo:hi], self.coeff[lo:hi]

    def term_count(self, i: int) -> int:
        return int(self.ptr[i + 1] - self.ptr[i])

    def term_counts(self) -> np.ndarray:
        """Vector of per-iteration term counts."""
        return np.diff(self.ptr)

    def iteration_of_term(self) -> np.ndarray:
        """For each flat term, the iteration it belongs to (vectorized
        inverse of ``ptr``, used by the dependence analysis)."""
        return np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.ptr)
        )

    def check_bounds(self, y_size: int) -> None:
        """Raise if any read index falls outside ``[0, y_size)``."""
        if len(self.index) == 0:
            return
        lo = int(self.index.min())
        hi = int(self.index.max())
        if lo < 0 or hi >= y_size:
            raise InvalidLoopError(
                f"read index out of range: min={lo}, max={hi}, "
                f"y_size={y_size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadTable(n={self.n}, terms={self.total_terms})"
