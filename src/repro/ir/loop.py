"""The normalized irregular loop form.

Both loops the paper evaluates fit one shape::

    do i = 0, n-1
        acc = <init_i>                      # y[w(i)] or an external value
        do each read term (idx, coeff) of i
            acc = acc + coeff * y[idx]      # y read "live": latest value
        end do
        y[w(i)] = acc
    end do

- Figure 4 (test loop): ``w(i) = a(i)``, init is the *old* ``y[a(i)]``,
  ``M`` terms per iteration reading ``y[b(i) + nbrs(j)]`` with coefficient
  ``val(j)``.
- Figure 7 (sparse triangular solve): ``w(i) = i``, init is ``rhs(i)``,
  the terms read ``y[column(j)]`` with coefficient ``-a(j)``.

Reads are *live*: a term whose index equals an element written by an earlier
iteration sees the updated value (true dependence), and a term whose index
equals the element this very iteration writes sees the partially accumulated
value (the paper's ``check == 0`` case, Figure 5 statement S8).

:meth:`IrregularLoop.run_sequential` is the semantic oracle every parallel
strategy is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLoopError, OutputDependenceError
from repro.ir.accesses import ReadTable
from repro.ir.subscript import IndirectSubscript, Subscript

__all__ = ["IrregularLoop", "INIT_OLD_VALUE", "INIT_EXTERNAL"]

#: Initialize each iteration's accumulator from the old ``y[w(i)]``
#: (Figure 4 / Figure 5's ``ynew(a(i)) = y(a(i))``).
INIT_OLD_VALUE = "old_value"
#: Initialize from an external per-iteration value (Figure 7's ``rhs(i)``).
INIT_EXTERNAL = "external"


class IrregularLoop:
    """A loop with run-time-determined dependencies, in normalized form.

    Parameters
    ----------
    n:
        Number of iterations.
    y_size:
        Length of the shared array ``y``.
    write_subscript:
        The left-hand-side subscript ``w``; must be injective over
        ``0..n-1`` (the paper's "no output dependencies" assumption).
    reads:
        The per-iteration read-term table.
    init_kind:
        :data:`INIT_OLD_VALUE` or :data:`INIT_EXTERNAL`.
    init_values:
        Length-``n`` vector of external initial values (required iff
        ``init_kind == INIT_EXTERNAL``).
    y0:
        Initial contents of ``y`` (defaults to zeros).
    name:
        Label used in reports.
    work:
        Optional per-iteration :class:`~repro.machine.costs.WorkProfile` of
        the *source* loop (sequential overhead, per-term setup/consume).
        ``None`` means "use the cost model's default profile".
    read_slots:
        Optional sequence of :class:`~repro.ir.accesses.ReadSlot` declaring
        the read terms symbolically: iteration ``i``'s terms must be its
        active slots in increasing slot order.  Consumed by the symbolic
        dependence analysis (``repro.analysis``); checked against the
        materialized table by the SYMBOLIC-MISMATCH lint rule.
    """

    def __init__(
        self,
        n: int,
        y_size: int,
        write_subscript: Subscript,
        reads: ReadTable,
        init_kind: str = INIT_OLD_VALUE,
        init_values=None,
        y0=None,
        name: str = "loop",
        work=None,
        read_slots=None,
    ):
        if n < 0:
            raise InvalidLoopError(f"iteration count must be >= 0, got {n}")
        if y_size < 0:
            raise InvalidLoopError(f"y_size must be >= 0, got {y_size}")
        if reads.n != n:
            raise InvalidLoopError(
                f"read table covers {reads.n} iterations, loop has {n}"
            )
        if init_kind not in (INIT_OLD_VALUE, INIT_EXTERNAL):
            raise InvalidLoopError(f"unknown init_kind {init_kind!r}")

        self.n = n
        self.y_size = y_size
        self.write_subscript = write_subscript
        self.reads = reads
        self.init_kind = init_kind
        self.name = name
        self.work = work
        self.read_slots = tuple(read_slots) if read_slots is not None else None

        self.write = write_subscript.materialize(n)
        if len(self.write) != n:
            raise InvalidLoopError(
                f"write subscript materialized to {len(self.write)} entries "
                f"for {n} iterations"
            )
        if n > 0:
            lo, hi = int(self.write.min()), int(self.write.max())
            if lo < 0 or hi >= y_size:
                raise InvalidLoopError(
                    f"write index out of range: min={lo}, max={hi}, "
                    f"y_size={y_size}"
                )
        reads.check_bounds(y_size)

        self.init_values: np.ndarray | None
        if init_kind == INIT_EXTERNAL:
            if init_values is None:
                raise InvalidLoopError(
                    "init_kind=external requires init_values"
                )
            self.init_values = np.ascontiguousarray(
                init_values, dtype=np.float64
            )
            if len(self.init_values) != n:
                raise InvalidLoopError(
                    f"init_values has {len(self.init_values)} entries for "
                    f"{n} iterations"
                )
        else:
            if init_values is not None:
                raise InvalidLoopError(
                    "init_values only allowed with init_kind=external"
                )
            self.init_values = None

        if y0 is None:
            self.y0 = np.zeros(y_size, dtype=np.float64)
        else:
            self.y0 = np.ascontiguousarray(y0, dtype=np.float64)
            if len(self.y0) != y_size:
                raise InvalidLoopError(
                    f"y0 has {len(self.y0)} entries, y_size={y_size}"
                )

        self._check_output_dependencies()

    # ------------------------------------------------------------------
    def _check_output_dependencies(self) -> None:
        """Enforce the paper's no-output-dependence assumption: the write
        subscript must be injective over the iteration range."""
        if self.n <= 1:
            return
        order = np.argsort(self.write, kind="stable")
        sorted_w = self.write[order]
        dup = np.nonzero(sorted_w[1:] == sorted_w[:-1])[0]
        if len(dup):
            k = int(dup[0])
            raise OutputDependenceError(
                index=int(sorted_w[k]),
                first_writer=int(order[k]),
                second_writer=int(order[k + 1]),
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        write,
        reads: ReadTable,
        y_size: int | None = None,
        **kwargs,
    ) -> "IrregularLoop":
        """Build from a raw write-index vector (wrapped as an
        :class:`IndirectSubscript`)."""
        write = np.asarray(write, dtype=np.int64)
        n = len(write)
        if y_size is None:
            hi = int(write.max()) if n else -1
            if len(reads.index):
                hi = max(hi, int(reads.index.max()))
            y_size = hi + 1
        return cls(
            n=n,
            y_size=y_size,
            write_subscript=IndirectSubscript(write),
            reads=reads,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def initial_accumulator(self, i: int, y: np.ndarray) -> float:
        """The value the accumulator of iteration ``i`` starts from."""
        if self.init_kind == INIT_OLD_VALUE or self.init_values is None:
            return float(y[self.write[i]])
        return float(self.init_values[i])

    def run_sequential(self) -> np.ndarray:
        """Execute the loop sequentially; the semantic oracle.

        Returns the final ``y`` array.  Reads are live: within an iteration
        a read of the element being written sees the partial accumulator.
        """
        y = self.y0.copy()
        write = self.write
        ptr, index, coeff = self.reads.ptr, self.reads.index, self.reads.coeff
        external = self.init_kind == INIT_EXTERNAL
        init_values = self.init_values
        if init_values is None:
            external = False
            init_values = y  # unused placeholder; keeps the loop branch-free
        for i in range(self.n):
            w = write[i]
            acc = init_values[i] if external else y[w]
            for k in range(ptr[i], ptr[i + 1]):
                idx = index[k]
                value = acc if idx == w else y[idx]
                acc += coeff[k] * value
            y[w] = acc
        return y

    def statically_analyzable_write(self) -> bool:
        """Whether the "compiler" knows the write subscript in closed form
        (enables the §2.3 linear-subscript transformation)."""
        return self.write_subscript.statically_known

    def describe(self) -> str:
        """Human-readable profile of the loop: shape, init kind, write
        subscript class, and the dependence summary (term classification,
        distances, wavefront-relevant counts).  A debugging convenience —
        the value-level analysis this prints is exactly what the runtime
        will discover."""
        from repro.ir.analysis import summarize_dependences

        s = summarize_dependences(self)
        sub = type(self.write_subscript).__name__
        lines = [
            f"{self.name}: n={self.n}, y_size={self.y_size}, "
            f"terms={self.reads.total_terms}, init={self.init_kind}, "
            f"write={sub}",
            f"  reads: true={s.true_terms} intra={s.intra_terms} "
            f"anti={s.anti_terms} unwritten={s.unwritten_terms}",
            f"  true edges: {s.unique_true_edges} "
            f"(distances {s.min_distance}..{s.max_distance}); "
            f"{s.dependence_fraction:.0%} of iterations ordered",
        ]
        return "\n".join(lines)

    def with_name(self, name: str) -> "IrregularLoop":
        """Shallow relabeled copy (shares all arrays)."""
        clone = object.__new__(IrregularLoop)
        clone.__dict__.update(self.__dict__)
        clone.name = name
        return clone

    def __repr__(self) -> str:
        return (
            f"IrregularLoop({self.name!r}, n={self.n}, y_size={self.y_size}, "
            f"terms={self.reads.total_terms}, init={self.init_kind})"
        )
