"""Loop intermediate representation and runtime "compiler".

The paper's method is a source-to-source transformation: from a loop whose
array subscripts are only known at run time, derive an *inspector* (parallel
preprocessing), an *executor* (the transformed loop), and a *postprocessor*
(parallel reset).  This subpackage plays the compiler's role:

- :mod:`repro.ir.subscript` — first-class subscript functions (affine and
  indirect) with the algebra needed for the linear-subscript optimization of
  paper §2.3.
- :mod:`repro.ir.accesses` — NumPy-backed per-iteration read-term tables.
- :mod:`repro.ir.loop` — :class:`IrregularLoop`, the normalized loop form
  covering both the Figure-4 test loop and the Figure-7 triangular solve.
- :mod:`repro.ir.analysis` — dependence analysis: output-dependence
  validation, doall detection, uniform-distance detection, true-dependence
  classification.
- :mod:`repro.ir.transform` — strategy selection (:class:`TransformPlan`):
  doall / classic doacross / linear-subscript doacross / full preprocessed
  doacross.
- :mod:`repro.ir.codegen` — render the transformation as Figure-3/Figure-5
  style pseudo-Fortran source.
- :mod:`repro.ir.frontend` — parse restricted Python-syntax loop source
  (with runtime array bindings) into an :class:`IrregularLoop`.
"""

from repro.ir.accesses import ReadTable
from repro.ir.codegen import generate_original_source, generate_source
from repro.ir.frontend import loop_from_source
from repro.ir.analysis import (
    DependenceSummary,
    classify_reads,
    dependence_pairs,
    is_doall,
    summarize_dependences,
    uniform_distance,
    writer_map,
)
from repro.ir.loop import INIT_EXTERNAL, INIT_OLD_VALUE, IrregularLoop
from repro.ir.subscript import AffineSubscript, IndirectSubscript, Subscript
from repro.ir.transform import (
    STRATEGY_CLASSIC_DOACROSS,
    STRATEGY_DOALL,
    STRATEGY_LINEAR,
    STRATEGY_PREPROCESSED,
    TransformPlan,
    plan_transform,
)

__all__ = [
    "Subscript",
    "AffineSubscript",
    "IndirectSubscript",
    "ReadTable",
    "IrregularLoop",
    "INIT_OLD_VALUE",
    "INIT_EXTERNAL",
    "writer_map",
    "classify_reads",
    "dependence_pairs",
    "is_doall",
    "uniform_distance",
    "summarize_dependences",
    "DependenceSummary",
    "TransformPlan",
    "plan_transform",
    "generate_source",
    "generate_original_source",
    "loop_from_source",
    "STRATEGY_DOALL",
    "STRATEGY_CLASSIC_DOACROSS",
    "STRATEGY_LINEAR",
    "STRATEGY_PREPROCESSED",
]
