"""Strategy selection: the "symbolic transformation" step.

The paper (§1) produces inspector and executor procedures by symbolic
transformation at compile time.  This module plays that role: given an
:class:`~repro.ir.loop.IrregularLoop` and the *static* knowledge embedded in
its subscript objects, produce a :class:`TransformPlan` naming the cheapest
sound strategy:

1. ``doall`` — only when the caller *asserts* independence (the compiler
   cannot prove it for runtime subscripts; the assertion models user
   directives) or when a degenerate loop (no reads) makes it trivially true.
2. ``classic`` — when the caller supplies an a-priori uniform dependence
   distance (the classic doacross's prerequisite).
3. ``linear`` — when the write subscript is statically affine: the §2.3
   optimization removes the inspector and the ``iter`` array entirely.
4. ``preprocessed`` — the general case: full inspector / executor /
   postprocessor pipeline.

Note the deliberate asymmetry with :mod:`repro.ir.analysis`: analysis looks
at subscript *values* (available only at run time, used by doconsider and by
tests); planning looks only at subscript *structure* (what a compiler sees).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.loop import IrregularLoop
from repro.ir.subscript import AffineSubscript

__all__ = [
    "STRATEGY_DOALL",
    "STRATEGY_CLASSIC_DOACROSS",
    "STRATEGY_LINEAR",
    "STRATEGY_PREPROCESSED",
    "TransformPlan",
    "plan_transform",
    "structural_signature",
]

STRATEGY_DOALL = "doall"
STRATEGY_CLASSIC_DOACROSS = "classic"
STRATEGY_LINEAR = "linear"
STRATEGY_PREPROCESSED = "preprocessed"


@dataclass(frozen=True)
class TransformPlan:
    """The compiler's decision for one loop.

    Attributes
    ----------
    strategy:
        One of the ``STRATEGY_*`` constants.
    needs_inspector:
        Whether a run-time preprocessing phase must build ``iter``.
    needs_postprocess:
        Whether a run-time reset/copy-back phase is required (any strategy
        that renames writes into ``ynew`` needs it).
    uniform_distance:
        The a-priori dependence distance (classic strategy only).
    reason:
        Human-readable justification, surfaced in reports.
    """

    strategy: str
    needs_inspector: bool
    needs_postprocess: bool
    uniform_distance: int | None = None
    reason: str = ""

    def describe(self) -> str:
        phases = []
        if self.needs_inspector:
            phases.append("inspector")
        phases.append("executor")
        if self.needs_postprocess:
            phases.append("postprocessor")
        return f"{self.strategy} ({' + '.join(phases)}): {self.reason}"


def structural_signature(loop: IrregularLoop) -> tuple:
    """The *static* identity of a loop: everything :func:`plan_transform`
    (and therefore a cached :class:`TransformPlan`) depends on, minus the
    runtime array contents.

    Two loops with equal signatures and equal ``write``/read-index arrays
    have identical dependence structure — the same inspector output, the
    same wavefront decomposition, the same plan — regardless of their
    coefficients or values.  This is the non-content half of the
    :class:`~repro.backends.cache.InspectorCache` fingerprint.

    When the loop carries symbolic read slots, the signature additionally
    records each slot's closed form and the symbolic dependence verdict
    (:func:`repro.analysis.analyze_loop`) — so two loops with identical
    proofs share a signature prefix, and a fully proven loop is
    identified by structure alone (no array contents needed; see
    :func:`repro.analysis.symbolic_fingerprint`).
    """
    sub = loop.write_subscript
    sub_sig: tuple = (type(sub).__name__,)
    static = sub.static_signature()
    if static is not None:
        sub_sig = sub_sig + static
    base = (
        int(loop.n),
        int(loop.y_size),
        str(loop.init_kind),
        sub_sig,
    )
    if loop.read_slots is not None:
        slot_sig = tuple(
            (slot.subscript.static_signature(), slot.active_range(loop.n))
            for slot in loop.read_slots
        )
        if all(sig is not None for sig, _ in slot_sig):
            from repro.analysis.engine import analyze_loop

            verdict = analyze_loop(loop)
            return base + (
                ("slots",) + slot_sig,
                ("verdict",) + verdict.signature(),
            )
    return base


def plan_transform(
    loop: IrregularLoop,
    assert_independent: bool = False,
    known_distance: int | None = None,
    verdict=None,
) -> TransformPlan:
    """Select the transformation strategy for ``loop``.

    Parameters
    ----------
    assert_independent:
        Caller-supplied guarantee that no cross-iteration true dependence
        exists (models a user doall directive).  **Unchecked by design** —
        the point of the paper is that the compiler cannot check it; the
        doall runner re-validates at run time in debug mode.
    known_distance:
        Caller-supplied uniform dependence distance for the classic
        doacross baseline.
    verdict:
        Optional :class:`~repro.analysis.verdicts.DependenceVerdict`.
        Unlike ``assert_independent``, a verdict is *proven*: a
        DOALL-proven loop without antidependencies upgrades to the doall
        strategy, a constant-distance one to the classic doacross —
        without any caller assertion.
    """
    if assert_independent and known_distance is not None:
        raise ValueError(
            "assert_independent and known_distance are mutually exclusive"
        )

    if (
        verdict is not None
        and verdict.fully_classified
        and not assert_independent
        and known_distance is None
        and not verdict.has_anti()
    ):
        # Proof-backed upgrades.  Antidependence-carrying loops stay on
        # the renaming strategies: doall/classic write in place, which is
        # only sound when no later iteration re-reads an overwritten
        # element.
        from repro.analysis.verdicts import (
            VERDICT_CONSTANT_DISTANCE,
            VERDICT_DOALL,
        )

        if verdict.kind == VERDICT_DOALL:
            return TransformPlan(
                strategy=STRATEGY_DOALL,
                needs_inspector=False,
                needs_postprocess=False,
                reason=(
                    "proven statically: no slot carries a true "
                    "dependence for any input (symbolic verdict "
                    "doall-proven)"
                ),
            )
        if verdict.kind == VERDICT_CONSTANT_DISTANCE:
            return TransformPlan(
                strategy=STRATEGY_CLASSIC_DOACROSS,
                needs_inspector=False,
                needs_postprocess=False,
                uniform_distance=verdict.distance,
                reason=(
                    f"proven statically: every true dependence has "
                    f"constant distance {verdict.distance} (symbolic "
                    f"verdict constant-distance)"
                ),
            )

    if loop.reads.total_terms == 0 or assert_independent:
        reason = (
            "loop has no read terms"
            if loop.reads.total_terms == 0
            else "caller asserts iteration independence"
        )
        return TransformPlan(
            strategy=STRATEGY_DOALL,
            needs_inspector=False,
            # A doall still renames writes when init reads old y values could
            # alias later writes; with independence asserted, writes can go
            # straight to y, so no copy-back either.
            needs_postprocess=False,
            reason=reason,
        )

    if known_distance is not None:
        if known_distance < 1:
            raise ValueError(
                f"classic doacross distance must be >= 1, got {known_distance}"
            )
        return TransformPlan(
            strategy=STRATEGY_CLASSIC_DOACROSS,
            needs_inspector=False,
            needs_postprocess=False,
            uniform_distance=known_distance,
            reason=f"caller supplies a-priori dependence distance {known_distance}",
        )

    if isinstance(loop.write_subscript, AffineSubscript):
        sub = loop.write_subscript
        return TransformPlan(
            strategy=STRATEGY_LINEAR,
            needs_inspector=False,
            needs_postprocess=True,
            reason=(
                f"write subscript is affine (c={sub.c}, d={sub.d}); writer of "
                f"off is (off-d)/c when (off-d) mod c == 0, so no iter array "
                f"is needed (paper §2.3)"
            ),
        )

    return TransformPlan(
        strategy=STRATEGY_PREPROCESSED,
        needs_inspector=True,
        needs_postprocess=True,
        reason=(
            "write subscript is runtime data; full preprocessed doacross "
            "(inspector builds iter, postprocessor resets it)"
        ),
    )
