"""Source generation: render the transformation the way the paper shows it.

Section 1: "We use symbolic transformations to produce from a given loop:
(1) inspector procedures that perform execution time preprocessing, and (2)
executors or transformed versions of source code loop structures."  The
runtime in this repository *executes* those procedures; this module renders
them as Figure-3/Figure-5-style pseudo-Fortran text, so the transformation
itself is inspectable — what a source-to-source compiler would emit for a
given :class:`~repro.ir.loop.IrregularLoop` under a given
:class:`~repro.ir.transform.TransformPlan`.

The output is deterministic text (tested against golden fragments), 1-based
like the paper, with the loop's structural names substituted.
"""

from __future__ import annotations

from repro.ir.loop import INIT_EXTERNAL, IrregularLoop
from repro.ir.subscript import AffineSubscript
from repro.ir.transform import (
    STRATEGY_CLASSIC_DOACROSS,
    STRATEGY_DOALL,
    STRATEGY_LINEAR,
    STRATEGY_PREPROCESSED,
    TransformPlan,
    plan_transform,
)

__all__ = ["generate_source", "generate_original_source"]


def _write_ref(loop: IrregularLoop) -> str:
    """The left-hand-side subscript expression, paper-style."""
    sub = loop.write_subscript
    if isinstance(sub, AffineSubscript):
        c, d = sub.c, sub.d
        if c == 1 and d == 0:
            return "i"
        term = "i" if c == 1 else f"{c}*i"
        if d == 0:
            return term
        return f"{term} {'+' if d >= 0 else '-'} {abs(d)}"
    return "a(i)"


def _init_expr(loop: IrregularLoop, target: str) -> str:
    if loop.init_kind == INIT_EXTERNAL:
        return f"{target} = rhs(i)"
    return f"{target} = y({_write_ref(loop)})"


def generate_original_source(loop: IrregularLoop) -> str:
    """The *untransformed* loop, Figure-1/4/7 style."""
    w = _write_ref(loop)
    lines = [
        f"! {loop.name}: original sequential loop",
        f"do i = 1, {loop.n}",
        f"   {_init_expr(loop, f'y({w})')}",
        "   do k = low(i), high(i)",
        f"      y({w}) = y({w}) + coeff(k) * y(index(k))",
        "   end do",
        "end do",
    ]
    return "\n".join(lines)


def _inspector_source(loop: IrregularLoop) -> str:
    w = _write_ref(loop)
    return "\n".join(
        [
            "! inspector: execution-time preprocessing (Figure 3, left)",
            f"parallel do i = 1, {loop.n}",
            f"   iter({w}) = i",
            "end parallel do",
        ]
    )


def _postprocessor_source(loop: IrregularLoop, reset_iter: bool) -> str:
    w = _write_ref(loop)
    lines = [
        "! postprocessor: restore scratch arrays for reuse (Figure 3, right)",
        f"parallel do i = 1, {loop.n}",
    ]
    if reset_iter:
        lines.append(f"   iter({w}) = MAXINT")
    lines += [
        f"   ready({w}) = NOTDONE",
        f"   y({w}) = ynew({w})",
        "end parallel do",
    ]
    return "\n".join(lines)


def _executor_source(loop: IrregularLoop, linear: bool) -> str:
    w = _write_ref(loop)
    if linear:
        sub = loop.write_subscript
        assert isinstance(sub, AffineSubscript)
        writer = (
            "! linear write subscript: writer computed in closed form (§2.3)\n"
            f"      if (mod(offset - ({sub.d}), {sub.c}) .eq. 0) then\n"
            f"         writer = (offset - ({sub.d})) / {sub.c}\n"
            "      else\n"
            "         writer = MAXINT\n"
            "      end if"
        )
    else:
        writer = "      writer = iter(offset)"
    lines = [
        "! executor: transformed loop (Figure 5)",
        f"parallel do i = 1, {loop.n}",
        f"   {_init_expr(loop, f'ynew({w})')}",
        "   do k = low(i), high(i)",
        "      offset = index(k)",
        writer,
        "      check = writer - i",
        "      if (check .lt. 0) then",
        "         ! true dependence: busy-wait, read the new value",
        "         while (ready(offset) .ne. DONE)",
        "         end while",
        f"         ynew({w}) = ynew({w}) + coeff(k) * ynew(offset)",
        "      else if (check .eq. 0) then",
        "         ! intra-iteration reference: the live accumulator",
        f"         ynew({w}) = ynew({w}) + coeff(k) * ynew(offset)",
        "      else",
        "         ! antidependence or never written: the old value",
        f"         ynew({w}) = ynew({w}) + coeff(k) * y(offset)",
        "      end if",
        "   end do",
        f"   ready({w}) = DONE",
        "end parallel do",
    ]
    return "\n".join(lines)


def _classic_source(loop: IrregularLoop, distance: int) -> str:
    w = _write_ref(loop)
    return "\n".join(
        [
            f"! classic doacross: a-priori dependence distance {distance}",
            f"parallel do i = 1, {loop.n}",
            f"   if (i .gt. {distance}) then",
            f"      while (done(i - {distance}) .ne. DONE)",
            "      end while",
            "   end if",
            f"   {_init_expr(loop, f'y({w})')}",
            "   do k = low(i), high(i)",
            f"      y({w}) = y({w}) + coeff(k) * y(index(k))",
            "   end do",
            "   done(i) = DONE",
            "end parallel do",
        ]
    )


def _doall_source(loop: IrregularLoop) -> str:
    w = _write_ref(loop)
    return "\n".join(
        [
            "! doall: independence asserted, no synchronization",
            f"parallel do i = 1, {loop.n}",
            f"   {_init_expr(loop, f'y({w})')}",
            "   do k = low(i), high(i)",
            f"      y({w}) = y({w}) + coeff(k) * y(index(k))",
            "   end do",
            "end parallel do",
        ]
    )


def generate_source(
    loop: IrregularLoop, plan: TransformPlan | None = None
) -> str:
    """Render the transformed program for ``loop`` under ``plan``
    (default: whatever :func:`plan_transform` chooses).

    Returns the complete pseudo-Fortran text: a header naming the strategy
    and its justification, then the phase procedures in execution order.
    """
    if plan is None:
        plan = plan_transform(loop)
    sections = [
        f"! strategy: {plan.describe()}",
        "",
        generate_original_source(loop),
        "",
    ]
    if plan.strategy == STRATEGY_DOALL:
        sections.append(_doall_source(loop))
    elif plan.strategy == STRATEGY_CLASSIC_DOACROSS:
        if plan.uniform_distance is None:
            raise ValueError("classic plan carries no uniform distance")
        sections.append(_classic_source(loop, plan.uniform_distance))
    elif plan.strategy == STRATEGY_LINEAR:
        sections.append(_executor_source(loop, linear=True))
        sections.append("")
        sections.append(_postprocessor_source(loop, reset_iter=False))
    elif plan.strategy == STRATEGY_PREPROCESSED:
        sections.append(_inspector_source(loop))
        sections.append("")
        sections.append(_executor_source(loop, linear=False))
        sections.append("")
        sections.append(_postprocessor_source(loop, reset_iter=True))
    else:  # pragma: no cover - strategy space is closed
        raise ValueError(f"unknown strategy {plan.strategy!r}")
    return "\n".join(sections)
