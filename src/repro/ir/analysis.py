"""Dependence analysis over :class:`~repro.ir.loop.IrregularLoop`.

This module answers, from the materialized subscript values, the questions a
parallelizing compiler would ask — plus the ones it *cannot* answer before
run time (which is the paper's premise).  The runtime transformation uses
only the statically-known parts (:func:`plan_transform` in
:mod:`repro.ir.transform`); the full value-level analysis here serves

- the **doconsider** reordering (it needs the true-dependence DAG),
- the benchmark harness (dependence statistics for reports), and
- the test suite (oracles for the executor's three-way classification).

Every read term falls in exactly one category, mirroring Figure 5's
``check = iter(offset) - i`` trichotomy:

- ``TRUE``  (``writer < reader``): true dependence — executor must wait.
- ``INTRA`` (``writer == reader``): intra-iteration — read the accumulator.
- ``ANTI``  (``writer > reader``): antidependence — read the old value.
- ``NONE``  (element never written): read the old value.

All functions are vectorized NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.loop import IrregularLoop

__all__ = [
    "CAT_TRUE",
    "CAT_INTRA",
    "CAT_ANTI",
    "CAT_NONE",
    "writer_map",
    "classify_reads",
    "dependence_pairs",
    "is_doall",
    "uniform_distance",
    "observed_distances",
    "summarize_dependences",
    "DependenceSummary",
]

CAT_TRUE = 0
CAT_INTRA = 1
CAT_ANTI = 2
CAT_NONE = 3


def writer_map(loop: IrregularLoop) -> np.ndarray:
    """For each element of ``y``: the iteration that writes it, or ``-1``.

    This is the value-level analogue of the paper's ``iter`` array
    (with ``-1`` in place of ``MAXINT``).
    """
    writers = np.full(loop.y_size, -1, dtype=np.int64)
    writers[loop.write] = np.arange(loop.n, dtype=np.int64)
    return writers


def classify_reads(
    loop: IrregularLoop,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify every flat read term.

    Returns ``(readers, writers, categories)``, each of length
    ``loop.reads.total_terms``:

    - ``readers[k]`` — the iteration issuing term ``k``;
    - ``writers[k]`` — the iteration writing the element term ``k`` reads
      (``-1`` if unwritten);
    - ``categories[k]`` — one of :data:`CAT_TRUE`, :data:`CAT_INTRA`,
      :data:`CAT_ANTI`, :data:`CAT_NONE`.
    """
    readers = loop.reads.iteration_of_term()
    writers = writer_map(loop)[loop.reads.index]
    categories = np.full(len(readers), CAT_NONE, dtype=np.int8)
    written = writers >= 0
    categories[written & (writers < readers)] = CAT_TRUE
    categories[written & (writers == readers)] = CAT_INTRA
    categories[written & (writers > readers)] = CAT_ANTI
    return readers, writers, categories


def dependence_pairs(loop: IrregularLoop) -> np.ndarray:
    """Unique true-dependence edges as an ``(m, 2)`` array of
    ``(writer, reader)`` iteration pairs, lexicographically sorted."""
    readers, writers, categories = classify_reads(loop)
    mask = categories == CAT_TRUE
    if not mask.any():
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.stack([writers[mask], readers[mask]], axis=1)
    return np.unique(pairs, axis=0)


def is_doall(loop: IrregularLoop) -> bool:
    """True when no cross-iteration true dependence exists.

    Intra-iteration reads and antidependencies do not inhibit a doall once
    writes are renamed into ``ynew`` — the paper's transformation does that
    renaming anyway, so only true dependencies order iterations.
    """
    _, _, categories = classify_reads(loop)
    return not np.any(categories == CAT_TRUE)


def uniform_distance(loop: IrregularLoop) -> int | None:
    """If every true dependence has one common distance ``d > 0``, return
    ``d``; otherwise ``None``.

    A uniform distance is what the *classic* doacross needs a priori; this
    check is how the benchmark's classic baseline validates its eligibility.
    Loops with no true dependencies also return ``None`` (they are doall).
    """
    pairs = dependence_pairs(loop)
    if len(pairs) == 0:
        return None
    distances = pairs[:, 1] - pairs[:, 0]
    d = int(distances[0])
    if np.all(distances == d):
        return d
    return None


def observed_distances(loop: IrregularLoop) -> np.ndarray:
    """Sorted unique distances of the loop's true dependences.

    Empty for doall loops; a single-element array is the value-level
    counterpart of the symbolic constant-distance verdict
    (:mod:`repro.analysis`), which the cross-checker compares against.
    """
    pairs = dependence_pairs(loop)
    if len(pairs) == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(pairs[:, 1] - pairs[:, 0])


@dataclass(frozen=True)
class DependenceSummary:
    """Dependence statistics for reports and shape checks."""

    n: int
    total_terms: int
    true_terms: int
    intra_terms: int
    anti_terms: int
    unwritten_terms: int
    unique_true_edges: int
    min_distance: int | None
    max_distance: int | None
    #: Iterations that are the target of at least one true dependence.
    dependent_iterations: int

    @property
    def dependence_fraction(self) -> float:
        """Fraction of iterations ordered after some other iteration."""
        if self.n == 0:
            return 0.0
        return self.dependent_iterations / self.n


def summarize_dependences(loop: IrregularLoop) -> DependenceSummary:
    """Compute a :class:`DependenceSummary` for ``loop``."""
    readers, writers, categories = classify_reads(loop)
    true_mask = categories == CAT_TRUE
    pairs = (
        np.unique(
            np.stack([writers[true_mask], readers[true_mask]], axis=1), axis=0
        )
        if true_mask.any()
        else np.empty((0, 2), dtype=np.int64)
    )
    min_d: int | None = None
    max_d: int | None = None
    dependent = 0
    if len(pairs):
        distances = pairs[:, 1] - pairs[:, 0]
        min_d, max_d = int(distances.min()), int(distances.max())
        dependent = len(np.unique(pairs[:, 1]))
    return DependenceSummary(
        n=loop.n,
        total_terms=len(categories),
        true_terms=int(true_mask.sum()),
        intra_terms=int((categories == CAT_INTRA).sum()),
        anti_terms=int((categories == CAT_ANTI).sum()),
        unwritten_terms=int((categories == CAT_NONE).sum()),
        unique_true_edges=len(pairs),
        min_distance=min_d,
        max_distance=max_d,
        dependent_iterations=dependent,
    )
