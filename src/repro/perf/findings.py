"""Structured perf-doctor findings.

A :class:`Finding` is one diagnosed condition in the paper's vocabulary —
"the busy-wait share violates the §3 amortization inequality", "the
wavefronts are too narrow for this worker count" — carrying the evidence
numbers it was derived from, a severity, and a machine-readable
recommendation (a partial :class:`~repro.passes.spec.PlanSpec` option
dict) that both humans and the auto-tuner can act on.

The kinds are a closed vocabulary (:data:`FINDING_KINDS`); each maps to
one paper quantity, documented in ``docs/paper_mapping.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SEV_INFO",
    "SEV_WARNING",
    "SEV_CRITICAL",
    "SEVERITIES",
    "KIND_WAIT_BOUND",
    "KIND_LOAD_IMBALANCE",
    "KIND_NARROW_WAVEFRONTS",
    "KIND_INSPECTOR_DOMINANT",
    "KIND_CACHE_COLD",
    "KIND_WAIT_ESCALATION",
    "FINDING_KINDS",
    "Finding",
]

SEV_INFO = "info"
SEV_WARNING = "warning"
SEV_CRITICAL = "critical"
SEVERITIES = (SEV_INFO, SEV_WARNING, SEV_CRITICAL)

#: Executor busy-wait share is large enough to threaten the §3
#: amortization inequality (dependency-check time must be won back).
KIND_WAIT_BOUND = "wait_bound"
#: One lane carries much more compute than the mean — the cyclic
#: distribution's assumption of uniform iteration cost does not hold.
KIND_LOAD_IMBALANCE = "load_imbalance"
#: Wavefront levels are narrower than the worker count — doconsider
#: batches cannot fill the machine (§3.2).
KIND_NARROW_WAVEFRONTS = "narrow_wavefronts"
#: The inspector (preprocessing) phase dominates the run — Figure 3's
#: preprocessing cost is not being amortized.
KIND_INSPECTOR_DOMINANT = "inspector_dominant"
#: Every inspector record was built from scratch — the cross-run reuse
#: that pays for preprocessing (§4) is not engaged.
KIND_CACHE_COLD = "cache_cold"
#: Blocking waits escalated past the spin rung of the WaitLadder —
#: dependence stalls are long, not momentary.
KIND_WAIT_ESCALATION = "wait_escalation"

FINDING_KINDS = (
    KIND_WAIT_BOUND,
    KIND_LOAD_IMBALANCE,
    KIND_NARROW_WAVEFRONTS,
    KIND_INSPECTOR_DOMINANT,
    KIND_CACHE_COLD,
    KIND_WAIT_ESCALATION,
)


@dataclass
class Finding:
    """One diagnosed condition with its evidence and recommendation.

    Attributes
    ----------
    kind:
        One of :data:`FINDING_KINDS`.
    severity:
        One of :data:`SEVERITIES`.
    summary:
        One human-readable sentence.
    evidence:
        The numbers the diagnosis was derived from (JSON-safe).
    recommendation:
        Machine-readable remedy: a partial plan-option dict
        (``{"backend": "vectorized"}``, ``{"analyze": "symbolic"}``)
        the auto-tuner consumes as a prior hint; empty when the finding
        is purely informational.
    """

    kind: str
    severity: str
    summary: str
    evidence: dict = field(default_factory=dict)
    recommendation: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FINDING_KINDS:
            raise ValueError(
                f"unknown finding kind {self.kind!r}; "
                f"expected one of {FINDING_KINDS}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "summary": self.summary,
            "evidence": dict(self.evidence),
            "recommendation": dict(self.recommendation),
        }

    def one_line(self) -> str:
        rec = (
            " -> "
            + ", ".join(f"{k}={v!r}" for k, v in self.recommendation.items())
            if self.recommendation
            else ""
        )
        return f"[{self.severity}] {self.kind}: {self.summary}{rec}"
