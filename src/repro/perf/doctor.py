"""The perf doctor: findings from telemetry, in the paper's vocabulary.

Every rule here checks one quantity from the paper's accounting argument
against one run's :class:`~repro.obs.telemetry.Telemetry` blob:

- **wait_bound** — the per-lane busy-wait share (§2.2's dependency-check
  cost, the left side of §3's amortization inequality).  When waiting
  dominates computing on a point-to-point backend, the executor is not
  winning back what preprocessing paid, and the wavefront-batched
  backend (which replaces per-element waits with level barriers) is the
  structural fix.
- **load_imbalance** — per-lane compute totals.  The cyclic distribution
  assumes uniform iteration cost (§2.1); a lane carrying far more than
  the mean says that assumption broke.
- **narrow_wavefronts** — the ``level_width`` distribution vs the worker
  count.  §3.2's doconsider decomposition only pays when levels are wide
  enough to fill the machine; deep narrow DAGs belong on a
  point-to-point backend.
- **inspector_dominant** — Figure 3's preprocessing cost vs the executor
  extent.  When the inspector dominates, symbolic analysis (which builds
  the record in closed form) removes it.
- **cache_cold** — the cross-run reuse (§4's preprocessed-loop reuse)
  that amortizes preprocessing is not engaged.
- **wait_escalation** — blocking waits that outlived the WaitLadder's
  spin rung: stalls are long, not momentary flag races.

Each rule emits a :class:`~repro.perf.findings.Finding` with the numbers
it judged and a machine-readable recommendation;
:func:`repro.passes.autotune.record_doctor_hints` turns those
recommendations into auto-tuner priors.
"""

from __future__ import annotations

from repro.obs.telemetry import Telemetry
from repro.perf.findings import (
    KIND_CACHE_COLD,
    KIND_INSPECTOR_DOMINANT,
    KIND_LOAD_IMBALANCE,
    KIND_NARROW_WAVEFRONTS,
    KIND_WAIT_BOUND,
    KIND_WAIT_ESCALATION,
    SEV_CRITICAL,
    SEV_INFO,
    SEV_WARNING,
    Finding,
)

__all__ = [
    "WAIT_FRACTION_WARNING",
    "WAIT_FRACTION_CRITICAL",
    "IMBALANCE_RATIO",
    "INSPECTOR_SHARE",
    "ESCALATION_SHARE_WARNING",
    "diagnose",
    "diagnose_result",
]

#: Mean busy-wait share of lane activity that draws a warning/critical
#: wait_bound finding (point-to-point backends only).
WAIT_FRACTION_WARNING = 0.2
WAIT_FRACTION_CRITICAL = 0.5

#: Max/mean per-lane compute ratio above which the load is imbalanced.
IMBALANCE_RATIO = 1.5

#: Inspector share of (inspector + executor) extent above which
#: preprocessing dominates the run.
INSPECTOR_SHARE = 0.5

#: Escalated share of blocking waits that upgrades wait_escalation from
#: info to warning.
ESCALATION_SHARE_WARNING = 0.5

#: Backends whose executor blocks per element (the paper's Figure-5
#: busy-wait); the wavefront-batched backend is their structural remedy.
_POINT_TO_POINT = ("threaded", "multiproc")


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def diagnose(
    telemetry: Telemetry,
    processors: int | None = None,
    extras: dict | None = None,
) -> list[Finding]:
    """All findings for one run, most severe first.

    ``processors`` defaults to the ``processors`` gauge the instrumented
    wrapper records; ``extras`` (a :class:`~repro.core.results.RunResult`
    extras dict) refines the inspector/cache rules when available.
    """
    extras = extras or {}
    metrics = telemetry.metrics.as_dict()
    counters = metrics["counters"]
    gauges = metrics["gauges"]
    if processors is None:
        processors = int(gauges.get("processors", 0)) or None
    findings: list[Finding] = []

    # --- wait_bound: §3 amortization (busy-wait share per lane) --------
    fractions = telemetry.wait_fractions()
    if fractions and telemetry.backend in _POINT_TO_POINT:
        mean_frac = _mean(fractions.values())
        if mean_frac >= WAIT_FRACTION_WARNING:
            severity = (
                SEV_CRITICAL
                if mean_frac >= WAIT_FRACTION_CRITICAL
                else SEV_WARNING
            )
            findings.append(
                Finding(
                    kind=KIND_WAIT_BOUND,
                    severity=severity,
                    summary=(
                        f"lanes spend {mean_frac:.0%} of executor activity "
                        f"busy-waiting on ready flags — dependency-check "
                        f"time is not being amortized (§3)"
                    ),
                    evidence={
                        "mean_wait_fraction": mean_frac,
                        "wait_fraction_by_lane": {
                            str(k): v for k, v in fractions.items()
                        },
                        "busy_waits": counters.get("busy_waits", 0),
                    },
                    recommendation={"backend": "vectorized"},
                )
            )

    # --- load_imbalance: per-lane compute totals -----------------------
    compute = telemetry.category_totals_by_lane("compute")
    if len(compute) >= 2:
        mean_c = _mean(compute.values())
        max_lane = max(compute, key=lambda k: compute[k])
        ratio = compute[max_lane] / mean_c if mean_c > 0 else 0.0
        if ratio > IMBALANCE_RATIO:
            findings.append(
                Finding(
                    kind=KIND_LOAD_IMBALANCE,
                    severity=SEV_WARNING,
                    summary=(
                        f"lane {max_lane} carries {ratio:.2f}x the mean "
                        f"compute — the cyclic distribution's uniform-cost "
                        f"assumption does not hold"
                    ),
                    evidence={
                        "max_lane": max_lane,
                        "max_over_mean": ratio,
                        "compute_by_lane": {
                            str(k): v for k, v in compute.items()
                        },
                    },
                    recommendation={"backend": "vectorized"},
                )
            )

    # --- narrow_wavefronts: level widths vs worker count ---------------
    level_width = metrics["histograms"].get("level_width")
    if level_width and level_width.get("count"):
        avg_width = level_width["sum"] / level_width["count"]
        workers = processors or 1
        if workers > 1 and avg_width < workers:
            severity = SEV_CRITICAL if avg_width < 2.0 else SEV_WARNING
            findings.append(
                Finding(
                    kind=KIND_NARROW_WAVEFRONTS,
                    severity=severity,
                    summary=(
                        f"average wavefront width {avg_width:.1f} cannot "
                        f"fill {workers} workers — per-level batches are "
                        f"mostly dispatch overhead (§3.2)"
                    ),
                    evidence={
                        "avg_width": avg_width,
                        "processors": workers,
                        "level_width": dict(level_width),
                        "levels": gauges.get("levels"),
                    },
                    recommendation={"backend": "threaded"},
                )
            )

    # --- inspector_dominant: Figure 3 preprocessing share --------------
    phases = telemetry.phase_totals()
    inspector = phases.get("inspector", 0.0)
    executor = phases.get("executor", 0.0)
    elided = bool(extras.get("inspector_elided"))
    if inspector + executor > 0 and not elided:
        share = inspector / (inspector + executor)
        if share > INSPECTOR_SHARE:
            findings.append(
                Finding(
                    kind=KIND_INSPECTOR_DOMINANT,
                    severity=SEV_WARNING,
                    summary=(
                        f"the inspector is {share:.0%} of "
                        f"inspector+executor time — preprocessing "
                        f"dominates the run (Figure 3)"
                    ),
                    evidence={
                        "inspector_extent": inspector,
                        "executor_extent": executor,
                        "inspector_share": share,
                    },
                    recommendation={"analyze": "symbolic"},
                )
            )

    # --- cache_cold: cross-run reuse not engaged -----------------------
    hits = gauges.get("inspector_cache_hits_total")
    misses = gauges.get("inspector_cache_misses_total")
    if hits == 0 and (misses or 0) > 0:
        findings.append(
            Finding(
                kind=KIND_CACHE_COLD,
                severity=SEV_INFO,
                summary=(
                    "every inspector record was built from scratch — "
                    "share an InspectorCache across runs to amortize "
                    "preprocessing (§4)"
                ),
                evidence={"cache_hits": hits, "cache_misses": misses},
                recommendation={"cache": "share"},
            )
        )

    # --- wait_escalation: stalls past the WaitLadder spin rung ---------
    escalations = counters.get("wait_escalations", 0)
    busy_waits = counters.get("busy_waits", 0)
    if escalations > 0:
        share = escalations / busy_waits if busy_waits else 1.0
        findings.append(
            Finding(
                kind=KIND_WAIT_ESCALATION,
                severity=(
                    SEV_WARNING
                    if share >= ESCALATION_SHARE_WARNING
                    else SEV_INFO
                ),
                summary=(
                    f"{escalations} of {busy_waits} blocking waits "
                    f"escalated past the spin rung — dependence stalls "
                    f"are long, not momentary"
                ),
                evidence={
                    "wait_escalations": escalations,
                    "busy_waits": busy_waits,
                    "escalated_share": share,
                },
                recommendation={"backend": "vectorized"},
            )
        )

    rank = {SEV_CRITICAL: 0, SEV_WARNING: 1, SEV_INFO: 2}
    findings.sort(key=lambda f: rank[f.severity])
    return findings


def diagnose_result(result) -> list[Finding]:
    """Diagnose a :class:`~repro.core.results.RunResult` that carries
    telemetry (``observe=True`` runs)."""
    if result.telemetry is None:
        raise ValueError(
            "result has no telemetry; run with observe=True (or "
            "PlanSpec(diagnose=True)) to collect it"
        )
    return diagnose(
        result.telemetry,
        processors=result.processors,
        extras=result.extras,
    )
