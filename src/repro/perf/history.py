"""Benchmark history: provenance stamping and the append-only trajectory.

Each ``BENCH_*.json`` artifact is a snapshot; the *trajectory* — the thing
a regression gate can interrogate — lives in ``BENCH_history.jsonl``: one
flat JSON row per (benchmark, backend, n) measurement, stamped with the
git SHA, an ISO-8601 UTC timestamp, and a machine fingerprint (CPU count,
Python version, platform), appended and never rewritten.

This module owns the provenance vocabulary (:func:`run_metadata`) used by
both the per-bench artifacts (via
:func:`repro.bench.registry.write_artifact`) and the history rows, the
normalization from artifact payloads to history rows
(:func:`history_rows`), and the append/load primitives.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

__all__ = [
    "HISTORY_PATH",
    "HISTORY_SCHEMA_VERSION",
    "git_sha",
    "machine_fingerprint",
    "run_metadata",
    "history_rows",
    "append_history",
    "load_history",
]

#: Default append-only trajectory file (repo root in CI).
HISTORY_PATH = "BENCH_history.jsonl"

HISTORY_SCHEMA_VERSION = 1


def git_sha(cwd: str | Path | None = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def machine_fingerprint() -> dict:
    """Where a measurement ran: enough to tell two CI runners apart."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": sys.platform,
    }


def run_metadata(cwd: str | Path | None = None) -> dict:
    """The provenance block stamped into every artifact and history row."""
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "git_sha": git_sha(cwd),
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": machine_fingerprint(),
    }


def history_rows(payload: dict, meta: dict | None = None) -> list[dict]:
    """Normalize one benchmark artifact payload into flat history rows.

    One row per ``records`` entry: the stable cross-PR keys (benchmark,
    backend, n, wall_seconds) plus the provenance stamp.  Extra record
    keys ride along untouched (``wait_fraction``, ``speedup``...), so the
    history keeps whatever depth each bench reports without the gate
    depending on it.
    """
    meta = meta if meta is not None else payload.get("meta") or run_metadata()
    rows = []
    for record in payload.get("records", []):
        row = dict(record)
        row["benchmark"] = payload.get("benchmark", "unknown")
        row.setdefault("n", None)
        row["git_sha"] = meta.get("git_sha", "unknown")
        row["date"] = meta.get("date", "")
        row["machine"] = dict(meta.get("machine", {}))
        row["schema_version"] = meta.get(
            "schema_version", HISTORY_SCHEMA_VERSION
        )
        rows.append(row)
    return rows


def append_history(
    rows: list[dict], path: str | Path = HISTORY_PATH
) -> Path:
    """Append ``rows`` to the JSONL trajectory (created if missing)."""
    path = Path(path)
    with path.open("a", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def load_history(path: str | Path = HISTORY_PATH) -> list[dict]:
    """All history rows in file (= chronological append) order.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming its position — an append-only file that stops parsing midway
    is corruption worth failing loudly on, not skipping.
    """
    path = Path(path)
    rows: list[dict] = []
    for pos, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}: line {pos + 1} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(row, dict):
            raise ValueError(
                f"{path}: line {pos + 1} is not a JSON object"
            )
        rows.append(row)
    return rows
