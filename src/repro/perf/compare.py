"""The statistical regression gate over the benchmark history.

``python -m repro perf compare`` answers one question per
(benchmark, backend, n) key: *is the newest measurement slower than the
recent past, beyond noise?*  The statistics are deliberately robust —
CI wall clocks are jittery, and a gate that pages on noise trains people
to ignore it:

- the **candidate** is the median of the trailing run (all rows sharing
  the newest git SHA for that key) — median-of-k repeats, so a single
  hiccup is not a candidate;
- the **baseline** is the median of the preceding window after
  MAD-based outlier rejection (samples further than
  ``4 * 1.4826 * MAD`` from the window median are dropped) — one
  historically slow run cannot drag the baseline;
- a key regresses only if the relative excess clears ``threshold``
  *and* the absolute excess clears ``min_effect_seconds`` — a 2x
  slowdown of a 50µs microbench is below any machine's resolution and
  should not page anyone.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

__all__ = [
    "Comparison",
    "group_history",
    "reject_outliers",
    "compare_history",
    "format_comparisons",
]

#: Baseline window length (rows per key, before outlier rejection).
DEFAULT_WINDOW = 20
#: Relative slowdown that flags a regression (0.30 = 30% slower).
DEFAULT_THRESHOLD = 0.30
#: Minimum-effect floor (seconds): relative excess below this absolute
#: difference is noise by definition.
DEFAULT_MIN_EFFECT = 0.005
#: Keys need at least this many baseline rows to be judged at all.
DEFAULT_MIN_BASELINE = 3

_MAD_SCALE = 1.4826  # MAD -> sigma for normal data
_MAD_CUTOFF = 4.0


@dataclass
class Comparison:
    """The verdict for one (benchmark, backend, n) key."""

    benchmark: str
    backend: str
    n: int | None
    baseline_median: float
    candidate_median: float
    baseline_count: int
    candidate_count: int
    rejected_outliers: int
    regressed: bool
    skipped: bool = False
    reason: str = ""

    @property
    def rel_excess(self) -> float:
        if self.baseline_median <= 0:
            return 0.0
        return self.candidate_median / self.baseline_median - 1.0

    @property
    def key(self) -> str:
        n = "-" if self.n is None else self.n
        return f"{self.benchmark}/{self.backend}/n={n}"

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "backend": self.backend,
            "n": self.n,
            "baseline_median": self.baseline_median,
            "candidate_median": self.candidate_median,
            "baseline_count": self.baseline_count,
            "candidate_count": self.candidate_count,
            "rejected_outliers": self.rejected_outliers,
            "rel_excess": self.rel_excess,
            "regressed": self.regressed,
            "skipped": self.skipped,
            "reason": self.reason,
        }


def group_history(
    rows: list[dict],
) -> dict[tuple[str, str, int | None], list[dict]]:
    """History rows bucketed by the stable grouping key, file order
    (= append = chronological order) preserved within each bucket."""
    groups: dict[tuple[str, str, int | None], list[dict]] = {}
    for row in rows:
        n = row.get("n")
        key = (row.get("benchmark", "?"), row.get("backend", "?"), n)
        groups.setdefault(key, []).append(row)
    return groups


def reject_outliers(samples: list[float]) -> tuple[list[float], int]:
    """Drop samples beyond ``4 * 1.4826 * MAD`` of the median.

    Returns ``(kept, rejected_count)``.  With fewer than 4 samples, or a
    zero MAD (identical samples), nothing is dropped — there is no
    spread to judge against.
    """
    if len(samples) < 4:
        return list(samples), 0
    med = statistics.median(samples)
    mad = statistics.median(abs(s - med) for s in samples)
    if mad == 0:
        return list(samples), 0
    cut = _MAD_CUTOFF * _MAD_SCALE * mad
    kept = [s for s in samples if abs(s - med) <= cut]
    return kept, len(samples) - len(kept)


def compare_history(
    rows: list[dict],
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
    min_effect_seconds: float = DEFAULT_MIN_EFFECT,
    min_baseline: int = DEFAULT_MIN_BASELINE,
) -> list[Comparison]:
    """Judge every (benchmark, backend, n) key in ``rows``.

    The candidate is the trailing block of rows sharing the key's newest
    git SHA; everything before it (up to ``window`` rows) is the
    baseline.  Keys whose baseline is shorter than ``min_baseline``
    return a skipped :class:`Comparison` — a trajectory two rows deep
    has no "recent past" to regress against.
    """
    out: list[Comparison] = []
    for (benchmark, backend, n), bucket in sorted(
        group_history(rows).items(), key=lambda kv: str(kv[0])
    ):
        last_sha = bucket[-1].get("git_sha", "unknown")
        split = len(bucket)
        while split > 0 and bucket[split - 1].get("git_sha") == last_sha:
            split -= 1
        candidate = [float(r["wall_seconds"]) for r in bucket[split:]]
        baseline_rows = bucket[max(0, split - window) : split]
        baseline_all = [float(r["wall_seconds"]) for r in baseline_rows]
        baseline, rejected = reject_outliers(baseline_all)

        if len(baseline) < min_baseline or not candidate:
            out.append(
                Comparison(
                    benchmark=benchmark,
                    backend=backend,
                    n=n,
                    baseline_median=(
                        statistics.median(baseline) if baseline else 0.0
                    ),
                    candidate_median=(
                        statistics.median(candidate) if candidate else 0.0
                    ),
                    baseline_count=len(baseline),
                    candidate_count=len(candidate),
                    rejected_outliers=rejected,
                    regressed=False,
                    skipped=True,
                    reason=(
                        f"baseline too short "
                        f"({len(baseline)} < {min_baseline})"
                        if candidate
                        else "no candidate rows"
                    ),
                )
            )
            continue

        base_med = statistics.median(baseline)
        cand_med = statistics.median(candidate)
        abs_excess = cand_med - base_med
        rel_excess = abs_excess / base_med if base_med > 0 else 0.0
        regressed = (
            rel_excess > threshold and abs_excess > min_effect_seconds
        )
        out.append(
            Comparison(
                benchmark=benchmark,
                backend=backend,
                n=n,
                baseline_median=base_med,
                candidate_median=cand_med,
                baseline_count=len(baseline),
                candidate_count=len(candidate),
                rejected_outliers=rejected,
                regressed=regressed,
                reason=(
                    f"median {cand_med:.6g}s vs baseline {base_med:.6g}s "
                    f"({rel_excess:+.1%})"
                ),
            )
        )
    return out


def format_comparisons(comparisons: list[Comparison]) -> str:
    """Human-readable report: regressions first, then ok, then skipped."""
    from repro.bench.reporting import format_table

    def bucket_rank(c: Comparison) -> int:
        return 0 if c.regressed else (2 if c.skipped else 1)

    rows = []
    for c in sorted(comparisons, key=lambda c: (bucket_rank(c), c.key)):
        status = (
            "REGRESSED" if c.regressed else ("skipped" if c.skipped else "ok")
        )
        rows.append(
            (
                c.key,
                status,
                f"{c.baseline_median * 1e3:.3f}",
                f"{c.candidate_median * 1e3:.3f}",
                f"{c.rel_excess:+.1%}",
                f"{c.baseline_count}/{c.candidate_count}",
                c.reason,
            )
        )
    if not rows:
        return "(no history keys to compare)"
    return format_table(
        [
            "key",
            "status",
            "baseline (ms)",
            "candidate (ms)",
            "excess",
            "base/cand",
            "detail",
        ],
        rows,
    )
