"""The perf observatory: benchmark history, regression gate, doctor.

Three instruments over the same raw material (bench artifacts and
telemetry blobs):

- :mod:`repro.perf.history` — ``python -m repro bench-all`` runs every
  registered benchmark through one entry point and appends normalized,
  provenance-stamped rows (git SHA, ISO date, machine fingerprint) to
  the append-only ``BENCH_history.jsonl``.
- :mod:`repro.perf.compare` — ``python -m repro perf compare`` judges
  the newest measurements against a robust baseline window per
  (benchmark, backend, n) key: median-of-k candidate, MAD outlier
  rejection, relative threshold plus a minimum-effect floor.
- :mod:`repro.perf.doctor` — ``python -m repro doctor`` (and
  ``PlanSpec(diagnose=True)``) reads one run's telemetry and emits
  structured :class:`~repro.perf.findings.Finding`\\ s tied to the
  paper's accounting argument, each with a machine-readable
  recommendation the auto-tuner consumes as a prior.
"""

from repro.perf.compare import (
    Comparison,
    compare_history,
    format_comparisons,
    group_history,
    reject_outliers,
)
from repro.perf.doctor import diagnose, diagnose_result
from repro.perf.findings import (
    FINDING_KINDS,
    SEVERITIES,
    Finding,
)
from repro.perf.history import (
    HISTORY_PATH,
    append_history,
    history_rows,
    load_history,
    machine_fingerprint,
    run_metadata,
)

__all__ = [
    "Comparison",
    "compare_history",
    "format_comparisons",
    "group_history",
    "reject_outliers",
    "diagnose",
    "diagnose_result",
    "Finding",
    "FINDING_KINDS",
    "SEVERITIES",
    "HISTORY_PATH",
    "append_history",
    "history_rows",
    "load_history",
    "machine_fingerprint",
    "run_metadata",
]
