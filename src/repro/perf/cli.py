"""CLI front doors for the perf observatory.

Three commands, dispatched from ``python -m repro``:

``bench-all [--quick] [--only=a,b] [--list] [--history=PATH]
        [--no-history] [--out-dir=DIR]``
    Run every registered benchmark (:data:`repro.bench.registry.REGISTRY`)
    through one loop, collect their freshly written ``BENCH_*.json``
    artifacts, and append normalized provenance-stamped rows to the
    append-only ``BENCH_history.jsonl``.  ``--quick`` runs each bench's
    reduced CI size; one failing bench does not stop the others.

``perf compare [--history=PATH] [--window=N] [--threshold=F]
        [--min-effect=S] [--min-baseline=N] [--json] [--report]``
    The statistical regression gate over the history
    (:mod:`repro.perf.compare`).  Exits 1 when any key regressed;
    ``--report`` always exits 0 (the CI soft-fail mode).

``doctor [SPEC] [--backend=NAME] [--processors=P] [--telemetry=FILE]
        [--json]``
    Run one builtin loop observed (or load saved telemetry: a spans
    ``.jsonl`` export or a ``BENCH_*.json`` artifact with a telemetry
    blob) and print the perf doctor's findings
    (:mod:`repro.perf.doctor`).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["bench_all_main", "doctor_main", "main"]

_DOCTOR_LOOP = "figure4:n=2000,m=2,l=8"


# ----------------------------------------------------------------------
# bench-all
# ----------------------------------------------------------------------
def bench_all_main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    from repro.bench.registry import REGISTRY, bench_by_name
    from repro.perf.history import (
        HISTORY_PATH,
        append_history,
        history_rows,
        run_metadata,
    )

    quick = "--quick" in args
    list_only = "--list" in args
    no_history = "--no-history" in args
    history_path = HISTORY_PATH
    out_dir = Path(".")
    only: list[str] | None = None
    for a in args:
        if a.startswith("--history="):
            history_path = a.split("=", 1)[1]
        elif a.startswith("--out-dir="):
            out_dir = Path(a.split("=", 1)[1])
        elif a.startswith("--only="):
            only = [s for s in a.split("=", 1)[1].split(",") if s]
        elif a not in ("--quick", "--list", "--no-history"):
            print(f"unknown bench-all option {a!r}")
            return 2

    try:
        specs = (
            tuple(bench_by_name(name) for name in only)
            if only is not None
            else REGISTRY
        )
    except KeyError as exc:
        print(exc.args[0])
        return 2

    if list_only:
        from repro.bench.reporting import format_table

        print(
            format_table(
                ["benchmark", "artifact", "description"],
                [(s.name, s.artifact, s.description) for s in specs],
                title="registered benchmarks",
            )
        )
        return 0

    out_dir.mkdir(parents=True, exist_ok=True)
    # One provenance stamp for the whole sweep: every bench in this
    # invocation shares the SHA/date/machine of one history generation.
    meta = run_metadata()
    rows: list[dict] = []
    failures: list[str] = []
    for spec in specs:
        artifact = out_dir / spec.artifact
        bench_argv = list(spec.quick_args) if quick else []
        bench_argv.append(f"--out={artifact}")
        print(f"== {spec.name} {'(quick) ' if quick else ''}==")
        try:
            rc = spec.main(bench_argv)
        except Exception as exc:  # one broken bench must not stop the sweep
            print(f"{spec.name} raised {type(exc).__name__}: {exc}")
            rc = 1
        if rc != 0:
            failures.append(spec.name)
            continue
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        rows.extend(history_rows(payload, meta))
        print()

    if rows and not no_history:
        written = append_history(rows, history_path)
        print(
            f"appended {len(rows)} history row(s) to {written} "
            f"(sha={meta['git_sha'][:12]})"
        )
    if failures:
        print(f"FAILED: {', '.join(failures)}")
        return 1
    return 0


# ----------------------------------------------------------------------
# perf compare
# ----------------------------------------------------------------------
def _compare_main(args: list[str]) -> int:
    from repro.perf.compare import (
        DEFAULT_MIN_BASELINE,
        DEFAULT_MIN_EFFECT,
        DEFAULT_THRESHOLD,
        DEFAULT_WINDOW,
        compare_history,
        format_comparisons,
    )
    from repro.perf.history import HISTORY_PATH, load_history

    history_path = HISTORY_PATH
    window = DEFAULT_WINDOW
    threshold = DEFAULT_THRESHOLD
    min_effect = DEFAULT_MIN_EFFECT
    min_baseline = DEFAULT_MIN_BASELINE
    as_json = "--json" in args
    report = "--report" in args
    for a in args:
        if a.startswith("--history="):
            history_path = a.split("=", 1)[1]
        elif a.startswith("--window="):
            window = int(a.split("=", 1)[1])
        elif a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
        elif a.startswith("--min-effect="):
            min_effect = float(a.split("=", 1)[1])
        elif a.startswith("--min-baseline="):
            min_baseline = int(a.split("=", 1)[1])
        elif a not in ("--json", "--report"):
            print(f"unknown perf compare option {a!r}")
            return 2

    if not Path(history_path).exists():
        print(f"no history at {history_path}; nothing to compare")
        return 0
    try:
        rows = load_history(history_path)
    except ValueError as exc:
        print(exc)
        return 2
    comparisons = compare_history(
        rows,
        window=window,
        threshold=threshold,
        min_effect_seconds=min_effect,
        min_baseline=min_baseline,
    )
    regressed = [c for c in comparisons if c.regressed]
    if as_json:
        print(
            json.dumps(
                {
                    "comparisons": [c.as_dict() for c in comparisons],
                    "regressed": len(regressed),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_comparisons(comparisons))
        print(
            f"\n{len(regressed)} regressed, "
            f"{sum(1 for c in comparisons if not c.regressed and not c.skipped)}"
            f" ok, {sum(1 for c in comparisons if c.skipped)} skipped"
        )
    if regressed and not report:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """``python -m repro perf <subcommand>`` dispatcher."""
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    sub, rest = args[0], args[1:]
    if sub == "compare":
        return _compare_main(rest)
    print(f"unknown perf subcommand {sub!r} (expected: compare)")
    return 2


# ----------------------------------------------------------------------
# doctor
# ----------------------------------------------------------------------
def _load_telemetry(path: str):
    """Saved telemetry: a spans ``.jsonl`` export, a bare telemetry JSON
    blob, or a ``BENCH_*.json`` artifact carrying one under
    ``"telemetry"``."""
    from repro.obs.export import read_spans_jsonl
    from repro.obs.telemetry import telemetry_from_dict

    if path.endswith(".jsonl"):
        return read_spans_jsonl(Path(path))
    blob = json.loads(Path(path).read_text(encoding="utf-8"))
    if "telemetry" in blob:
        blob = blob["telemetry"]
    return telemetry_from_dict(blob)


def doctor_main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    backend = "threaded"
    processors = 8
    telemetry_path: str | None = None
    as_json = "--json" in args
    spec_arg = _DOCTOR_LOOP
    for a in args:
        if a.startswith("--backend="):
            backend = a.split("=", 1)[1]
        elif a.startswith("--processors="):
            processors = int(a.split("=", 1)[1])
        elif a.startswith("--telemetry="):
            telemetry_path = a.split("=", 1)[1]
        elif a == "--json":
            pass
        elif a.startswith("--"):
            print(f"unknown doctor option {a!r}")
            return 2
        else:
            spec_arg = a

    if telemetry_path is not None:
        try:
            telemetry = _load_telemetry(telemetry_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load telemetry from {telemetry_path}: {exc}")
            return 2
        from repro.perf.doctor import diagnose

        findings = [f.as_dict() for f in diagnose(telemetry)]
        subject = f"{telemetry_path} ({telemetry.backend})"
    else:
        from repro.lint.cli import builtin_loops
        from repro.passes import PlanSpec, execute_plan, plan_loop

        try:
            loop = next(iter(builtin_loops(spec_arg).values()))
            spec = PlanSpec(
                backend=backend, processors=processors, diagnose=True
            )
        except ValueError as exc:
            print(exc)
            return 2
        plan = plan_loop(loop, spec)
        result = execute_plan(loop, plan)
        findings = result.extras["doctor"]
        subject = f"{spec_arg} on {backend} ({processors} workers)"

    if as_json:
        print(json.dumps({"subject": subject, "findings": findings}, indent=2))
        return 0
    print(f"doctor — {subject}")
    if not findings:
        print("no findings: nothing to flag on this run")
        return 0
    for f in findings:
        rec = ", ".join(f"{k}={v}" for k, v in f["recommendation"].items())
        print(f"[{f['severity']}] {f['kind']}: {f['summary']}")
        print(f"    recommend: {rec}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
