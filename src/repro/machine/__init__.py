"""Discrete-event simulation of a shared-memory multiprocessor.

This subpackage is the substitute for the paper's Encore Multimax/320 (see
DESIGN.md §3): a deterministic, cycle-accurate-enough model of ``P``
processors sharing a flat memory, busy-wait synchronization flags, and a
serialized self-scheduling dispatch counter.

The pieces:

- :mod:`repro.machine.ops` — the operation vocabulary processor tasks yield.
- :mod:`repro.machine.costs` — :class:`CostModel`, all per-operation cycle
  constants (calibration documented in DESIGN.md §7).
- :mod:`repro.machine.engine` — :class:`Engine`, the cooperative scheduler
  that advances processor tasks in strict global-time order.
- :mod:`repro.machine.flags` — busy-wait flag store.
- :mod:`repro.machine.resource` — serially-reusable resources (dispatch
  counter, optional shared bus).
- :mod:`repro.machine.scheduler` — iteration-to-processor schedules.
- :mod:`repro.machine.stats` — per-phase and per-run statistics.
"""

from repro.machine.costs import CostModel, WorkProfile
from repro.machine.engine import Engine, Machine
from repro.machine.flags import FlagStore
from repro.machine.ops import Compute, SetFlag, UseResource, WaitFlag
from repro.machine.resource import SerialResource
from repro.machine.scheduler import (
    DynamicSchedule,
    GuidedSchedule,
    IterationSchedule,
    StaticBlockSchedule,
    StaticCyclicSchedule,
    make_schedule,
)
from repro.machine.stats import PhaseStats, ProcessorStats
from repro.machine.trace import Segment, Tracer

__all__ = [
    "CostModel",
    "WorkProfile",
    "Engine",
    "Machine",
    "FlagStore",
    "Compute",
    "WaitFlag",
    "SetFlag",
    "UseResource",
    "SerialResource",
    "IterationSchedule",
    "StaticBlockSchedule",
    "StaticCyclicSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "make_schedule",
    "PhaseStats",
    "ProcessorStats",
    "Tracer",
    "Segment",
]
