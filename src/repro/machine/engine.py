"""The discrete-event engine: cooperative execution of processor tasks.

A *phase* (inspector, executor, or postprocessor) is run by handing the
engine one task factory per processor.  Each factory receives its
:class:`~repro.machine.stats.ProcessorStats` record and returns a generator
that yields :mod:`~repro.machine.ops` operations.  The engine advances
processors in strict global-time order (earliest local clock first), which
guarantees that all shared interactions — flag sets, busy-wait wake-ups,
serial-resource grants, dynamic chunk claims — happen in causal order and
that every simulation is deterministic.

Busy-wait semantics (the heart of the paper's executor): a processor that
waits on an unset flag is *parked*; when the flag is set at time ``T`` the
waiter resumes at ``max(park_time, T)`` and the gap is charged as
``wait_cycles`` — the processor was occupied spinning, exactly as on the
Encore Multimax.  If the queue drains while processors are still parked, the
wait can never be satisfied and :class:`SimulationDeadlockError` is raised
with the full waiter map.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable

from repro.errors import SimulationDeadlockError
from repro.machine.costs import CostModel
from repro.machine.event_queue import ReadyQueue
from repro.machine.flags import UNSET, FlagStore
from repro.machine.ops import (
    OP_COMPUTE,
    OP_SET_FLAG,
    OP_USE_RESOURCE,
    OP_WAIT_FLAG,
)
from repro.machine.resource import SerialResource
from repro.machine.stats import PhaseStats, ProcessorStats

__all__ = ["Engine", "Machine", "TaskFactory", "RES_DISPATCH", "RES_BUS"]

#: Conventional resource ids used by the backends.
RES_DISPATCH = 0
RES_BUS = 1

TaskFactory = Callable[[ProcessorStats], Generator]


class Engine:
    """Runs one phase of simulated parallel execution.

    Parameters
    ----------
    cost_model:
        Cycle costs for flag checks/sets charged by the engine itself (all
        other costs are charged explicitly by the tasks via ``Compute`` /
        ``UseResource`` ops).
    flags:
        Optional :class:`FlagStore` for ``WaitFlag``/``SetFlag`` ops.  Phases
        that use no flags (inspector, postprocessor) may omit it.
    resources:
        Mapping of resource id to :class:`SerialResource` for
        ``UseResource`` ops.
    tracer:
        Optional :class:`~repro.machine.trace.Tracer`; when present, every
        compute/wait/queue interval is recorded (small constant overhead).
    """

    def __init__(
        self,
        cost_model: CostModel,
        flags: FlagStore | None = None,
        resources: dict[int, SerialResource] | None = None,
        tracer=None,
    ):
        self.cost_model = cost_model
        self.flags = flags
        self.resources = resources if resources is not None else {}
        self.tracer = tracer

    def run(self, name: str, task_factories: Iterable[TaskFactory]) -> PhaseStats:
        """Execute one phase; returns its :class:`PhaseStats`.

        All processors start at local time 0.  The phase's makespan is the
        maximum finish time; the caller adds barrier costs between phases.
        """
        factories = list(task_factories)
        n = len(factories)
        stats = [ProcessorStats(proc=i) for i in range(n)]
        gens = [factories[i](stats[i]) for i in range(n)]
        times = [0] * n
        # Simulated park time of processors blocked on flags.
        parked_at: dict[int, int] = {}
        finished = [False] * n

        queue = ReadyQueue()
        for i in range(n):
            queue.push(0, i)

        cm = self.cost_model
        flags = self.flags
        flag_check = cm.flag_check
        flag_set_cost = cm.flag_set
        tracer = self.tracer

        while queue:
            now, pid = queue.pop()
            gen = gens[pid]
            st = stats[pid]
            # Run this processor until it finishes, parks, or falls behind
            # another runnable processor.
            while True:
                try:
                    op = next(gen)
                except StopIteration:
                    st.finish_time = now
                    times[pid] = now
                    finished[pid] = True
                    break

                kind = op.kind
                if kind == OP_COMPUTE:
                    if tracer is not None:
                        tracer.record(pid, now, now + op.cycles, "compute")
                    now += op.cycles
                    st.compute_cycles += op.cycles
                elif kind == OP_WAIT_FLAG:
                    if flags is None:
                        raise RuntimeError(
                            f"phase {name!r} issued WaitFlag with no flag store"
                        )
                    set_t = flags.set_time[op.flag]
                    if set_t != UNSET:
                        if set_t > now:
                            st.wait_cycles += set_t - now
                            if tracer is not None:
                                tracer.record(pid, now, set_t, "wait")
                            now = set_t
                        if tracer is not None:
                            tracer.record(pid, now, now + flag_check, "compute")
                        now += flag_check
                        st.compute_cycles += flag_check
                        st.flag_checks += 1
                    else:
                        flags.park(op.flag, pid)
                        parked_at[pid] = now
                        times[pid] = now
                        break
                elif kind == OP_SET_FLAG:
                    if flags is None:
                        raise RuntimeError(
                            f"phase {name!r} issued SetFlag with no flag store"
                        )
                    if tracer is not None:
                        tracer.record(pid, now, now + flag_set_cost, "compute")
                    now += flag_set_cost
                    st.compute_cycles += flag_set_cost
                    st.flag_sets += 1
                    for waiter in flags.set(op.flag, now):
                        wstat = stats[waiter]
                        park_t = parked_at.pop(waiter)
                        resume = now if now > park_t else park_t
                        wstat.wait_cycles += resume - park_t
                        if tracer is not None:
                            tracer.record(waiter, park_t, resume, "wait")
                            tracer.record(
                                waiter, resume, resume + flag_check, "compute"
                            )
                        resume += flag_check
                        wstat.compute_cycles += flag_check
                        wstat.flag_checks += 1
                        times[waiter] = resume
                        queue.push(resume, waiter)
                elif kind == OP_USE_RESOURCE:
                    res = self.resources[op.resource]
                    release, queued = res.acquire(now, op.hold)
                    st.resource_wait_cycles += queued
                    st.compute_cycles += op.hold
                    if tracer is not None:
                        if queued:
                            tracer.record(pid, now, now + queued, "queue")
                        tracer.record(pid, now + queued, release, "compute")
                    now = release
                else:  # pragma: no cover - vocabulary is closed
                    raise RuntimeError(f"unknown op kind {kind}")

                # Keep running only while still globally earliest; this
                # preserves causal order of shared interactions.
                if queue and now > queue.peek_time():
                    times[pid] = now
                    queue.push(now, pid)
                    break

        if not all(finished):
            waiters = (
                flags.parked_processors() if flags is not None else {}
            )
            latest = max(times) if times else 0
            raise SimulationDeadlockError(waiters, latest)

        return PhaseStats(name=name, processors=stats)


class Machine:
    """Configuration bundle for a simulated shared-memory multiprocessor.

    Parameters
    ----------
    processors:
        Number of processors ``P`` (the paper uses 16).
    cost_model:
        Cycle cost constants; defaults to the calibrated model.
    bus:
        Enable the shared-bus contention model: every shared access emitted
        by the backends additionally occupies a serial bus resource for
        ``cost_model.bus_per_access`` cycles.
    coherence:
        Enable the write-invalidate coherence model: reading a renamed
        value last written by another processor costs an extra
        ``cost_model.coherence_miss`` cycles (see
        :class:`~repro.machine.costs.CostModel`).
    """

    def __init__(
        self,
        processors: int,
        cost_model: CostModel | None = None,
        bus: bool = False,
        coherence: bool = False,
    ):
        if processors < 1:
            raise ValueError(f"need at least one processor, got {processors}")
        self.processors = processors
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.bus = bus
        self.coherence = coherence
        if bus and self.cost_model.bus_per_access <= 0:
            raise ValueError(
                "bus modeling enabled but cost_model.bus_per_access is 0; "
                "set it to a positive cycle count"
            )
        if coherence and self.cost_model.coherence_miss <= 0:
            raise ValueError(
                "coherence modeling enabled but cost_model.coherence_miss "
                "is 0; set it to a positive cycle count"
            )

    def new_resources(self) -> dict[int, SerialResource]:
        """Fresh serial resources for one phase."""
        resources = {RES_DISPATCH: SerialResource("dispatch-counter")}
        if self.bus:
            resources[RES_BUS] = SerialResource("memory-bus")
        return resources

    def new_engine(
        self, flags: FlagStore | None = None, tracer=None
    ) -> Engine:
        """Fresh engine (with fresh resources) for one phase."""
        return Engine(
            self.cost_model,
            flags=flags,
            resources=self.new_resources(),
            tracer=tracer,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(processors={self.processors}, bus={self.bus})"
