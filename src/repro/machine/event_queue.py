"""Deterministic ready-queue for the discrete-event engine.

The engine must always advance the *globally earliest* runnable processor so
that shared interactions (flag sets, resource grants, dynamic chunk claims)
happen in causal order.  :class:`ReadyQueue` is a binary heap of
``(time, sequence, processor)`` entries; the monotone sequence number breaks
ties deterministically (earlier-pushed entries first), which makes every
simulation bit-reproducible.
"""

from __future__ import annotations

import heapq

__all__ = ["ReadyQueue"]


class ReadyQueue:
    """Min-heap of runnable processors keyed by local time.

    Invariant maintained by the engine: each processor has at most one entry
    in the queue (it is either running, queued once, parked on a flag, or
    finished).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int]] = []
        self._seq = 0

    def push(self, time: int, proc: int) -> None:
        heapq.heappush(self._heap, (time, self._seq, proc))
        self._seq += 1

    def pop(self) -> tuple[int, int]:
        """Remove and return ``(time, proc)`` for the earliest entry."""
        time, _, proc = heapq.heappop(self._heap)
        return time, proc

    def peek_time(self) -> int:
        """Earliest queued time; raises ``IndexError`` when empty."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
