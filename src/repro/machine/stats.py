"""Statistics collected by the simulated machine.

A run of a parallel loop decomposes into *phases* (inspector, executor,
postprocessor) separated by barriers.  The engine produces one
:class:`PhaseStats` per phase, built from per-processor
:class:`ProcessorStats`; :class:`repro.core.results.RunResult` aggregates
phases into the quantities the paper reports (total time, parallel
efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcessorStats", "PhaseStats"]


@dataclass
class ProcessorStats:
    """Cycle accounting for one processor within one phase."""

    proc: int
    compute_cycles: int = 0
    #: Cycles spent spinning on unset ``ready`` flags.
    wait_cycles: int = 0
    #: Cycles spent queued for serial resources (dispatch counter, bus).
    resource_wait_cycles: int = 0
    #: Number of flag checks issued (both immediate and after a spin).
    flag_checks: int = 0
    #: Number of flags set.
    flag_sets: int = 0
    #: Number of chunk grabs from the dispatch counter.
    dispatches: int = 0
    #: Coherence-model invalidation misses (reads of another processor's
    #: freshly written values); zero unless the machine enables coherence.
    coherence_misses: int = 0
    #: Number of loop iterations this processor executed.
    iterations: int = 0
    #: Local clock when the processor's task finished.
    finish_time: int = 0

    @property
    def total_cycles(self) -> int:
        """All cycles attributable to this processor in the phase."""
        return self.compute_cycles + self.wait_cycles + self.resource_wait_cycles

    def as_metrics(self) -> dict[str, int]:
        """Counter name → value pairs under the unified telemetry metric
        names (:mod:`repro.obs.metrics`), ready to fold into a registry."""
        return {
            "compute_cycles": self.compute_cycles,
            "wait_cycles": self.wait_cycles,
            "resource_wait_cycles": self.resource_wait_cycles,
            "flag_checks": self.flag_checks,
            "flag_sets": self.flag_sets,
            "dispatches": self.dispatches,
            "coherence_misses": self.coherence_misses,
            "iterations": self.iterations,
        }

    def merge(self, other: "ProcessorStats") -> "ProcessorStats":
        """Combine accounting from another phase on the same processor."""
        if other.proc != self.proc:
            raise ValueError(
                f"cannot merge stats of processor {other.proc} into {self.proc}"
            )
        return ProcessorStats(
            proc=self.proc,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            wait_cycles=self.wait_cycles + other.wait_cycles,
            resource_wait_cycles=self.resource_wait_cycles
            + other.resource_wait_cycles,
            flag_checks=self.flag_checks + other.flag_checks,
            flag_sets=self.flag_sets + other.flag_sets,
            dispatches=self.dispatches + other.dispatches,
            coherence_misses=self.coherence_misses + other.coherence_misses,
            iterations=self.iterations + other.iterations,
            finish_time=max(self.finish_time, other.finish_time),
        )


@dataclass
class PhaseStats:
    """Aggregate statistics for one phase of a parallel loop run."""

    name: str
    processors: list[ProcessorStats] = field(default_factory=list)

    @property
    def span(self) -> int:
        """Phase makespan: the latest processor finish time."""
        if not self.processors:
            return 0
        return max(p.finish_time for p in self.processors)

    @property
    def total_compute(self) -> int:
        return sum(p.compute_cycles for p in self.processors)

    @property
    def total_wait(self) -> int:
        return sum(p.wait_cycles for p in self.processors)

    @property
    def total_resource_wait(self) -> int:
        return sum(p.resource_wait_cycles for p in self.processors)

    @property
    def total_iterations(self) -> int:
        return sum(p.iterations for p in self.processors)

    def utilization(self) -> float:
        """Mean fraction of the makespan processors spent computing.

        Busy-wait cycles count as *wasted* (the processor is occupied but
        doing no useful work), matching the paper's efficiency definition.
        """
        span = self.span
        if span == 0 or not self.processors:
            return 0.0
        return self.total_compute / (span * len(self.processors))

    def summary_line(self) -> str:
        """One-line human-readable summary for traces and reports."""
        return (
            f"{self.name}: span={self.span} compute={self.total_compute} "
            f"wait={self.total_wait} queue={self.total_resource_wait} "
            f"iters={self.total_iterations} util={self.utilization():.3f}"
        )
