"""Iteration-to-processor scheduling policies.

The paper's parallel loops hand iterations to processors either statically or
via *self-scheduling* (a shared fetch-and-add counter).  This module provides
both families plus a guided variant, behind one small interface used by the
backends:

- static schedules precompute each processor's chunk list
  (:meth:`IterationSchedule.chunks_for`);
- dynamic schedules hand out chunks on demand (:meth:`IterationSchedule.claim`)
  in the order processors reach the dispatch counter — the engine's strict
  global-time ordering makes the claim order causally correct.

All policies share one crucial property, verified by tests: **every
processor receives its iterations in increasing position order**.  Together
with the doacross invariant that dependencies point backward in execution
order, this guarantees the busy-wait executor cannot deadlock (the smallest
unfinished iteration is always currently executable — see DESIGN.md §6).
"""

from __future__ import annotations

from repro.errors import ScheduleError

__all__ = [
    "SCHEDULE_KINDS",
    "IterationSchedule",
    "StaticBlockSchedule",
    "StaticCyclicSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "make_schedule",
]

#: Kind strings accepted by :func:`make_schedule`.
SCHEDULE_KINDS = ("block", "cyclic", "dynamic", "guided")


class IterationSchedule:
    """Base class: a policy for distributing ``n`` iterations over ``p``
    processors.

    Subclasses set :attr:`is_dynamic` and implement either
    :meth:`chunks_for` (static) or :meth:`claim` (dynamic).
    """

    is_dynamic = False

    def __init__(self, n: int, processors: int):
        if n < 0:
            raise ScheduleError(f"iteration count must be >= 0, got {n}")
        if processors < 1:
            raise ScheduleError(f"processor count must be >= 1, got {processors}")
        self.n = n
        self.processors = processors

    def chunks_for(self, proc: int) -> list[tuple[int, int]]:
        """Static chunk list ``[(start, stop), ...]`` for ``proc``."""
        raise NotImplementedError

    def claim(self) -> tuple[int, int] | None:
        """Dynamically claim the next chunk, or ``None`` when exhausted."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore a dynamic schedule for reuse (static schedules: no-op)."""

    # ------------------------------------------------------------------
    def validate_partition(self) -> None:
        """Check that a *static* schedule covers 0..n exactly once.

        Raises :class:`ScheduleError` on overlap or gap.  Dynamic schedules
        are validated by construction (a single monotone counter).
        """
        if self.is_dynamic:
            return
        seen = [False] * self.n
        for proc in range(self.processors):
            prev_stop = -1
            for start, stop in self.chunks_for(proc):
                if not (0 <= start <= stop <= self.n):
                    raise ScheduleError(
                        f"chunk ({start}, {stop}) out of range for n={self.n}"
                    )
                if start < prev_stop:
                    raise ScheduleError(
                        f"processor {proc} receives iterations out of order"
                    )
                prev_stop = stop
                for i in range(start, stop):
                    if seen[i]:
                        raise ScheduleError(f"iteration {i} assigned twice")
                    seen[i] = True
        missing = [i for i, s in enumerate(seen) if not s]
        if missing:
            raise ScheduleError(
                f"{len(missing)} iteration(s) unassigned, first: {missing[0]}"
            )


class StaticBlockSchedule(IterationSchedule):
    """Contiguous blocks: processor ``p`` gets iterations
    ``[p*ceil(n/P), ...)`` (the classic ``parallel do`` blocking of the
    paper's Figure-3 pre/postprocessing loops)."""

    def chunks_for(self, proc: int) -> list[tuple[int, int]]:
        if not 0 <= proc < self.processors:
            raise ScheduleError(f"no processor {proc} (P={self.processors})")
        # Balanced blocks: first (n % P) processors get one extra iteration.
        base, extra = divmod(self.n, self.processors)
        start = proc * base + min(proc, extra)
        stop = start + base + (1 if proc < extra else 0)
        if start == stop:
            return []
        return [(start, stop)]


class StaticCyclicSchedule(IterationSchedule):
    """Chunked round-robin: chunk ``k`` (of ``chunk`` iterations) goes to
    processor ``k mod P``."""

    def __init__(self, n: int, processors: int, chunk: int = 1):
        super().__init__(n, processors)
        if chunk < 1:
            raise ScheduleError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk

    def chunks_for(self, proc: int) -> list[tuple[int, int]]:
        if not 0 <= proc < self.processors:
            raise ScheduleError(f"no processor {proc} (P={self.processors})")
        out = []
        stride = self.chunk * self.processors
        start = proc * self.chunk
        while start < self.n:
            out.append((start, min(start + self.chunk, self.n)))
            start += stride
        return out


class DynamicSchedule(IterationSchedule):
    """Self-scheduling via a shared counter, ``chunk`` iterations per grab.

    This is the paper's default executor schedule: each grab models a
    fetch-and-add on a shared variable, serialized through the machine's
    dispatch resource (the backend charges ``cost_model.dispatch`` per
    claim)."""

    is_dynamic = True

    def __init__(self, n: int, processors: int, chunk: int = 4):
        super().__init__(n, processors)
        if chunk < 1:
            raise ScheduleError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk
        self._next = 0

    def claim(self) -> tuple[int, int] | None:
        if self._next >= self.n:
            return None
        start = self._next
        stop = min(start + self.chunk, self.n)
        self._next = stop
        return start, stop

    def reset(self) -> None:
        self._next = 0


class GuidedSchedule(IterationSchedule):
    """Guided self-scheduling: chunk size decays with remaining work,
    ``max(min_chunk, ceil(remaining / (2 P)))``.

    Large early chunks amortize dispatch cost; small late chunks balance the
    tail.  Included as an ablation point (DESIGN.md §5, Abl. A)."""

    is_dynamic = True

    def __init__(self, n: int, processors: int, min_chunk: int = 1):
        super().__init__(n, processors)
        if min_chunk < 1:
            raise ScheduleError(f"min_chunk must be >= 1, got {min_chunk}")
        self.min_chunk = min_chunk
        self._next = 0

    def claim(self) -> tuple[int, int] | None:
        if self._next >= self.n:
            return None
        remaining = self.n - self._next
        size = -(-remaining // (2 * self.processors))  # ceil division
        if size < self.min_chunk:
            size = self.min_chunk
        start = self._next
        stop = min(start + size, self.n)
        self._next = stop
        return start, stop

    def reset(self) -> None:
        self._next = 0


def make_schedule(
    kind: str, n: int, processors: int, chunk: int = 4
) -> IterationSchedule:
    """Factory: ``kind`` is one of ``"block"``, ``"cyclic"``, ``"dynamic"``,
    ``"guided"``.  ``chunk`` is the cyclic/dynamic chunk size or the guided
    minimum chunk."""
    if kind == "block":
        return StaticBlockSchedule(n, processors)
    if kind == "cyclic":
        return StaticCyclicSchedule(n, processors, chunk=chunk)
    if kind == "dynamic":
        return DynamicSchedule(n, processors, chunk=chunk)
    if kind == "guided":
        return GuidedSchedule(n, processors, min_chunk=chunk)
    raise ScheduleError(
        f"unknown schedule kind {kind!r}; expected block/cyclic/dynamic/guided"
    )
