"""Operation vocabulary for simulated processor tasks.

A *task* is a Python generator that yields these operation objects; the
:class:`~repro.machine.engine.Engine` interprets each one, advancing the
issuing processor's local clock.  The vocabulary is deliberately tiny — it is
exactly what the paper's transformed loops need:

- :class:`Compute` — spend cycles doing local work (arithmetic, private
  loads/stores).  Cost aggregation is the caller's job: a whole iteration
  body's arithmetic is typically charged as one ``Compute``.
- :class:`WaitFlag` — busy-wait until a shared flag is set (the paper's
  ``while (ready(off) .ne. DONE)`` loop, Figure 5 statement S4).  The
  processor is *occupied* while waiting: it cannot pick up other work, and
  the wasted cycles are accounted as ``wait_cycles``.
- :class:`SetFlag` — set a shared flag (Figure 5's ``ready(a(i)) = DONE``).
- :class:`UseResource` — occupy a serially-reusable resource for a number of
  cycles (the self-scheduling fetch-and-add counter, or the optional shared
  memory bus).  Requests are granted in global simulated-time order.

Each op class carries an integer ``kind`` used for fast dispatch in the
engine's inner loop.
"""

from __future__ import annotations

__all__ = [
    "OP_COMPUTE",
    "OP_WAIT_FLAG",
    "OP_SET_FLAG",
    "OP_USE_RESOURCE",
    "Compute",
    "WaitFlag",
    "SetFlag",
    "UseResource",
]

OP_COMPUTE = 0
OP_WAIT_FLAG = 1
OP_SET_FLAG = 2
OP_USE_RESOURCE = 3


class Compute:
    """Spend ``cycles`` cycles of local computation."""

    __slots__ = ("cycles",)
    kind = OP_COMPUTE

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError(f"Compute cycles must be >= 0, got {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute({self.cycles})"


class WaitFlag:
    """Busy-wait until flag ``flag`` is set.

    If the flag is already set when the wait is issued, only the flag-check
    cost is charged.  Otherwise the processor spins until the flag's set
    time; the difference is accounted as busy-wait cycles.
    """

    __slots__ = ("flag",)
    kind = OP_WAIT_FLAG

    def __init__(self, flag: int):
        self.flag = flag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitFlag({self.flag})"


class SetFlag:
    """Set flag ``flag``, waking any processors busy-waiting on it."""

    __slots__ = ("flag",)
    kind = OP_SET_FLAG

    def __init__(self, flag: int):
        self.flag = flag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetFlag({self.flag})"


class UseResource:
    """Acquire serially-reusable resource ``resource`` for ``hold`` cycles.

    The engine grants requests in global-time order; time spent queued is
    accounted as ``resource_wait_cycles`` on the issuing processor.
    """

    __slots__ = ("resource", "hold")
    kind = OP_USE_RESOURCE

    def __init__(self, resource: int, hold: int):
        if hold < 0:
            raise ValueError(f"UseResource hold must be >= 0, got {hold}")
        self.resource = resource
        self.hold = hold

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UseResource({self.resource}, hold={self.hold})"
