"""Cycle cost model for the simulated multiprocessor.

All times in the simulation are integer cycles.  Costs split into two
groups:

**Machinery costs** (:class:`CostModel`) — what the *transformation* adds:
inspector/postprocessor stores, the per-term ``iter`` check, flag traffic,
dispatch, barriers.  These are properties of the doacross runtime and are
shared by every loop.

**Work costs** (:class:`WorkProfile`) — what the *source loop* does per
iteration: its loop-control overhead and its per-term arithmetic.  Different
source loops legitimately differ (the paper's Figure-7 triangular-solve row
is several times heavier than a Figure-4 term: indirect ``column(j)``
addressing, ``low/high`` bounds loads, a ``y(i)`` store per term), so each
:class:`~repro.ir.loop.IrregularLoop` may carry its own profile; loops
without one use the :class:`CostModel` defaults.

Each term's work further splits into ``term_setup`` (loading the
coefficient and index, computing the offset — work a busy-waiting processor
has already completed before the awaited flag flips) and ``term_consume``
(loading the awaited value, the multiply-add — work that can only start
after the flag).  The split is what lets dependence chains pipeline at the
hardware-realistic rate: after a wake-up only ``consume`` remains.

Calibration (DESIGN.md §7): with the defaults, the zero-dependence
efficiency plateau of the Figure-6 experiment is
``10/30 ≈ 0.33`` (``M=1``) and ``34/70 ≈ 0.49`` (``M=5``), matching the
paper; the triangular-solve profile (see
:func:`repro.sparse.trisolve.TRISOLVE_WORK`) reproduces the Table-1 bands.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import CalibrationError

__all__ = ["CostModel", "WorkProfile"]


@dataclass(frozen=True)
class WorkProfile:
    """Per-iteration source-loop work, in cycles.

    Attributes
    ----------
    overhead:
        Loop control, induction-variable and address arithmetic per
        iteration of the *original* loop (also paid by the executor).
    term_setup:
        Per-term work available before the term's value: coefficient and
        index loads, offset computation.
    term_consume:
        Per-term work needing the value: the load of ``y``/``ynew`` at the
        offset and the multiply-add.
    """

    overhead: int = 4
    term_setup: int = 4
    term_consume: int = 2

    def __post_init__(self) -> None:
        for name in ("overhead", "term_setup", "term_consume"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise CalibrationError(
                    f"work profile field {name!r} must be a non-negative "
                    f"int, got {value!r}"
                )

    @property
    def term(self) -> int:
        """Total per-term work."""
        return self.term_setup + self.term_consume


@dataclass(frozen=True)
class CostModel:
    """Machinery cycle costs of the doacross runtime plus the default
    :class:`WorkProfile`.

    Glossary (cycles):

    ``pre_iter``
        One inspector iteration: ``iter(a(i)) = i`` (Figure 3).
    ``post_iter``
        One postprocessor iteration: reset ``iter``/``ready``, copy
        ``ynew → yold`` (Figure 3).
    ``exec_iter_overhead``
        Executor machinery per iteration beyond the source loop's own
        overhead: the ``ynew(a(i)) = y(a(i))`` renaming init and the final
        renamed store (Figure 5, S2 and the closing store).
    ``dep_check``
        Per-term run-time dependence check: load ``iter(offset)``, compare,
        branch (Figure 5, S3/S6).
    ``flag_check`` / ``flag_set``
        One ``ready`` read (a busy-wait trip) / one ``ready`` store.
    ``dispatch``
        One self-scheduling counter grab (serialized).
    ``barrier_base`` + ``barrier_per_proc * P``
        Inter-phase barrier.
    ``bus_per_access``
        Optional bus occupancy per shared access (contention model).
    """

    # Default source-loop work (Figure-4-like).
    work: WorkProfile = WorkProfile()
    # Transformation machinery.
    pre_iter: int = 4
    post_iter: int = 8
    #: Reduced postprocessor iteration used between instances of an
    #: amortized (inspector-reused) doacross: ``ready`` reset and
    #: ``ynew → y`` copy only — ``iter`` stays valid, saving one store.
    post_iter_amortized: int = 6
    exec_iter_overhead: int = 2
    dep_check: int = 4
    flag_check: int = 2
    flag_set: int = 2
    dispatch: int = 12
    barrier_base: int = 20
    barrier_per_proc: int = 4
    bus_per_access: int = 0
    #: When the coherence model is enabled, extra cycles charged for
    #: reading a renamed (``ynew``) value most recently written by a
    #: *different* processor — the invalidation-miss transfer of a
    #: write-invalidate protocol.  Same-processor re-reads are cache hits.
    coherence_miss: int = 0

    #: Simulated cycles per microsecond, used only to render human-readable
    #: "milliseconds" in Table-1 style reports (the paper reports ms).
    cycles_per_us: int = 10

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name == "work":
                continue
            value = getattr(self, f.name)
            if not isinstance(value, int):
                raise CalibrationError(
                    f"cost model field {f.name!r} must be an int, got "
                    f"{type(value).__name__}"
                )
            if value < 0:
                raise CalibrationError(
                    f"cost model field {f.name!r} must be >= 0, got {value}"
                )
        if self.cycles_per_us <= 0:
            raise CalibrationError("cycles_per_us must be positive")

    # ------------------------------------------------------------------
    def effective_work(self, profile: WorkProfile | None) -> WorkProfile:
        """The loop's profile, or this model's default."""
        return profile if profile is not None else self.work

    def seq_iteration(self, terms: int, profile: WorkProfile | None = None) -> int:
        """Sequential cost of one original-loop iteration."""
        w = self.effective_work(profile)
        return w.overhead + terms * w.term

    def exec_iteration_base(
        self, terms: int, profile: WorkProfile | None = None
    ) -> int:
        """Executor cost of one transformed iteration, *excluding*
        busy-waits, flag traffic, and dispatch."""
        w = self.effective_work(profile)
        return (
            self.exec_iter_overhead
            + w.overhead
            + terms * (w.term + self.dep_check)
        )

    def barrier(self, processors: int) -> int:
        """Cost of one inter-phase barrier across ``processors``."""
        return self.barrier_base + self.barrier_per_proc * processors

    def overhead_plateau(
        self, terms: int, profile: WorkProfile | None = None
    ) -> float:
        """Analytic zero-dependence efficiency plateau (DESIGN.md §7):
        sequential iteration cost over total transformed per-iteration cost
        (inspector + executor + postprocessor shares, flag set included)."""
        transformed = (
            self.pre_iter
            + self.post_iter
            + self.exec_iteration_base(terms, profile)
            + self.flag_set
        )
        return self.seq_iteration(terms, profile) / transformed

    def cycles_to_ms(self, cycles: int) -> float:
        """Render simulated cycles as milliseconds for report tables."""
        return cycles / (self.cycles_per_us * 1000.0)

    def scaled(self, **overrides) -> "CostModel":
        """Return a copy with some fields replaced (ablation helper)."""
        return replace(self, **overrides)
