"""Execution tracing: per-processor timelines of simulated runs.

When a :class:`Tracer` is attached to an engine, every state change is
recorded as a ``(processor, start, end, kind)`` segment:

- ``compute`` — useful work (including flag checks/sets and resource holds);
- ``wait``    — busy-waiting on an unset ``ready`` flag;
- ``queue``   — queued for a serial resource (dispatch counter, bus).

The trace supports exact accounting cross-checks against
:class:`~repro.machine.stats.ProcessorStats` (tested invariant) and renders
a Gantt-style ASCII chart — the fastest way to *see* why a schedule loses:
chains show up as staircases of ``.`` (wait) between slivers of ``#``
(compute).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEG_COMPUTE", "SEG_WAIT", "SEG_QUEUE", "Segment", "Tracer"]

SEG_COMPUTE = "compute"
SEG_WAIT = "wait"
SEG_QUEUE = "queue"

_GANTT_GLYPH = {SEG_COMPUTE: "#", SEG_WAIT: ".", SEG_QUEUE: "~"}


@dataclass(frozen=True)
class Segment:
    """One contiguous state interval on one processor."""

    proc: int
    start: int
    end: int
    kind: str

    @property
    def length(self) -> int:
        return self.end - self.start


class Tracer:
    """Collects segments during one engine phase (or several)."""

    def __init__(self) -> None:
        self.segments: list[Segment] = []

    def record(self, proc: int, start: int, end: int, kind: str) -> None:
        """Record a segment; zero-length segments are dropped, adjacent
        same-kind segments on the same processor are merged."""
        if end <= start:
            return
        if self.segments:
            last = self.segments[-1]
            if (
                last.proc == proc
                and last.kind == kind
                and last.end == start
            ):
                self.segments[-1] = Segment(proc, last.start, end, kind)
                return
        self.segments.append(Segment(proc, start, end, kind))

    # ------------------------------------------------------------------
    def by_processor(self) -> dict[int, list[Segment]]:
        out: dict[int, list[Segment]] = {}
        for seg in self.segments:
            out.setdefault(seg.proc, []).append(seg)
        for segs in out.values():
            segs.sort(key=lambda s: s.start)
        return out

    def total(self, kind: str, proc: int | None = None) -> int:
        """Total cycles in segments of ``kind`` (optionally one processor)."""
        return sum(
            s.length
            for s in self.segments
            if s.kind == kind and (proc is None or s.proc == proc)
        )

    def span(self) -> int:
        if not self.segments:
            return 0
        return max(s.end for s in self.segments)

    def validate_non_overlapping(self) -> None:
        """Assert each processor's segments are disjoint and ordered (a
        simulator-sanity invariant, exercised by tests)."""
        for proc, segs in self.by_processor().items():
            for a, b in zip(segs, segs[1:]):
                if b.start < a.end:
                    raise AssertionError(
                        f"processor {proc}: segment {b} overlaps {a}"
                    )

    # ------------------------------------------------------------------
    def to_spans(self, offset: int = 0) -> list:
        """The trace as :class:`~repro.obs.spans.Span` objects (cycle
        clock), shifted by ``offset`` — the bridge from the simulated
        backend's per-processor timeline into the unified telemetry model.
        Segment kinds map one-to-one onto span categories."""
        from repro.obs.spans import CAT_COMPUTE, CAT_QUEUE, CAT_WAIT, Span

        category = {
            SEG_COMPUTE: CAT_COMPUTE,
            SEG_WAIT: CAT_WAIT,
            SEG_QUEUE: CAT_QUEUE,
        }
        return [
            Span(
                name=seg.kind,
                cat=category[seg.kind],
                start=float(seg.start + offset),
                end=float(seg.end + offset),
                lane=seg.proc,
            )
            for seg in self.segments
        ]

    # ------------------------------------------------------------------
    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart: one row per processor, ``#`` compute,
        ``.`` busy-wait, ``~`` resource queueing, space idle."""
        span = self.span()
        if span == 0:
            return "(empty trace)"
        by_proc = self.by_processor()
        lines = [
            f"t = 0 .. {span} cycles   ('#' compute, '.' busy-wait, "
            f"'~' queued, ' ' idle)"
        ]
        for proc in sorted(by_proc):
            row = [" "] * width
            for seg in by_proc[proc]:
                c0 = int(seg.start / span * width)
                c1 = max(c0 + 1, int(seg.end / span * width))
                glyph = _GANTT_GLYPH.get(seg.kind, "?")
                for c in range(c0, min(c1, width)):
                    # Compute wins over wait wins over queue when segments
                    # share a column at this resolution.
                    current = row[c]
                    if current == " " or glyph == "#" or (
                        glyph == "." and current == "~"
                    ):
                        row[c] = glyph
            lines.append(f"p{proc:<3d}|{''.join(row)}|")
        return "\n".join(lines)
