"""Simulated busy-wait synchronization flags.

Models the paper's ``ready`` array: one flag per shared array element, each
either *unset* (``NOTDONE``) or set at a known simulated time (``DONE``).
Processors that issue a :class:`~repro.machine.ops.WaitFlag` on an unset flag
are parked by the engine and recorded here as waiters; when the flag is set
the engine resumes them at the set time.

Flags can be :meth:`reset` between loop invocations — the simulated analogue
of the paper's postprocessing phase making ``ready`` reusable (the *cost* of
that reset is charged by the postprocessor phase itself; ``reset`` here only
restores simulator state).
"""

from __future__ import annotations

__all__ = ["UNSET", "FlagStore"]

#: Sentinel set-time meaning "flag not set".
UNSET = -1


class FlagStore:
    """A dense store of ``size`` busy-wait flags.

    Attributes
    ----------
    set_time:
        ``set_time[f]`` is the simulated cycle at which flag ``f`` was set,
        or :data:`UNSET`.
    waiters:
        ``waiters[f]`` is the list of processor ids currently parked on flag
        ``f`` (present only while non-empty).
    """

    __slots__ = ("size", "set_time", "waiters", "total_sets")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"flag store size must be >= 0, got {size}")
        self.size = size
        self.set_time: list[int] = [UNSET] * size
        self.waiters: dict[int, list[int]] = {}
        self.total_sets = 0

    def is_set(self, flag: int) -> bool:
        return self.set_time[flag] != UNSET

    def set(self, flag: int, time: int) -> list[int]:
        """Set ``flag`` at ``time``; return the processors to wake.

        Setting an already-set flag is rejected: in the paper's protocol
        every element is written by exactly one iteration (no output
        dependencies), so a double set indicates a transformation bug.
        """
        if self.set_time[flag] != UNSET:
            raise ValueError(
                f"flag {flag} set twice (first at t={self.set_time[flag]}, "
                f"again at t={time}); write subscript not injective?"
            )
        self.set_time[flag] = time
        self.total_sets += 1
        return self.waiters.pop(flag, [])

    def park(self, flag: int, proc: int) -> None:
        """Record ``proc`` as busy-waiting on unset ``flag``."""
        self.waiters.setdefault(flag, []).append(proc)

    def reset(self) -> None:
        """Clear all flags for reuse by a subsequent loop invocation.

        Raises if any processor is still parked — resetting under waiters
        would lose wake-ups and deadlock the simulation.
        """
        if self.waiters:
            raise ValueError(
                f"cannot reset flag store with parked waiters: {self.waiters}"
            )
        self.set_time = [UNSET] * self.size

    def parked_processors(self) -> dict[int, int]:
        """Map of parked processor id → flag it waits on (for diagnostics)."""
        out: dict[int, int] = {}
        for flag, procs in self.waiters.items():
            for p in procs:
                out[p] = flag
        return out
