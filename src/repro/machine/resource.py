"""Serially-reusable resources for the simulated machine.

Two things in the modeled system serialize concurrent processors:

- the **self-scheduling counter** — the shared fetch-and-add variable that
  dynamic schedules use to hand out iteration chunks; only one processor can
  update it per ``dispatch`` window, and

- the optional **memory bus** — when bus modeling is enabled every shared
  access also occupies the bus briefly, so heavy sharing shows up as queueing
  delay (ablation E in DESIGN.md §5).

Both are modeled by :class:`SerialResource`: a single-server FCFS queue in
simulated time.  Because the engine advances processors in strict global-time
order, granting each request at ``max(now, free_at)`` realizes exact
first-come-first-served service.
"""

from __future__ import annotations

__all__ = ["SerialResource"]


class SerialResource:
    """A single-server FCFS resource.

    Attributes
    ----------
    free_at:
        Earliest simulated time at which the next request can be granted.
    busy_cycles:
        Total cycles the resource has been held (utilization numerator).
    queue_cycles:
        Total cycles requesters spent waiting for a grant.
    grants:
        Number of completed acquisitions.
    """

    __slots__ = ("name", "free_at", "busy_cycles", "queue_cycles", "grants")

    def __init__(self, name: str = "resource"):
        self.name = name
        self.free_at = 0
        self.busy_cycles = 0
        self.queue_cycles = 0
        self.grants = 0

    def acquire(self, now: int, hold: int) -> tuple[int, int]:
        """Grant the resource to a requester arriving at ``now``.

        Returns ``(release_time, queued_cycles)``: the requester resumes at
        ``release_time`` and spent ``queued_cycles`` waiting in line.
        """
        start = self.free_at if self.free_at > now else now
        release = start + hold
        self.free_at = release
        self.busy_cycles += hold
        queued = start - now
        self.queue_cycles += queued
        self.grants += 1
        return release, queued

    def utilization(self, span: int) -> float:
        """Fraction of ``span`` cycles the resource was held."""
        if span <= 0:
            return 0.0
        return self.busy_cycles / span

    def reset(self) -> None:
        self.free_at = 0
        self.busy_cycles = 0
        self.queue_cycles = 0
        self.grants = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SerialResource({self.name!r}, free_at={self.free_at}, "
            f"grants={self.grants}, busy={self.busy_cycles})"
        )
