"""Command-line front door: ``python -m repro <command>``.

Commands
--------
``figure6 [N]``
    Regenerate the paper's Figure 6 (default N=10000) with shape check.
``table1 [--small]``
    Regenerate the paper's Table 1 (``--small``: reduced grids).
``ablations [--small]``
    Run all ablation sweeps (A–G) and print their tables.
``table2 [--small] [k]``
    The amortization extension experiment (per-solve cost over k solves).
``krylov [--small]``
    The §3.2 Krylov motivation experiment.
``verify [n] [seed]``
    Cross-strategy verification of a random irregular loop (default
    n=200, seed=0) — every applicable strategy vs. the sequential oracle.
``codegen [kind]``
    Print the transformed pseudo-Fortran source the "compiler" emits for a
    sample loop; ``kind`` is ``irregular`` (default), ``affine``,
    ``chain``, or ``independent``.
``bench-vectorized [--small] [--json] [n]``
    Measured wall clock: sequential vs. threaded vs. vectorized backends
    plus the inspector-cache amortization curve (default n=100000;
    ``--small``: smoke size for CI).
``bench-threaded [--small] [--json] [n]``
    Threaded-backend smoke benchmark: wall clock plus the telemetry-derived
    busy-wait accounting, written to ``BENCH_threaded.json``.
``bench-multiproc [--small] [--json] [nx]``
    Cross-backend wall-clock race on a ≥50k-iteration sparse triangular
    solve: threaded vs. vectorized vs. multiproc across worker counts and
    chunk sizes, written to ``BENCH_multiproc.json`` (``--small``: smoke
    grid for CI, correctness checks only).
``bench-speculative [--small] [--json] [n]``
    Conflict-density frontier sweep: race the speculative backend
    against the threaded/vectorized inspector paths and the sequential
    oracle while dialing the fraction of conflicting chunk boundaries
    from 0 (DOALL) to 1 (dense chain), written to
    ``BENCH_speculative.json`` (``--small``: smoke size for CI,
    correctness and rollback-counter checks only).
``bench-autotune [--small] [--json]``
    Race ``backend="auto"`` (the telemetry-driven tuner) against every
    fixed wall-clock backend on the chain / stencil / gather-scatter
    families, written to ``BENCH_autotune.json``; fails if auto is
    slower than the median fixed backend on any workload.
``profile [--backend=NAME|auto] [--loop=SPEC] [--processors=P]
        [--schedule=KIND] [--chunk=K] [--export=chrome|jsonl OUT]
        [--gantt] [--json]``
    Run one builtin workload with telemetry on and print its phase/metric
    breakdown plus the schedule plan (pass list, resolved backend, tuner
    decision under ``--backend=auto``); ``--export=chrome trace.json``
    writes a ``chrome://tracing``-loadable trace-event file.
``demo [--backend=simulated|threaded|vectorized]``
    Two-minute tour: run a dependence-carrying Figure-4 loop, print the
    result summary and (simulated backend) an executor-phase Gantt chart.
``lint <target>... [--json] [--schedule=KIND] [--chunk=K]
      [--processors=P] [--strip-block=B] [--backend=NAME]
      [--rules=A,B] [--strict] [--baseline=FILE] [--write-baseline=FILE]``
    Static analysis: run the paper-grounded lint rules (and, with
    ``--backend``, the happens-before race checker) over loops from a
    ``.py`` file, a directory of examples, or a builtin spec
    (``figure4:n=200,l=8``, ``chain:n=100,d=1``, ``random:seed=3``).
    ``--baseline`` suppresses previously recorded findings so a CI gate
    fails only on new diagnostics; ``--write-baseline`` records them.
``analyze <target>... [--json] [--cross-check]``
    Symbolic dependence analysis: print each loop's proof-carrying
    verdict (doall-proven / constant-distance / injective-write /
    runtime-only); ``--cross-check`` validates every verdict against the
    runtime inspector and exits 1 on any mismatch.  Targets are resolved
    like ``lint`` targets.
``bench-elision [--small] [--json] [n]``
    Measured wall clock of the symbolic inspector elision: full runtime
    inspector vs. ``analyze="symbolic"`` closed-form preprocessing on
    proven-affine workloads, written to ``BENCH_elision.json``.
``sanitize <target>... [--backend=NAME] [--processors=P] [--json]
         [--strict] | --mutants [--min-kill=F]``
    Dynamic execution sanitizer: run each loop under
    ``validate="sanitize"`` (shadow-logged accesses replayed with vector
    clocks against the loop's true dependences) and report witnessed
    happens-before violations; targets are resolved like ``lint``
    targets.  ``--mutants`` runs the schedule-mutation harness instead
    and gates on the detector's kill rate (default floor 0.9).
``bench-sanitize [--small] [--json] [nx]``
    Sanitizer overhead benchmark: the ≥50k-row sparse triangular solve
    with and without ``validate="sanitize"``, gated at 5× overhead,
    written to ``BENCH_sanitize.json``.
``bench-deptest [--small] [--json] [n]``
    Dependence-distance elision benchmark: the battery-proven group
    barriers vs. the per-element post/wait protocol on distance-k chain
    and stencil workloads, gated at ≥30% fewer post/wait operations,
    written to ``BENCH_deptest.json``.
``bench-all [--quick] [--only=a,b] [--list] [--history=PATH]
        [--no-history] [--out-dir=DIR]``
    Run every registered benchmark through one orchestrator, write each
    ``BENCH_*.json`` artifact with a provenance stamp (git SHA, ISO
    date, machine fingerprint), and append normalized rows to the
    append-only ``BENCH_history.jsonl`` (``--quick``: reduced CI sizes).
``perf compare [--history=PATH] [--window=N] [--threshold=F]
        [--min-effect=S] [--min-baseline=N] [--json] [--report]``
    Statistical regression gate over the benchmark history: per
    (benchmark, backend, n) key, the newest commit's median against a
    MAD-outlier-rejected baseline window; exits 1 on regression
    (``--report``: print but always exit 0 — the CI soft-fail mode).
``doctor [SPEC] [--backend=NAME] [--processors=P] [--telemetry=FILE]
        [--json]``
    The telemetry-driven perf doctor: run a builtin loop observed (or
    load a saved spans ``.jsonl`` / bench artifact) and print structured
    findings — busy-wait share vs the §3 amortization argument, load
    imbalance, narrow wavefronts, inspector-dominant runs, cold caches —
    each with a machine-readable recommendation the auto-tuner can
    consume as a prior.
``version``
    Print the package version.
"""

from __future__ import annotations

import sys

from repro._version import __version__

USAGE = __doc__


def _demo(args: list[str]) -> int:
    import repro

    backend = "simulated"
    for a in args:
        if a.startswith("--backend="):
            backend = a.split("=", 1)[1]
        else:
            print(f"unknown demo option {a!r}")
            return 2
    if backend not in repro.BACKENDS:
        print(
            f"unknown backend {backend!r}; "
            f"expected one of {', '.join(repro.BACKENDS)}"
        )
        return 2
    if backend != "simulated":
        loop = repro.make_test_loop(n=600, m=2, l=8)
        result, plan = repro.parallelize(loop, backend=backend)
        print(f"plan: {plan.describe()}")
        print(result.summary())
        import numpy as np

        assert np.array_equal(result.y, loop.run_sequential())
        print("output equals the sequential oracle: yes")
        return 0

    loop = repro.make_test_loop(n=600, m=2, l=8)
    runner = repro.PreprocessedDoacross(processors=8)
    result = runner.run(loop)
    print(result.summary())
    print()
    reordered = repro.Doconsider(doacross=runner).run(loop)
    print("after doconsider reordering:")
    print(reordered.summary())

    # The iconic picture: a distance-1 recurrence under *block* scheduling
    # serializes into a staircase of busy-waits ('.'), while cyclic chunk-1
    # pipelines it (dense '#').
    chain = repro.chain_loop(240, 1)
    print("\ndistance-1 chain, block schedule (staircase of busy-waits):")
    blocked = runner.run(chain, schedule="block", trace=True)
    print(blocked.extras["trace"].gantt(width=72))
    print("\nsame chain, cyclic chunk-1 schedule (pipelined):")
    pipelined = runner.run(chain, schedule="cyclic", chunk=1, trace=True)
    print(pipelined.extras["trace"].gantt(width=72))
    print(
        f"\nblock: {blocked.total_cycles} cycles;  "
        f"cyclic-1: {pipelined.total_cycles} cycles"
    )
    return 0


def _verify(args: list[str]) -> int:
    import repro

    n = int(args[0]) if args else 200
    seed = int(args[1]) if len(args) > 1 else 0
    loop = repro.random_irregular_loop(n, seed=seed)
    report = repro.verify_loop(loop)
    print(report.summary())
    return 0 if report.passed else 1


def _codegen(args: list[str]) -> int:
    import repro
    from repro.ir.codegen import generate_source
    from repro.ir.transform import plan_transform

    kind = args[0] if args else "irregular"
    if kind == "irregular":
        loop = repro.random_irregular_loop(100, seed=0)
        plan = plan_transform(loop)
    elif kind == "affine":
        loop = repro.make_test_loop(n=100, m=2, l=6)
        plan = plan_transform(loop)
    elif kind == "chain":
        loop = repro.chain_loop(100, 4)
        plan = plan_transform(loop, known_distance=4)
    elif kind == "independent":
        loop = repro.random_irregular_loop(100, max_terms=0, seed=0)
        plan = plan_transform(loop, assert_independent=True)
    else:
        print(f"unknown codegen kind {kind!r}")
        return 2
    print(generate_source(loop, plan))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help", "help"):
        print(USAGE)
        return 0
    command, rest = args[0], args[1:]
    if command == "version":
        print(__version__)
        return 0
    if command == "figure6":
        from repro.bench.figure6 import main as figure6_main

        return figure6_main(rest)
    if command == "table1":
        from repro.bench.table1 import main as table1_main

        return table1_main(rest)
    if command == "ablations":
        from repro.bench.ablations import main as ablations_main

        return ablations_main(rest)
    if command == "table2":
        from repro.bench.amortized_table import main as table2_main

        return table2_main(rest)
    if command == "krylov":
        from repro.bench.krylov_fraction import main as krylov_main

        return krylov_main(rest)
    if command == "bench-vectorized":
        from repro.bench.bench_vectorized import main as bench_vec_main

        return bench_vec_main(rest)
    if command == "bench-threaded":
        from repro.bench.bench_threaded import main as bench_thr_main

        return bench_thr_main(rest)
    if command == "bench-multiproc":
        from repro.bench.bench_multiproc import main as bench_mp_main

        return bench_mp_main(rest)
    if command == "profile":
        from repro.obs.cli import main as profile_main

        return profile_main(rest)
    if command == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(rest)
    if command == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(rest)
    if command == "bench-elision":
        from repro.bench.bench_elision import main as bench_eli_main

        return bench_eli_main(rest)
    if command == "sanitize":
        from repro.sanitize.cli import main as sanitize_main

        return sanitize_main(rest)
    if command == "bench-sanitize":
        from repro.bench.bench_sanitize import main as bench_san_main

        return bench_san_main(rest)
    if command == "bench-deptest":
        from repro.bench.bench_deptest import main as bench_dt_main

        return bench_dt_main(rest)
    if command == "bench-autotune":
        from repro.bench.bench_autotune import main as bench_at_main

        return bench_at_main(rest)
    if command == "bench-speculative":
        from repro.bench.bench_speculative import main as bench_spec_main

        return bench_spec_main(rest)
    if command == "bench-all":
        from repro.perf.cli import bench_all_main

        return bench_all_main(rest)
    if command == "perf":
        from repro.perf.cli import main as perf_main

        return perf_main(rest)
    if command == "doctor":
        from repro.perf.cli import doctor_main

        return doctor_main(rest)
    if command == "verify":
        return _verify(rest)
    if command == "codegen":
        return _codegen(rest)
    if command == "demo":
        return _demo(rest)
    print(f"unknown command {command!r}\n")
    print(USAGE)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
