"""Ablation experiments (DESIGN.md §5, Abl. A–E).

Each function sweeps one design knob the paper discusses (or that the
implementation exposes) and returns :class:`ExperimentRow` records; the
``benchmarks/bench_ablation_*.py`` files drive them under pytest-benchmark
and ``python -m repro.bench.ablations`` prints them all.

- **A. Scheduling** — schedule kind × chunk size on the Figure-4 loop:
  chunked schedules break the term-level pipelining of short-distance
  chains (adjacent iterations land on the same processor), while chunk-1
  cyclic maximizes overlap; dynamic self-scheduling pays dispatch
  serialization on top.
- **B. Strip-mining** — §2.3's block size: smaller blocks shrink the
  modeled scratch footprint but add barriers and cut cross-block overlap.
- **C. Linear subscript** — §2.3's inspector elimination: identical
  executor, inspector phase removed.
- **D. Processor sweep** — Table-1 problems at P ∈ {1..32}.
- **E. Bus contention** — the optional shared-bus model on/off.
- **F. Coherence / locality** — with invalidation misses priced, chain
  pipelining (cyclic chunk-1, every dependence crosses caches) trades off
  against locality (block schedules keep chains in one cache).
- **G. Inspector amortization** — repeated instances of one loop share a
  single inspector pass; the per-instance cost converges to executor +
  reduced postprocessor.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bench.harness import ExperimentRow
from repro.bench.reporting import format_table
from repro.core.amortized import AmortizedDoacross
from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.workloads.synthetic import chain_loop
from repro.machine.costs import CostModel
from repro.sparse.ilu import ilu0
from repro.sparse.spe import paper_problems
from repro.sparse.trisolve import lower_solve_loop
from repro.workloads.testloop import make_test_loop

__all__ = [
    "ablation_scheduling",
    "ablation_stripmine",
    "ablation_linear",
    "ablation_processors",
    "ablation_processors_testloop",
    "ablation_bus",
    "ablation_coherence",
    "ablation_amortization",
    "main",
]


def ablation_scheduling(
    n: int = 10000,
    m: int = 1,
    l: int = 8,
    processors: int = 16,
    kinds: tuple[str, ...] = ("cyclic", "block", "dynamic", "guided"),
    chunks: tuple[int, ...] = (1, 4, 16, 64),
) -> list[ExperimentRow]:
    """Abl. A: schedule kind × chunk size on a dependence-carrying
    Figure-4 configuration."""
    loop = make_test_loop(n=n, m=m, l=l)
    rows = []
    for kind in kinds:
        for chunk in chunks:
            if kind == "block" and chunk != chunks[0]:
                continue  # block scheduling has no chunk knob
            runner = PreprocessedDoacross(
                processors=processors, schedule=kind, chunk=chunk
            )
            result = runner.run(loop)
            rows.append(
                ExperimentRow(
                    label=f"{kind}/chunk={chunk}",
                    params={"kind": kind, "chunk": chunk},
                    result=result,
                )
            )
    return rows


def ablation_stripmine(
    n: int = 10000,
    m: int = 2,
    l: int = 8,
    processors: int = 16,
    blocks: tuple[int, ...] = (250, 500, 1000, 2500, 10000),
) -> list[ExperimentRow]:
    """Abl. B: §2.3 strip-mine block size (memory vs time trade-off)."""
    loop = make_test_loop(n=n, m=m, l=l)
    runner = PreprocessedDoacross(processors=processors)
    baseline = runner.run(loop)
    rows = [
        ExperimentRow(
            label="unblocked",
            params={"block": None},
            result=baseline,
            metrics={"scratch_elements": loop.y_size},
        )
    ]
    for block in blocks:
        result = runner.run_stripmined(loop, block=block)
        rows.append(
            ExperimentRow(
                label=f"block={block}",
                params={"block": block},
                result=result,
                metrics={
                    "scratch_elements": result.extras[
                        "modeled_scratch_elements"
                    ]
                },
            )
        )
    return rows


def ablation_linear(
    n: int = 10000,
    processors: int = 16,
    ms: tuple[int, ...] = (1, 5),
    l: int = 7,
) -> list[ExperimentRow]:
    """Abl. C: the §2.3 linear-subscript variant vs the full pipeline.

    The Figure-4 loop's write subscript is affine, so both run; the linear
    variant drops the inspector phase and the ``iter`` array.
    """
    rows = []
    runner = PreprocessedDoacross(processors=processors)
    for m in ms:
        loop = make_test_loop(n=n, m=m, l=l)
        for linear in (False, True):
            result = runner.run(loop, linear=linear)
            rows.append(
                ExperimentRow(
                    label=f"M={m}/{'linear' if linear else 'standard'}",
                    params={"m": m, "linear": linear},
                    result=result,
                    metrics={
                        "inspector_cycles": result.breakdown.inspector,
                    },
                )
            )
    return rows


def ablation_processors(
    problem: str = "5-PT",
    processor_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    small: bool = False,
) -> list[ExperimentRow]:
    """Abl. D: processor-count sweep on one Table-1 problem, natural and
    doconsider order."""
    A = paper_problems(small=small)[problem]
    L, _ = ilu0(A)
    rhs = np.ones(A.n_rows)
    loop = lower_solve_loop(L, rhs, name=problem)
    rows = []
    for p in processor_counts:
        runner = PreprocessedDoacross(processors=p)
        plain = runner.run(loop)
        reordered = Doconsider(doacross=runner).run(loop)
        rows.append(
            ExperimentRow(
                label=f"P={p}",
                params={"processors": p},
                result=plain,
                metrics={
                    "plain_speedup": plain.speedup,
                    "reordered_speedup": reordered.speedup,
                    "plain_efficiency": plain.efficiency,
                    "reordered_efficiency": reordered.efficiency,
                },
            )
        )
    return rows


def ablation_processors_testloop(
    n: int = 4000,
    m: int = 1,
    processor_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    ls: tuple[int, ...] = (3, 4, 10),
) -> list[ExperimentRow]:
    """Abl. H: processor sweep on the Figure-4 loop.

    Expected structure: for the dependence-free configuration (odd ``L``)
    speedup grows with ``P`` toward the plateau-limited ceiling, while a
    distance-1 chain (``L=4``) saturates almost immediately — adding
    processors cannot shorten the chain."""
    rows = []
    for l in ls:
        loop = make_test_loop(n=n, m=m, l=l)
        for p in processor_counts:
            runner = PreprocessedDoacross(processors=p)
            result = runner.run(loop)
            rows.append(
                ExperimentRow(
                    label=f"L={l}/P={p}",
                    params={"l": l, "processors": p},
                    result=result,
                )
            )
    return rows


def ablation_bus(
    n: int = 10000,
    m: int = 2,
    l: int = 5,
    processors: int = 16,
    bus_costs: tuple[int, ...] = (0, 1, 2, 4),
) -> list[ExperimentRow]:
    """Abl. E: shared-bus contention.  ``bus_per_access = 0`` disables the
    model; higher values serialize every shared access for that long."""
    rows = []
    for bus_cost in bus_costs:
        cm = CostModel(bus_per_access=bus_cost)
        runner = PreprocessedDoacross(
            processors=processors, cost_model=cm, bus=bus_cost > 0
        )
        result = runner.run(make_test_loop(n=n, m=m, l=l))
        rows.append(
            ExperimentRow(
                label=f"bus={bus_cost}",
                params={"bus_per_access": bus_cost},
                result=result,
            )
        )
    return rows


def ablation_coherence(
    n: int = 4000,
    processors: int = 16,
    miss_costs: tuple[int, ...] = (0, 10, 50, 200),
    kinds: tuple[str, ...] = ("cyclic", "block"),
) -> list[ExperimentRow]:
    """Abl. F: invalidation-miss cost × schedule on a distance-1 chain.

    Cyclic chunk-1 maximizes pipelining but every dependence crosses
    caches; block scheduling keeps the chain local but serializes it.  The
    crossover moves with the miss cost."""
    loop = chain_loop(n, 1)
    rows = []
    for kind in kinds:
        for miss in miss_costs:
            cm = CostModel(coherence_miss=miss)
            runner = PreprocessedDoacross(
                processors=processors,
                cost_model=cm,
                schedule=kind,
                coherence=miss > 0,
            )
            result = runner.run(loop)
            executor = next(
                p for p in result.phases if p.name == "executor"
            )
            rows.append(
                ExperimentRow(
                    label=f"{kind}/miss={miss}",
                    params={"kind": kind, "miss": miss},
                    result=result,
                    metrics={
                        "misses": sum(
                            p.coherence_misses for p in executor.processors
                        )
                    },
                )
            )
    return rows


def ablation_amortization(
    n: int = 4000,
    processors: int = 16,
    instance_counts: tuple[int, ...] = (1, 2, 5, 10, 20),
) -> list[ExperimentRow]:
    """Abl. G: inspector amortization over repeated loop instances.

    Per-instance cost falls toward the executor + reduced-postprocessor
    floor as the single inspector pass spreads over more instances."""
    loop = make_test_loop(n=n, m=1, l=5)
    runner = AmortizedDoacross(processors=processors)
    full = PreprocessedDoacross(processors=processors).run(loop)
    rows = []
    for instances in instance_counts:
        result = runner.run(loop, instances)
        per_instance = result.total_cycles / instances
        rows.append(
            ExperimentRow(
                label=f"instances={instances}",
                params={"instances": instances},
                result=result,
                metrics={
                    "per_instance_cycles": per_instance,
                    "gain_vs_full": full.total_cycles / per_instance,
                },
            )
        )
    return rows


def _print(rows: list[ExperimentRow], title: str) -> None:
    table = format_table(
        ["config", "efficiency", "speedup", "total cycles", "wait cycles"],
        [
            (
                r.label,
                r.result.efficiency,
                r.result.speedup,
                r.result.total_cycles,
                r.result.wait_cycles,
            )
            for r in rows
        ],
        title=title,
    )
    print(table)
    print()


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    _print(ablation_scheduling(), "Ablation A — schedule kind x chunk")
    _print(ablation_stripmine(), "Ablation B — strip-mine block size")
    _print(ablation_linear(), "Ablation C — linear-subscript variant")
    _print(
        ablation_processors(small=small),
        "Ablation D — processor sweep (5-PT trisolve)",
    )
    _print(ablation_bus(), "Ablation E — bus contention")
    _print(
        ablation_coherence(),
        "Ablation F — coherence misses x schedule (distance-1 chain)",
    )
    _print(
        ablation_processors_testloop(),
        "Ablation H — processor sweep on the Figure-4 loop",
    )
    _print(
        ablation_amortization(),
        "Ablation G — inspector amortization over repeated instances",
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
