"""Auto-tuner benchmark: ``backend="auto"`` vs. every fixed backend.

The tuner's promise (ISSUE 6 acceptance bar) is that after its explore
phase it is *at least as fast as the median fixed backend* on each of
the three conformance-matrix workload families — chain (uniform-distance
recurrence), stencil (forward substitution over ILU(0) of a five-point
Laplacian), and gather/scatter (runtime permutation writes).  No fixed
backend wins all three, which is exactly why the tuner exists; this
benchmark measures the claim instead of asserting it from the armchair.

Protocol, per workload:

1. time each fixed wall-clock backend (threaded / vectorized /
   multiproc) ``repeats`` times through the schedule-pass pipeline and
   keep the median;
2. warm the tuner: one ``backend="auto"`` run per candidate against a
   shared :class:`~repro.backends.cache.InspectorCache`, walking the
   heuristic → explore progression and feeding measurements back;
3. time ``repeats`` further auto runs (now exploiting the measured
   medians) and keep the median.

Every run — fixed and auto — executes with ``observe=True`` so both
sides pay the same telemetry overhead (auto cannot opt out: telemetry
is its training data) and is checked bitwise against the sequential
oracle.  ``check()`` then asserts ``auto <= median(fixed)`` per
workload.

Run: ``python -m repro bench-autotune [--small] [--json]``.  Every run
writes ``BENCH_autotune.json`` (override with ``--out=``) in the shared
``records``/``detail`` schema, gated in CI by
``python -m repro.bench.schema``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backends.cache import InspectorCache, loop_fingerprint
from repro.bench.reporting import format_table
from repro.passes import PlanSpec, execute_plan, plan_loop
from repro.passes.autotune import AUTO_CANDIDATES
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop
from repro.workloads.synthetic import chain_loop, random_irregular_loop

__all__ = [
    "AutotuneBenchResult",
    "run_bench_autotune",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI), sibling of the other BENCH_*.
BENCH_JSON = "BENCH_autotune.json"

#: The fixed baselines auto races against — the tuner's own candidate set.
FIXED_BACKENDS = AUTO_CANDIDATES


def _workloads(small: bool) -> dict:
    if small:
        nx = 24
        loops = {
            "chain": chain_loop(1500, 1),
            "gather-scatter": random_irregular_loop(1500, seed=7),
        }
    else:
        nx = 64
        loops = {
            "chain": chain_loop(12_000, 1),
            "gather-scatter": random_irregular_loop(12_000, seed=7),
        }
    A = five_point(nx, nx)
    L, _upper = ilu0(A)
    rhs = np.arange(1.0, A.n_rows + 1) / A.n_rows
    loops["stencil"] = lower_solve_loop(L, rhs, name=f"stencil-{nx}x{nx}")
    return loops


@dataclass
class AutotuneBenchResult:
    """Auto vs. fixed backends across the three workload families."""

    small: bool
    repeats: int
    processors: int
    #: Flat rows: ``{"workload", "backend", "wall_seconds", "ok"}``;
    #: auto rows add ``chosen`` and ``tuner_source``.
    rows: list[dict] = field(default_factory=list)
    #: Per-workload depth: fixed medians, the auto median, the tuner's
    #: final decision dict, and the resulting speedup vs. the median.
    decisions: dict = field(default_factory=dict)

    def check(self) -> None:
        """Correctness everywhere; auto ≤ median fixed, per workload."""
        bad = [r for r in self.rows if not r["ok"]]
        if bad:
            raise AssertionError(
                f"{len(bad)} run(s) diverged from the sequential oracle: "
                + ", ".join(f"{r['workload']}/{r['backend']}" for r in bad)
            )
        for workload, d in self.decisions.items():
            if d["auto_seconds"] > d["median_fixed_seconds"]:
                raise AssertionError(
                    f"auto ({d['auto_seconds']:.4f}s via {d['chosen']}) is "
                    f"slower than the median fixed backend "
                    f"({d['median_fixed_seconds']:.4f}s) on {workload}"
                )

    def report(self) -> str:
        ms = 1e3
        body = [
            (
                r["workload"],
                r["backend"],
                r.get("chosen", ""),
                r["wall_seconds"] * ms,
                "ok" if r["ok"] else "DIVERGED",
            )
            for r in self.rows
        ]
        table = format_table(
            ["workload", "backend", "chosen", "median wall (ms)", "check"],
            body,
            title=(
                f"auto-tuner benchmark — auto vs fixed backends "
                f"(repeats={self.repeats}, processors={self.processors})"
            ),
        )
        tails = [
            f"{w}: auto={d['auto_seconds'] * ms:.1f}ms via {d['chosen']} "
            f"({d['tuner_source']}), median fixed="
            f"{d['median_fixed_seconds'] * ms:.1f}ms "
            f"-> {d['speedup_vs_median']:.2f}x"
            for w, d in self.decisions.items()
        ]
        return table + "\n" + "\n".join(tails)

    def as_dict(self) -> dict:
        return {
            "small": self.small,
            "repeats": self.repeats,
            "processors": self.processors,
            "candidates": list(AUTO_CANDIDATES),
            "rows": self.rows,
            "decisions": self.decisions,
        }


def _timed_run(loop, spec, cache, reference):
    start = time.perf_counter()
    plan = plan_loop(loop, spec, cache=cache)
    result = execute_plan(loop, plan, cache=cache)
    wall = time.perf_counter() - start
    ok = bool(np.array_equal(result.y, reference))
    return wall, ok, result


def _median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def run_bench_autotune(
    *,
    small: bool = False,
    repeats: int = 3,
    processors: int = 4,
) -> AutotuneBenchResult:
    """Race ``backend="auto"`` against every fixed candidate on the
    chain / stencil / gather-scatter families."""
    result = AutotuneBenchResult(
        small=small, repeats=repeats, processors=processors
    )
    for workload, loop in _workloads(small).items():
        reference = loop.run_sequential()
        cache = InspectorCache()

        fixed_walls: dict[str, float] = {}
        for backend in FIXED_BACKENDS:
            spec = PlanSpec(
                backend=backend, processors=processors, observe=True
            )
            walls = []
            all_ok = True
            for _ in range(repeats):
                wall, ok, _run = _timed_run(loop, spec, cache, reference)
                walls.append(wall)
                all_ok = all_ok and ok
            fixed_walls[backend] = _median(walls)
            result.rows.append(
                {
                    "workload": workload,
                    "backend": backend,
                    "wall_seconds": fixed_walls[backend],
                    "ok": all_ok,
                }
            )

        # Warm the tuner: heuristic first sight, then one explore run per
        # remaining candidate, all feeding the shared cache.
        auto_spec = PlanSpec(backend="auto", processors=processors)
        for _ in range(len(AUTO_CANDIDATES)):
            _wall, ok, _run = _timed_run(loop, auto_spec, cache, reference)
            assert ok, f"auto warm-up diverged on {workload}"

        walls = []
        all_ok = True
        last = None
        for _ in range(repeats):
            wall, ok, last = _timed_run(loop, auto_spec, cache, reference)
            walls.append(wall)
            all_ok = all_ok and ok
        auto_wall = _median(walls)
        tuner = last.extras["tuner"]
        result.rows.append(
            {
                "workload": workload,
                "backend": "auto",
                "chosen": tuner["backend"],
                "tuner_source": tuner["source"],
                "wall_seconds": auto_wall,
                "ok": all_ok,
            }
        )
        median_fixed = _median(list(fixed_walls.values()))
        result.decisions[workload] = {
            "fingerprint": loop_fingerprint(loop),
            "fixed_seconds": fixed_walls,
            "median_fixed_seconds": median_fixed,
            "auto_seconds": auto_wall,
            "chosen": tuner["backend"],
            "tuner_source": tuner["source"],
            "tuner_reason": tuner["reason"],
            "speedup_vs_median": (
                median_fixed / auto_wall if auto_wall else 0.0
            ),
        }
    return result


def write_bench_json(
    result: AutotuneBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable artifact in the shared BENCH_* schema."""
    path = Path(path)
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-autotune",
        "records": [dict(row) for row in result.rows],
        "detail": result.as_dict(),
    }
    return write_artifact(payload, path)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    result = run_bench_autotune(
        small=small,
        repeats=2 if small else 3,
        processors=2 if small else 4,
    )
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    result.check()
    if not as_json:
        print("\ncheck: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
