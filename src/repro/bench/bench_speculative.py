"""Speculative-backend benchmark: the conflict-density crossover.

The speculative backend is the optimistic dual of the paper's
inspector: it skips preprocessing entirely, executes chunks in
parallel, and pays for conflicts after the fact with rollbacks.  Its
benchmark is therefore a *frontier sweep*, not a single race: the
:func:`~repro.workloads.synthetic.conflict_frontier_loop` workload
dials the fraction of conflicting chunk boundaries from 0 (a DOALL)
to 1 (a dense chunk-granular chain), and every point is raced against
the two inspector paths — threaded (runtime inspector + post/wait
flags) and vectorized (runtime inspector + wavefront batches) — plus
the sequential oracle.

Both sides of the crossover are gated at full size:

- **speculation wins where inspection is pessimism**: on the
  zero/low-conflict frontier points the speculative wall beats the
  threaded inspector path (no preprocessing, no per-element sync), and
  the recorded counters prove why (``rounds == 1``, zero rollbacks);
- **speculation loses where conflicts are dense**: on the
  ``fraction=1.0`` frontier every round commits one chunk and the
  retry budget drains into the sequential fallback — the vectorized
  inspector path wins by orders of magnitude — and on the true
  distance-1 ``chain_loop`` the discarded rounds make speculation
  slower than simply running the loop sequentially.

``--small`` (the CI smoke size) asserts correctness and the
*deterministic* side of the story only (round/rollback/fallback
counters); wall-clock ordering is asserted at full size, where the
margins are 5x+.

Run: ``python -m repro bench-speculative [--small] [--json] [n]``.
Every run writes ``BENCH_speculative.json`` (override with ``--out=``)
carrying an observed speculative run's full telemetry blob — including
the ``speculation_rounds`` / ``chunks_conflicted`` /
``chunks_rolled_back`` counters — schema-checked in CI by
``python -m repro.bench.schema``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backends import SpeculativeRunner, ThreadedRunner, VectorizedRunner
from repro.bench.reporting import format_table
from repro.workloads.synthetic import chain_loop, conflict_frontier_loop

__all__ = [
    "SpeculativeBenchResult",
    "run_bench_speculative",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI), sibling of BENCH_multiproc.
BENCH_JSON = "BENCH_speculative.json"

#: Conflicting-boundary fractions swept on the frontier workload.
_FRACTIONS = (0.0, 0.25, 0.5, 1.0)


@dataclass
class SpeculativeBenchResult:
    """One conflict-density sweep of speculation vs the inspector paths."""

    n: int
    chunk: int
    workers: int
    #: Flat rows: ``{"workload", "backend", "wall_seconds", "ok", ...}``
    #: — speculative rows add the ``speculation`` counter block.
    rows: list[dict] = field(default_factory=list)
    telemetry: dict | None = None

    def row(self, workload: str, backend: str) -> dict | None:
        for r in self.rows:
            if r["workload"] == workload and r["backend"] == backend:
                return r
        return None

    def _wall(self, workload: str, backend: str) -> float:
        row = self.row(workload, backend)
        assert row is not None, f"no {backend} row for {workload}"
        return row["wall_seconds"]

    def check(self) -> None:
        """Correctness and counters always; wall ordering at full size.

        The deterministic gates pin both sides of the crossover without
        touching a clock: a conflict-free frontier must commit in one
        round with zero rollbacks, and the dense frontier/chain must
        drain the retry budget into the sequential fallback.  The
        wall-clock gates (full size only, where margins are 5x+) then
        assert the *consequences*: speculation beats the threaded
        inspector path at low conflict density and loses to the
        vectorized inspector path / the sequential oracle when every
        chunk conflicts.
        """
        bad = [r for r in self.rows if not r["ok"]]
        if bad:
            raise AssertionError(
                f"{len(bad)} run(s) diverged from the sequential oracle: "
                + ", ".join(f"{r['backend']}@{r['workload']}" for r in bad)
            )

        clean = self.row("frontier-p0.0", "speculative")["speculation"]
        if clean["rounds"] != 1 or clean["chunks_rolled_back"]:
            raise AssertionError(
                f"conflict-free frontier should commit in one round with "
                f"no rollbacks, got {clean}"
            )
        for workload in ("frontier-p1.0", "chain-d1"):
            dense = self.row(workload, "speculative")["speculation"]
            if not dense["sequential_fallback"]:
                raise AssertionError(
                    f"{workload} should drain the retry budget into the "
                    f"sequential fallback, got {dense}"
                )
        partial = self.row("frontier-p0.5", "speculative")["speculation"]
        if not partial["chunks_rolled_back"]:
            raise AssertionError(
                f"frontier-p0.5 should roll chunks back, got {partial}"
            )

        if self.n < 20_000:
            return
        for workload in ("frontier-p0.0", "frontier-p0.25"):
            spec = self._wall(workload, "speculative")
            threaded = self._wall(workload, "threaded")
            if spec >= threaded:
                raise AssertionError(
                    f"speculation ({spec:.4f}s) did not beat the threaded "
                    f"inspector path ({threaded:.4f}s) on {workload}"
                )
        spec = self._wall("frontier-p1.0", "speculative")
        vectorized = self._wall("frontier-p1.0", "vectorized")
        if spec <= vectorized:
            raise AssertionError(
                f"speculation ({spec:.4f}s) should lose to the vectorized "
                f"inspector path ({vectorized:.4f}s) on the dense frontier"
            )
        spec = self._wall("chain-d1", "speculative")
        sequential = self._wall("chain-d1", "sequential")
        if spec <= sequential:
            raise AssertionError(
                f"speculation ({spec:.4f}s) should lose to the sequential "
                f"oracle ({sequential:.4f}s) on the distance-1 chain"
            )

    def report(self) -> str:
        ms = 1e3
        body: list[tuple] = []
        for r in self.rows:
            spec = r.get("speculation") or {}
            body.append(
                (
                    r["workload"],
                    r["backend"],
                    r["wall_seconds"] * ms,
                    spec.get("rounds", ""),
                    spec.get("chunks_rolled_back", ""),
                    "yes" if spec.get("sequential_fallback") else "",
                    "ok" if r["ok"] else "DIVERGED",
                )
            )
        return format_table(
            [
                "workload",
                "backend",
                "wall (ms)",
                "rounds",
                "rolled back",
                "fallback",
                "check",
            ],
            body,
            title=(
                f"speculative benchmark — conflict-density frontier, "
                f"n={self.n}, chunk={self.chunk}, workers={self.workers}"
            ),
        )

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "chunk": self.chunk,
            "workers": self.workers,
            "rows": self.rows,
        }


def _workloads(n: int, chunk: int) -> dict:
    loops = {
        f"frontier-p{p}": conflict_frontier_loop(n, chunk, p)
        for p in _FRACTIONS
    }
    loops["chain-d1"] = chain_loop(n, 1)
    return loops


def run_bench_speculative(
    n: int = 20_000,
    *,
    chunk: int | None = None,
    workers: int = 4,
    repeats: int = 3,
) -> SpeculativeBenchResult:
    """Sweep conflict density and race speculation against inspection.

    Each (workload, backend) cell records the best of ``repeats`` runs
    (the standard defense against scheduler noise on loaded CI boxes);
    correctness is checked on every repeat.
    """
    chunk = max(1, n // 16) if chunk is None else chunk
    result = SpeculativeBenchResult(n=n, chunk=chunk, workers=workers)
    runners = {
        "speculative": SpeculativeRunner(workers=workers, chunk=chunk),
        "threaded": ThreadedRunner(threads=workers),
        "vectorized": VectorizedRunner(),
    }
    for workload, loop in _workloads(n, chunk).items():
        t0 = time.perf_counter()
        reference = loop.run_sequential()
        result.rows.append(
            {
                "workload": workload,
                "backend": "sequential",
                "n": loop.n,
                "wall_seconds": time.perf_counter() - t0,
                "ok": True,
            }
        )
        for backend, runner in runners.items():
            best = None
            ok = True
            out = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                out = runner.run(loop)
                wall = time.perf_counter() - t0
                ok = ok and bool(np.array_equal(out.y, reference))
                best = wall if best is None else min(best, wall)
            row = {
                "workload": workload,
                "backend": backend,
                "n": loop.n,
                "wall_seconds": best,
                "ok": ok,
            }
            if backend == "speculative":
                row["speculation"] = out.extras["speculation"]
            result.rows.append(row)

    # One observed run on the half-conflicting frontier for the
    # artifact's telemetry blob — the point with both commits and
    # rollbacks, so the speculation_rounds / chunks_conflicted /
    # chunks_rolled_back counters are all non-trivial.  Outside the
    # timed race: span recording is not free.
    from repro.backends import make_runner
    from repro.passes.spec import PlanSpec

    observed = make_runner(
        spec=PlanSpec(
            backend="speculative", processors=workers, observe=True
        )
    )
    out = observed.run(
        conflict_frontier_loop(n, chunk, 0.5), chunk=chunk
    )
    assert out.telemetry is not None
    result.telemetry = out.telemetry.as_dict()
    return result


def write_bench_json(
    result: SpeculativeBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable artifact: flat ``records`` rows (the
    stable cross-PR schema shared with the other ``BENCH_*`` artifacts),
    the ``detail`` dict, and an observed run's ``telemetry`` blob."""
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-speculative",
        "records": result.rows,
        "detail": result.as_dict(),
        "telemetry": result.telemetry,
    }
    return write_artifact(payload, Path(path))


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    numeric = [a for a in args if a.isdigit()]
    n = int(numeric[0]) if numeric else (2_000 if small else 20_000)
    result = run_bench_speculative(n, repeats=1 if small else 3)
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    result.check()
    if not as_json:
        print("\ncheck: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
