"""Extension experiment ("Table 2"): amortization over repeated solves.

The paper's triangular solves live inside Krylov iterations: the *same*
loop executes tens of times per factorization.  This experiment extends
Table 1 with the amortized execution modes that context enables, reporting
**per-solve** simulated time over ``k`` consecutive solves of each
Table-1 problem:

- ``full``        — the Table-1 baseline: full inspector/executor/
  postprocessor pipeline every solve, natural order;
- ``reordered``   — full pipeline in doconsider order, wavefront
  computation charged once and spread over the ``k`` solves;
- ``amortized``   — single inspector shared across solves (reduced
  between-instance postprocessor), natural order;
- ``amort+reord`` — both: shared inspector, doconsider order, one
  wavefront computation over ``k`` solves.

Expected (and asserted) shape: each column improves on the previous for
the chain-dominated point-stencil problems, and ``amort+reord`` wins
everywhere.

Run: ``python -m repro.bench.amortized_table [--small] [k]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import ExperimentRow
from repro.bench.reporting import format_table
from repro.core.amortized import AmortizedDoacross
from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider, modeled_reorder_cycles
from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import compute_levels
from repro.machine.costs import CostModel
from repro.sparse.ilu import ilu0
from repro.sparse.spe import paper_problems
from repro.sparse.trisolve import lower_solve_loop, solve_lower_unit

__all__ = ["AmortizedTableResult", "run_amortized_table", "main"]

MODES = ("full", "reordered", "amortized", "amort+reord")


@dataclass
class AmortizedTableResult:
    """Per-solve cycles for each problem × execution mode."""

    processors: int
    instances: int
    small: bool
    rows: list[ExperimentRow] = field(default_factory=list)

    def check_shape(self) -> None:
        """Shape assertions.

        Always: inspector amortization helps (``amortized < full``) and
        composes with reordering (``amort+reord < reordered``).  At full
        problem sizes additionally: ``amort+reord`` beats the full
        pipeline and a reordered mode is the overall cheapest.  (On the
        reduced test grids the one-time wavefront computation can
        legitimately outweigh the savings over few instances — which is
        itself the point of amortizing it.)
        """
        for r in self.rows:
            per_solve = {m: r.metrics[m] for m in MODES}
            if per_solve["amortized"] >= per_solve["full"]:
                raise AssertionError(
                    f"{r.label}: inspector amortization did not help"
                )
            if per_solve["amort+reord"] >= per_solve["reordered"]:
                raise AssertionError(
                    f"{r.label}: amortization does not compose with "
                    f"reordering"
                )
            if self.small:
                continue
            best = min(per_solve, key=per_solve.get)
            if per_solve["amort+reord"] > per_solve["full"]:
                raise AssertionError(
                    f"{r.label}: amort+reord ({per_solve['amort+reord']:.0f}) "
                    f"worse than full pipeline ({per_solve['full']:.0f})"
                )
            if best not in ("amort+reord", "reordered"):
                raise AssertionError(
                    f"{r.label}: cheapest mode is {best}, expected a "
                    f"reordered mode"
                )

    def report(self) -> str:
        table_rows = [
            (
                r.label,
                r.params["n"],
                round(r.metrics["full"]),
                round(r.metrics["reordered"]),
                round(r.metrics["amortized"]),
                round(r.metrics["amort+reord"]),
                r.metrics["full"] / r.metrics["amort+reord"],
            )
            for r in self.rows
        ]
        return format_table(
            [
                "problem",
                "n",
                "full/solve",
                "reord/solve",
                "amort/solve",
                "amort+reord",
                "gain",
            ],
            table_rows,
            title=(
                f'"Table 2" — per-solve cycles over {self.instances} '
                f"consecutive solves (P={self.processors}"
                f"{', reduced grids' if self.small else ''})"
            ),
        )


def run_amortized_table(
    processors: int = 16,
    instances: int = 10,
    small: bool = False,
    cost_model: CostModel | None = None,
) -> AmortizedTableResult:
    """Run the amortization experiment over the Table-1 problems."""
    cm = cost_model if cost_model is not None else CostModel()
    runner = PreprocessedDoacross(processors=processors, cost_model=cm)
    amortized_runner = AmortizedDoacross(doacross=runner)
    doconsider = Doconsider(doacross=runner)
    out = AmortizedTableResult(
        processors=processors, instances=instances, small=small
    )

    for name, A in paper_problems(small=small).items():
        L, _ = ilu0(A)
        rhs = np.ones(A.n_rows)
        loop = lower_solve_loop(L, rhs, name=name)
        reference = solve_lower_unit(L, rhs)
        graph = DependenceGraph.from_loop(loop)
        schedule = compute_levels(graph)
        reorder_once = modeled_reorder_cycles(
            loop, graph, processors, schedule=schedule
        )

        # Mode 1: full pipeline, natural order (the Table-1 baseline).
        full = runner.run(loop)
        assert np.allclose(full.y, reference)

        # Mode 2: full pipeline, doconsider order; reorder charged once.
        reordered = doconsider.run(loop)
        assert np.allclose(reordered.y, reference)
        reordered_per_solve = reordered.total_cycles + reorder_once / instances

        # Mode 3: amortized inspector, natural order.
        amortized = amortized_runner.run(loop, instances)
        assert np.allclose(amortized.y, reference)  # external init: last
        amortized_per_solve = amortized.total_cycles / instances

        # Mode 4: amortized inspector + doconsider order.
        both = amortized_runner.run(
            loop,
            instances,
            order=schedule.order,
            order_label=f"doconsider(levels={schedule.n_levels})",
        )
        assert np.allclose(both.y, reference)
        both_per_solve = (both.total_cycles + reorder_once) / instances

        out.rows.append(
            ExperimentRow(
                label=name,
                params={"n": A.n_rows, "levels": schedule.n_levels},
                result=full,
                metrics={
                    "full": float(full.total_cycles),
                    "reordered": float(reordered_per_solve),
                    "amortized": float(amortized_per_solve),
                    "amort+reord": float(both_per_solve),
                },
            )
        )
    return out


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    numeric = [a for a in args if a.isdigit()]
    instances = int(numeric[0]) if numeric else 10
    result = run_amortized_table(small=small, instances=instances)
    print(result.report())
    result.check_shape()
    print("shape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
