"""Wall-clock benchmark: sequential vs. threaded vs. vectorized backends.

The paper's performance claims are simulated; this experiment measures the
one backend that is genuinely fast on CPython.  On a Figure-4 test loop
with an odd ``L`` (no cross-iteration dependencies → a single wavefront,
the best case for batching) it reports:

- the sequential oracle's interpreted wall time,
- the threaded backend's wall time (GIL-bound, event-per-element — the
  honest "real threads" baseline),
- the vectorized backend cold (inspector cache miss: preprocessing plus
  execution) and warm (cache hit: execution only),
- an amortization curve — per-instance wall time of ``run_repeated`` over
  growing instance counts, the measured analogue of the paper's Figure 3:
  one cache miss up front, then executor-only instances,
- the inspector-cache hit/miss counters backing that curve.

The headline shape assertion (``check``): warm vectorized execution beats
the threaded backend by at least ``min_speedup``× (5× at the default
100k-iteration size), and the warm run actually hits the cache.

Run: ``python -m repro.bench.bench_vectorized [--small] [--json]
[--out=PATH] [n]``.  Every run also writes the machine-readable artifact
``BENCH_vectorized.json`` (override with ``--out=``) so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backends.threaded import ThreadedRunner
from repro.backends.vectorized import VectorizedRunner
from repro.bench.reporting import format_table
from repro.workloads.testloop import make_test_loop

__all__ = [
    "VectorizedBenchResult",
    "run_bench_vectorized",
    "bench_records",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI) tracking the perf trajectory.
BENCH_JSON = "BENCH_vectorized.json"


@dataclass
class VectorizedBenchResult:
    """Measured wall-clock times (seconds) for one loop size."""

    n: int
    m: int
    l: int
    threads: int
    levels: int
    sequential_seconds: float
    threaded_seconds: float
    vectorized_cold_seconds: float
    vectorized_warm_seconds: float
    #: Warm wall time with ``observe=True`` — the observed-vs-bare column
    #: backing the span-overhead budget (tested <10%).
    vectorized_observed_seconds: float
    cold_preprocess_seconds: float
    warm_cache_hit: bool
    cache_stats: dict
    #: ``(instances, per-instance seconds, cumulative cache hits)`` rows.
    amortization: list[tuple[int, float, int]] = field(default_factory=list)
    #: Serialized :class:`~repro.obs.telemetry.Telemetry` of one observed
    #: warm run (level spans + cache metrics), or ``None``.
    telemetry: dict | None = None

    @property
    def observe_overhead(self) -> float:
        """Relative wall-time cost of observation on a warm run:
        ``observed/bare - 1``."""
        if self.vectorized_warm_seconds <= 0:
            return 0.0
        return (
            self.vectorized_observed_seconds / self.vectorized_warm_seconds
            - 1.0
        )

    @property
    def speedup_vs_threaded(self) -> float:
        return self.threaded_seconds / self.vectorized_warm_seconds

    @property
    def speedup_vs_sequential(self) -> float:
        return self.sequential_seconds / self.vectorized_warm_seconds

    def check(self, min_speedup: float = 5.0) -> None:
        """Shape assertions: the cache works and batching actually pays."""
        if not self.warm_cache_hit:
            raise AssertionError(
                "second vectorized run missed the inspector cache"
            )
        if self.speedup_vs_threaded < min_speedup:
            raise AssertionError(
                f"vectorized warm ({self.vectorized_warm_seconds * 1e3:.2f} "
                f"ms) is only {self.speedup_vs_threaded:.1f}x faster than "
                f"threaded ({self.threaded_seconds * 1e3:.2f} ms); "
                f"required {min_speedup:.1f}x"
            )
        per_instance = [t for _, t, _ in self.amortization]
        if per_instance and per_instance[-1] >= self.vectorized_cold_seconds:
            raise AssertionError(
                "amortization over instances did not reduce per-instance "
                "cost below a cold single run"
            )

    def report(self) -> str:
        ms = 1e3
        backends = format_table(
            ["backend", "wall (ms)", "vs sequential", "vs threaded"],
            [
                ("sequential", self.sequential_seconds * ms, 1.0,
                 self.threaded_seconds / self.sequential_seconds),
                (f"threaded({self.threads})", self.threaded_seconds * ms,
                 self.sequential_seconds / self.threaded_seconds, 1.0),
                ("vectorized (cold)", self.vectorized_cold_seconds * ms,
                 self.sequential_seconds / self.vectorized_cold_seconds,
                 self.threaded_seconds / self.vectorized_cold_seconds),
                ("vectorized (warm)", self.vectorized_warm_seconds * ms,
                 self.speedup_vs_sequential, self.speedup_vs_threaded),
                ("vectorized (observed)",
                 self.vectorized_observed_seconds * ms,
                 self.sequential_seconds / self.vectorized_observed_seconds,
                 self.threaded_seconds / self.vectorized_observed_seconds),
            ],
            title=(
                f"vectorized wavefront benchmark — figure4(N={self.n},"
                f"M={self.m},L={self.l}), {self.levels} wavefront level(s)"
            ),
        )
        curve = format_table(
            ["instances", "per-instance (ms)", "cache hits"],
            [(k, t * ms, h) for k, t, h in self.amortization],
            title=(
                "inspector amortization curve (one cache miss, "
                "then executor-only instances)"
            ),
        )
        stats = (
            f"cache: {self.cache_stats['hits']} hits / "
            f"{self.cache_stats['misses']} misses, "
            f"{self.cache_stats['bytes']} bytes cached; "
            f"cold preprocess {self.cold_preprocess_seconds * ms:.3f} ms"
        )
        return "\n\n".join([backends, curve, stats])

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "m": self.m,
            "l": self.l,
            "threads": self.threads,
            "levels": self.levels,
            "sequential_seconds": self.sequential_seconds,
            "threaded_seconds": self.threaded_seconds,
            "vectorized_cold_seconds": self.vectorized_cold_seconds,
            "vectorized_warm_seconds": self.vectorized_warm_seconds,
            "vectorized_observed_seconds": self.vectorized_observed_seconds,
            "observe_overhead": self.observe_overhead,
            "cold_preprocess_seconds": self.cold_preprocess_seconds,
            "warm_cache_hit": self.warm_cache_hit,
            "speedup_vs_threaded": self.speedup_vs_threaded,
            "speedup_vs_sequential": self.speedup_vs_sequential,
            "cache_stats": dict(self.cache_stats),
            "amortization": [
                {"instances": k, "per_instance_seconds": t, "cache_hits": h}
                for k, t, h in self.amortization
            ],
        }


def bench_records(result: VectorizedBenchResult) -> list[dict]:
    """Flat per-backend rows for cross-PR tracking: each row carries the
    loop size, the backend label, its wall time, and its speedup over the
    sequential oracle."""
    rows = [
        ("sequential", result.sequential_seconds),
        ("threaded", result.threaded_seconds),
        ("vectorized-cold", result.vectorized_cold_seconds),
        ("vectorized-warm", result.vectorized_warm_seconds),
        ("vectorized-observed", result.vectorized_observed_seconds),
    ]
    return [
        {
            "n": result.n,
            "backend": backend,
            "wall_seconds": seconds,
            "speedup": result.sequential_seconds / seconds,
        }
        for backend, seconds in rows
    ]


def write_bench_json(
    result: VectorizedBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable benchmark artifact.

    The file holds both the flat ``records`` rows (the stable cross-PR
    schema) and the full ``detail`` dict (cache stats, amortization
    curve) for deeper digging.
    """
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-vectorized",
        "records": bench_records(result),
        "detail": result.as_dict(),
        "telemetry": result.telemetry,
    }
    return write_artifact(payload, path)


def _best_of(repeats: int, fn):
    """Smallest wall time over ``repeats`` calls; returns (seconds, last)."""
    best, last = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        last = fn()
        best = min(best, time.perf_counter() - t0)
    return best, last


def run_bench_vectorized(
    n: int = 100_000,
    m: int = 5,
    l: int = 7,
    threads: int = 4,
    repeats: int = 3,
    curve_instances: tuple[int, ...] = (1, 2, 5, 10, 20),
) -> VectorizedBenchResult:
    """Measure all three backends on one Figure-4 loop.

    ``l`` should be odd so the loop carries no cross-iteration dependence
    and collapses to a single wavefront — the configuration the headline
    ≥5× claim is about.  Every backend's output is asserted bitwise equal
    to the sequential oracle before any time is reported.
    """
    loop = make_test_loop(n=n, m=m, l=l)

    sequential_seconds, reference = _best_of(
        repeats, lambda: loop.run_sequential()
    )

    threaded = ThreadedRunner(threads=threads)
    threaded_seconds, threaded_result = _best_of(
        1, lambda: threaded.run(loop)
    )
    if not np.array_equal(threaded_result.y, reference):
        raise AssertionError("threaded backend diverged from the oracle")

    runner = VectorizedRunner()
    cold = runner.run(loop)
    if not np.array_equal(cold.y, reference):
        raise AssertionError("vectorized backend diverged from the oracle")
    warm_seconds, warm = _best_of(repeats, lambda: runner.run(loop))
    if not np.array_equal(warm.y, reference):
        raise AssertionError("warm vectorized run diverged from the oracle")

    # Observed warm runs: the artifact carries the unified telemetry blob
    # (level spans + cache metrics) and the observed-vs-bare column the
    # span-overhead budget test pins.
    from repro.obs.instrument import InstrumentedRunner

    instrumented = InstrumentedRunner(runner)
    # Compare run wall times (result.wall_seconds), not end-to-end call
    # times: telemetry assembly happens after the run's clock stops and
    # is not part of the observation overhead the budget bounds.
    observed = instrumented.run(loop)
    observed_seconds = observed.wall_seconds
    for _ in range(repeats - 1):
        candidate = instrumented.run(loop)
        if candidate.wall_seconds < observed_seconds:
            observed, observed_seconds = candidate, candidate.wall_seconds
    telemetry = observed.telemetry.as_dict()

    amortization = []
    curve_runner = VectorizedRunner()
    for k in curve_instances:
        t0 = time.perf_counter()
        curve_runner.run_repeated(loop, k)
        wall = time.perf_counter() - t0
        amortization.append(
            (k, wall / k, curve_runner.cache.stats()["hits"])
        )

    return VectorizedBenchResult(
        n=n,
        m=m,
        l=l,
        threads=threads,
        levels=cold.extras["levels"],
        sequential_seconds=sequential_seconds,
        threaded_seconds=threaded_seconds,
        vectorized_cold_seconds=cold.wall_seconds,
        vectorized_warm_seconds=warm_seconds,
        vectorized_observed_seconds=observed_seconds,
        cold_preprocess_seconds=cold.extras["preprocess_seconds"],
        warm_cache_hit=warm.extras["cache_hit"],
        cache_stats=runner.cache.stats(),
        amortization=amortization,
        telemetry=telemetry,
    )


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    numeric = [a for a in args if a.isdigit()]
    n = int(numeric[0]) if numeric else (20_000 if small else 100_000)
    result = run_bench_vectorized(
        n=n, curve_instances=(1, 2, 5) if small else (1, 2, 5, 10, 20)
    )
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    # The 5x acceptance bar is calibrated for the 100k-iteration size;
    # smoke-size runs keep a softer bar so CI noise can't flake them.
    result.check(min_speedup=2.0 if small else 5.0)
    if not as_json:
        print("\nshape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
