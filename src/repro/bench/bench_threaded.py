"""Threaded-backend smoke benchmark with telemetry accounting.

The threaded backend exists to prove the doacross protocol correct on real
concurrency, not to be fast (the GIL, DESIGN.md §3) — so its benchmark is
a *smoke* benchmark: run a dependence-carrying Figure-4 loop observed,
report wall clock next to the telemetry-derived accounting (busy-wait
fraction, flag-check counts), and assert only shape, never speed:

- the output equals the sequential oracle (the protocol worked),
- the per-lane compute/wait spans tile the executor phase (the wall-clock
  analogue of the simulated trace/stats invariant),
- every flag was set exactly once per iteration.

Run: ``python -m repro bench-threaded [--small] [--json] [n]``.  Every run
writes the machine-readable ``BENCH_threaded.json`` (override with
``--out=``) carrying the run's full telemetry blob, schema-checked in CI
by ``python -m repro.bench.schema``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.backends import make_runner
from repro.passes.spec import PlanSpec
from repro.bench.reporting import format_table
from repro.obs.spans import CAT_COMPUTE, CAT_PHASE, CAT_WAIT
from repro.workloads.testloop import make_test_loop

__all__ = [
    "ThreadedBenchResult",
    "run_bench_threaded",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI), sibling of BENCH_vectorized.
BENCH_JSON = "BENCH_threaded.json"


@dataclass
class ThreadedBenchResult:
    """One observed threaded run, reduced to its accounting."""

    n: int
    m: int
    l: int
    threads: int
    wall_seconds: float
    bare_wall_seconds: float
    executor_seconds: float
    compute_seconds: float
    wait_seconds: float
    flag_checks: int
    flag_sets: int
    busy_waits: int
    telemetry: dict

    @property
    def observe_overhead(self) -> float:
        """Relative wall-time cost of observation: ``observed/bare - 1``
        (the span-overhead budget this bench tracks; tested <10% on the
        50k-row trisolve)."""
        if self.bare_wall_seconds <= 0:
            return 0.0
        return self.wall_seconds / self.bare_wall_seconds - 1.0

    @property
    def wait_fraction(self) -> float:
        """Busy-wait share of total executor lane time (the measured
        analogue of the paper's §3 execution-time dependency-check cost)."""
        lane_total = self.compute_seconds + self.wait_seconds
        return self.wait_seconds / lane_total if lane_total else 0.0

    def check(self) -> None:
        """Shape assertions (never speed — the GIL forbids timing claims)."""
        if self.flag_sets != self.n:
            raise AssertionError(
                f"{self.flag_sets} ready flags set for {self.n} iterations"
            )
        lane_total = self.compute_seconds + self.wait_seconds
        if not np.isclose(lane_total, self.executor_seconds, rtol=0.05):
            raise AssertionError(
                f"compute+wait lane time ({lane_total:.6f}s) does not tile "
                f"the executor phase spans ({self.executor_seconds:.6f}s)"
            )

    def report(self) -> str:
        ms = 1e3
        table = format_table(
            ["quantity", "value"],
            [
                ("wall (ms)", self.wall_seconds * ms),
                ("bare wall (ms)", self.bare_wall_seconds * ms),
                ("observe overhead", self.observe_overhead),
                ("executor lane time (ms)", self.executor_seconds * ms),
                ("compute (ms)", self.compute_seconds * ms),
                ("busy-wait (ms)", self.wait_seconds * ms),
                ("busy-wait fraction", self.wait_fraction),
                ("flag checks", self.flag_checks),
                ("flag sets", self.flag_sets),
                ("blocking busy-waits", self.busy_waits),
            ],
            title=(
                f"threaded smoke benchmark — figure4(N={self.n},"
                f"M={self.m},L={self.l}), {self.threads} threads"
            ),
        )
        return table

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "m": self.m,
            "l": self.l,
            "threads": self.threads,
            "wall_seconds": self.wall_seconds,
            "bare_wall_seconds": self.bare_wall_seconds,
            "observe_overhead": self.observe_overhead,
            "executor_seconds": self.executor_seconds,
            "compute_seconds": self.compute_seconds,
            "wait_seconds": self.wait_seconds,
            "wait_fraction": self.wait_fraction,
            "flag_checks": self.flag_checks,
            "flag_sets": self.flag_sets,
            "busy_waits": self.busy_waits,
        }


def run_bench_threaded(
    n: int = 4000, m: int = 2, l: int = 8, threads: int = 4
) -> ThreadedBenchResult:
    """One observed threaded run on a dependence-carrying Figure-4 loop.

    ``l`` even makes the loop carry true cross-iteration dependencies, so
    the busy-wait machinery actually engages — an all-independent loop
    would report a trivially zero wait fraction.
    """
    loop = make_test_loop(n=n, m=m, l=l)
    # Observed-vs-bare column: same loop, same thread count, recorder off —
    # the denominator of the span-overhead budget.
    bare = make_runner(
        spec=PlanSpec(backend="threaded", processors=threads)
    ).run(loop)
    runner = make_runner(
        spec=PlanSpec(backend="threaded", processors=threads, observe=True)
    )
    result = runner.run(loop)
    if not np.array_equal(result.y, loop.run_sequential()):
        raise AssertionError("threaded backend diverged from the oracle")
    telemetry = result.telemetry
    assert telemetry is not None

    def total(cat: str, name: str | None = None) -> float:
        return sum(
            s.duration
            for s in telemetry.spans
            if s.cat == cat and (name is None or s.name == name)
        )

    counters = telemetry.metrics.as_dict()["counters"]
    return ThreadedBenchResult(
        n=n,
        m=m,
        l=l,
        threads=threads,
        wall_seconds=float(result.wall_seconds),
        bare_wall_seconds=float(bare.wall_seconds),
        executor_seconds=total(CAT_PHASE, "executor"),
        compute_seconds=total(CAT_COMPUTE),
        wait_seconds=total(CAT_WAIT),
        flag_checks=int(counters.get("flag_checks", 0)),
        flag_sets=int(counters.get("flag_sets", 0)),
        busy_waits=int(counters.get("busy_waits", 0)),
        telemetry=telemetry.as_dict(),
    )


def write_bench_json(
    result: ThreadedBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable artifact: flat ``records`` rows (the
    stable cross-PR schema shared with ``BENCH_vectorized.json``), the
    ``detail`` dict, and the run's full ``telemetry`` blob."""
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-threaded",
        "records": [
            {
                "n": result.n,
                "backend": "threaded",
                "wall_seconds": result.wall_seconds,
                "bare_wall_seconds": result.bare_wall_seconds,
                "observe_overhead": result.observe_overhead,
                "wait_fraction": result.wait_fraction,
            }
        ],
        "detail": result.as_dict(),
        "telemetry": result.telemetry,
    }
    return write_artifact(payload, path)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    numeric = [a for a in args if a.isdigit()]
    n = int(numeric[0]) if numeric else (1_000 if small else 4_000)
    result = run_bench_threaded(n=n)
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    result.check()
    if not as_json:
        print("\nshape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
