"""Plain-text rendering for experiment reports.

The paper's artifacts are one figure (an efficiency-vs-parameter plot) and
one table; these helpers render both as terminal text: aligned tables and a
coarse ASCII chart for the figure, so ``python -m repro.bench.figure6``
shows the same story as the paper's plot without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "ascii_chart"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Floats are shown with 3 decimals; everything else via ``str``.
    """
    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(s.rjust(widths[i]) for i, s in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    y_max: float | None = None,
) -> str:
    """A coarse ASCII scatter chart of one or more ``(x, y)`` series.

    Each series gets a marker character (``o``, ``*``, ``+``, ``x``...);
    collisions show the later series' marker.  ``y`` starts at 0 so
    efficiency plots read like the paper's Figure 6.
    """
    markers = "o*+x#@"
    points = [(k, pts) for k, pts in series.items() if pts]
    if not points:
        return "(no data)"
    xs = [x for _, pts in points for x, _ in pts]
    ys = [y for _, pts in points for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_hi = y_max if y_max is not None else max(ys) * 1.1
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= 0:
        y_hi = 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (_, pts) in enumerate(points):
        mark = markers[s_idx % len(markers)]
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int(min(max(y, 0.0), y_hi) / y_hi * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    for r, row_cells in enumerate(grid):
        y_val = y_hi * (height - 1 - r) / (height - 1)
        lines.append(f"{y_val:6.2f} |" + "".join(row_cells))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(
        " " * 8 + f"{x_lo:<.0f}".ljust(width - 8) + f"{x_hi:>.0f}  ({x_label})"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}"
        for i, (name, _) in enumerate(points)
    )
    lines.append(f"  {y_label};  {legend}")
    return "\n".join(lines)
